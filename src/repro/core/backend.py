"""Pluggable sweep executors: one :class:`SweepBackend` contract, three fabrics.

:func:`repro.core.sweep.run_sweep` computes *what* must run (the memo
misses) and this module decides *how*: every backend takes the same
``(todo, scale, seed, config, journal)`` and returns summaries in ``todo``
order, bit-identical to serial execution -- summaries are plain JSON-safe
dicts, so no fabric can change a result, only its latency.

``inproc``
    the points run serially in the parent (the ``jobs=1`` path).
``pool``
    the supervised ``spawn`` process pool
    (:func:`repro.core.sweep._run_supervised`): traces ship as encoded
    bytes through the pool initializer.
``workers``
    the lease-based multi-worker fabric this module adds:
    ``repro-sweep-worker`` subprocesses (:mod:`repro.core.worker`) speak a
    length-prefixed JSON protocol over their stdio pipes and fetch traces
    *by store key* from a spool directory -- nothing bigger than a key
    crosses the pipe, and no trace array is ever pickled onto it.  With a
    checkpoint directory configured, every point's lifecycle is journaled
    in the lease ledger (:mod:`repro.core.ledger`): claim on assignment,
    heartbeat while computing, complete/abandon on the way out -- so a
    parent crash mid-sweep leaves a ledger any later run can resume from,
    reclaiming exactly the points that were in flight.

Frame format (little-endian)::

    bytes 0..3   payload length P (u32)
    bytes 4..7   CRC-32 of the payload (u32)
    bytes 8..    payload: UTF-8 JSON, P bytes

Parent -> worker ops: ``init``, ``run``, ``shutdown``.
Worker -> parent ops: ``ready``, ``heartbeat``, ``result``, ``error``.

The fabric recovers from every worker failure mode the pool supervisor
covers, plus the protocol-level ones it cannot have: a dead worker (EOF),
a stalled or partitioned worker (heartbeat silence past the lease TTL,
detected with the parent's monotonic clock), a corrupt frame (CRC
mismatch; the stream past the damage is unsynchronized, so the worker is
killed and respawned), and a hung point (the per-point timeout).  Failed
points are charged and retried with the same backoff policy as the pool;
points that exhaust the budget -- or the whole fabric, if the spawn
budget runs dry -- degrade to in-process execution in the parent.  All of
it is deterministic to exercise: :mod:`repro.core.faults` worker-targeted
kinds (``wstall``/``wpartition``/``wcorrupt``) and seeded chaos fire
inside the workers by ``(point index, attempt)`` coordinate.
"""

import json
import os
import selectors
import struct
import subprocess
import sys
import time
import warnings
import zlib

from repro.core.errors import (
    InvalidPointResult, LeaseExpired, PointTimeout, WorkerError,
    WorkerProtocolError, decode_error, is_retryable,
)
from repro.obs import events as obs_events
from repro.obs.metrics import registry
from repro.obs.spans import span

#: Frame header: payload length, CRC-32 of the payload.
FRAME_HEADER = struct.Struct("<II")

#: Upper bound on one frame's payload; a longer length prefix is damage.
MAX_FRAME = 16 << 20

#: ``fabric_stats`` key -> registry counter name.
_FABRIC_METRICS = {
    "spawns": "sweep.worker.spawns",
    "deaths": "sweep.worker.deaths",
    "stale": "sweep.worker.stale",
    "corrupt_frames": "sweep.backend.corrupt_frames",
    "degraded": "sweep.backend.degraded",
    "requeued": "sweep.point.requeued",
}


def fabric_stats():
    """Worker-fabric health counters (views over the metrics registry):
    worker spawns/deaths, stale-lease kills, corrupt protocol frames,
    whole-fabric degradations, and resume-requeued points."""
    reg = registry()
    return {key: reg.value(name) for key, name in _FABRIC_METRICS.items()}


# -- wire protocol ---------------------------------------------------------

def pack_frame(obj):
    """Frame one JSON-able message for the worker pipe."""
    payload = json.dumps(obj, separators=(",", ":")).encode()
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class FrameBuffer:
    """Reassemble protocol frames from a byte stream.

    :meth:`next_frame` returns one decoded message dict, ``None`` when
    more bytes are needed, and raises :class:`WorkerProtocolError` on
    damage (oversized length prefix, CRC mismatch, undecodable payload)
    -- after which the stream is unsynchronized and the peer must be
    discarded.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data):
        self._buf.extend(data)

    def next_frame(self):
        buf = self._buf
        if len(buf) < FRAME_HEADER.size:
            return None
        length, crc = FRAME_HEADER.unpack_from(buf)
        if length > MAX_FRAME:
            raise WorkerProtocolError(
                f"frame length {length} exceeds the {MAX_FRAME}-byte cap")
        end = FRAME_HEADER.size + length
        if len(buf) < end:
            return None
        payload = bytes(buf[FRAME_HEADER.size:end])
        del buf[:end]
        if zlib.crc32(payload) != crc:
            raise WorkerProtocolError("frame checksum mismatch")
        try:
            obj = json.loads(payload.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise WorkerProtocolError(
                f"undecodable frame payload: {exc}") from None
        if not isinstance(obj, dict) or "op" not in obj:
            raise WorkerProtocolError("frame payload is not an op message")
        return obj


def point_to_wire(point):
    """A :class:`~repro.core.sweep.SweepPoint` as a JSON-safe dict."""
    from repro.core.checkpoint import _plain

    return {
        "key": _plain(point.key),
        "qid": point.qid,
        "machine": dict(point.machine),
        "n_procs": point.n_procs,
        "seed_base": point.seed_base,
        "arena_size": point.arena_size,
        "placement": point.placement,
        "lock_check_per_rescan": point.lock_check_per_rescan,
    }


def point_from_wire(data):
    """Rebuild a :class:`~repro.core.sweep.SweepPoint` from the wire dict."""
    from repro.core.sweep import SweepPoint

    key = data.get("key")
    if isinstance(key, list):
        key = tuple(key)
    return SweepPoint(
        key=key,
        qid=data["qid"],
        machine=dict(data.get("machine") or {}),
        n_procs=int(data.get("n_procs", 4)),
        seed_base=int(data.get("seed_base", 0)),
        arena_size=data.get("arena_size"),
        placement=data.get("placement", "shared"),
        lock_check_per_rescan=bool(data.get("lock_check_per_rescan", True)),
    )


# -- the backend contract --------------------------------------------------

class SweepBackend:
    """Strategy interface: run ``todo`` and return summaries in order.

    Implementations must be bit-identical to serial execution and must
    record completions in ``journal`` (when one is configured) the moment
    each summary exists.
    """

    name = "abstract"

    def run(self, todo, scale, seed, config, journal):
        raise NotImplementedError


class InProcessBackend(SweepBackend):
    """Serial execution in the parent: the reference the others must match."""

    name = "inproc"

    def run(self, todo, scale, seed, config, journal):
        from repro.core.sweep import _point_cache_key, run_point

        results = []
        for point in todo:
            summary = run_point(point, scale, seed=seed)
            if journal is not None:
                journal.append(_point_cache_key(point, scale, seed), summary)
            obs_events.emit("point.done", key=repr(point.key))
            results.append(summary)
        return results


class PoolBackend(SweepBackend):
    """The supervised ``spawn`` process pool behind the common contract."""

    name = "pool"

    def run(self, todo, scale, seed, config, journal):
        from repro.core.sweep import _run_supervised

        if config.jobs <= 1 or len(todo) <= 1:
            return InProcessBackend().run(todo, scale, seed, config, journal)
        return _run_supervised(todo, scale, seed, config, journal)


class WorkerBackend(SweepBackend):
    """The lease-based ``repro-sweep-worker`` fabric (module docstring)."""

    name = "workers"

    def run(self, todo, scale, seed, config, journal):
        return _WorkerFabric(todo, scale, seed, config, journal).run()


def resolve_backend(config, n_todo):
    """The executor for one sweep, or ``None`` for ``run_sweep``'s own
    serial tail loop (the ``auto``-with-one-job fast path, which needs no
    dispatch layer at all)."""
    name = getattr(config, "backend", "auto")
    if name == "workers":
        return WorkerBackend()
    if name == "pool":
        return PoolBackend()
    if name == "inproc":
        return InProcessBackend()
    if name == "auto":
        if config.jobs > 1 and n_todo > 1:
            return PoolBackend()
        return None
    raise ValueError(
        f"unknown sweep backend {name!r} "
        "(expected auto, inproc, pool, or workers)")


# -- the worker fabric -----------------------------------------------------

class _WorkerProc:
    """Parent-side handle on one ``repro-sweep-worker`` subprocess."""

    def __init__(self, wid, proc):
        self.id = wid
        self.proc = proc
        self.buf = FrameBuffer()
        self.ready = False
        self.task = None          # (point index, assigned monotonic time)
        self.last_seen = time.monotonic()

    @property
    def busy(self):
        return self.task is not None

    def send(self, obj):
        self.proc.stdin.write(pack_frame(obj))
        self.proc.stdin.flush()

    def kill(self):
        for stream in (self.proc.stdin, self.proc.stdout):
            try:
                stream.close()
            except OSError:
                pass
        try:
            self.proc.kill()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=5)
        except Exception:
            pass


class _WorkerFabric:
    """One sweep's worth of supervised worker subprocesses.

    All state is instance-local (nothing module-global is written), the
    parent's clocks are monotonic, and every transition emits an obs
    event -- ``--progress`` renders the fabric's health live.
    """

    #: Grace multiplier for a worker that has not said ``ready`` yet
    #: (interpreter start-up is slower than any heartbeat interval).
    INIT_GRACE = 15.0

    def __init__(self, todo, scale, seed, config, journal):
        from repro.core.sweep import _point_cache_key

        self.todo = todo
        self.scale = scale
        self.seed = seed
        self.config = config
        self.journal = journal
        self.ledger = journal if hasattr(journal, "claim") else None
        n = len(todo)
        self.results = [None] * n
        self.attempts = [0] * n
        self.last_error = [None] * n
        self.not_before = [0.0] * n
        self.pending = list(range(n))
        self.fallback = []
        self.workers = {}
        self.sel = selectors.DefaultSelector()
        self.n_workers = min(n, config.workers or max(2, config.jobs))
        self.spawn_budget = max(4, 2 * n) + self.n_workers
        self.lease_ttl = float(getattr(config, "lease_ttl", 30.0) or 30.0)
        self.hb_interval = max(0.05, min(1.0, self.lease_ttl / 4.0))
        self.ckeys = [_point_cache_key(p, scale, seed) for p in todo]
        self._next_wid = 0
        self._spool = None
        self._own_spool = False
        self.trace_keys = []

    # -- lifecycle ---------------------------------------------------------

    def run(self):
        self._spool_traces()
        obs_events.emit("backend.start", backend="workers",
                        workers=self.n_workers, points=len(self.todo))
        try:
            self._loop()
        finally:
            # Kill, never abandon: an interrupt must leave the claims in
            # the ledger so the next run's reclaim sees them as stale.
            self._shutdown()
        self._run_fallbacks()
        if self.ledger is not None:
            self.ledger.compact()
        return self.results

    def _spool_traces(self):
        """Make every needed trace loadable by store key.

        The spool is the configured trace store when there is one (the
        traces are already, or become, regular store entries); otherwise a
        directory under the checkpoint dir, or a private temp dir.  The
        workers receive only the keys -- ship-by-hash, never pickled
        arrays.
        """
        from repro.core.experiment import get_trace_dir
        from repro.core.sweep import _trace_keys, _variant
        from repro.core.tracestore import save_trace, store_key, trace_filename

        store_dir = get_trace_dir()
        if store_dir is None:
            if self.config.checkpoint_dir is not None:
                store_dir = os.path.join(self.config.checkpoint_dir,
                                         "trace-spool")
            else:
                import tempfile

                store_dir = tempfile.mkdtemp(prefix="repro-spool-")
                self._own_spool = True
        self._spool = store_dir
        with span("spool", points=len(self.todo)):
            for point in self.todo:
                skeys = []
                for tkey in _trace_keys(point, self.scale):
                    lock_check, qid, qseed, node, arena = tkey
                    skey = store_key(self.scale.name, self.seed, qid, qseed,
                                     node, arena, lock_check)
                    path = os.path.join(store_dir, trace_filename(skey))
                    if not os.path.exists(path):
                        cache = _variant(self.scale, self.seed, lock_check)
                        trace = cache.get(qid, qseed, node, arena_size=arena)
                        save_trace(store_dir, skey, trace)
                    skeys.append(list(skey))
                self.trace_keys.append(skeys)

    def _loop(self):
        timeout = self.config.point_timeout
        tick = min(0.1, self.hb_interval,
                   (timeout / 5.0) if timeout else 0.1)
        while self.pending or self._busy_count():
            self._spawn_missing()
            if not self.workers and self.pending:
                self._degrade("no live workers and spawn budget exhausted")
                return
            self._assign()
            self._poll(tick)
            self._check_health()

    def _shutdown(self):
        for wid in sorted(self.workers):
            w = self.workers[wid]
            try:
                w.send({"op": "shutdown"})
                w.proc.stdin.close()
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for wid in sorted(self.workers):
            w = self.workers[wid]
            try:
                w.proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except Exception:
                pass
            try:
                self.sel.unregister(w.proc.stdout)
            except (KeyError, ValueError):
                pass
            w.kill()
        self.workers.clear()
        self.sel.close()
        if self._own_spool and self._spool:
            import shutil

            shutil.rmtree(self._spool, ignore_errors=True)

    def _run_fallbacks(self):
        """Graceful degradation: repeatedly failed points run in the
        parent, exactly like the pool supervisor's fallback pass."""
        from repro.core.sweep import _point_failure, run_point

        for i in sorted(self.fallback):
            point = self.todo[i]
            try:
                summary = run_point(point, self.scale, seed=self.seed)
            except Exception as exc:
                worker_exc = self.last_error[i]
                raise _point_failure(
                    point, self.attempts[i], exc,
                    timeout=isinstance(worker_exc, PointTimeout)) from exc
            self._record(i, summary)
            obs_events.emit("point.done", index=i, key=repr(point.key),
                            attempts=self.attempts[i], fallback=True)

    # -- spawning ----------------------------------------------------------

    def _busy_count(self):
        return sum(1 for w in self.workers.values() if w.busy)

    def _spawn_missing(self):
        want = min(self.n_workers, len(self.pending) + self._busy_count())
        for _ in range(max(0, want - len(self.workers))):
            if self.spawn_budget <= 0:
                break
            self.spawn_budget -= 1
            self._spawn_one()

    def _spawn_one(self):
        import repro
        from repro.core.tracestore import get_strict
        from repro.memsim.batch import default_kernel

        wid = f"w{self._next_wid}"
        self._next_wid += 1
        env = dict(os.environ)
        pkg_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = pkg_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        try:
            proc = subprocess.Popen(
                [sys.executable, "-u", "-m", "repro.core.worker"],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                bufsize=0, env=env)
        except OSError as exc:
            obs_events.emit("worker.spawn_failed", worker=wid,
                            error=str(exc))
            return None
        w = _WorkerProc(wid, proc)
        try:
            w.send({"op": "init", "worker": wid, "scale": self.scale.name,
                    "seed": self.seed, "store_dir": self._spool,
                    "heartbeat": self.hb_interval,
                    "lease_ttl": self.lease_ttl,
                    "strict": get_strict(), "kernel": default_kernel()})
        except OSError as exc:
            obs_events.emit("worker.spawn_failed", worker=wid,
                            error=str(exc))
            w.kill()
            return None
        self.workers[wid] = w
        os.set_blocking(proc.stdout.fileno(), False)
        self.sel.register(proc.stdout, selectors.EVENT_READ, w)
        registry().counter("sweep.worker.spawns").inc()
        obs_events.emit("worker.spawn", worker=wid, pid=proc.pid)
        return w

    # -- assignment --------------------------------------------------------

    def _next_ready_point(self, now):
        for pos, i in enumerate(self.pending):
            if self.not_before[i] <= now:
                return self.pending.pop(pos)
        return None

    def _assign(self):
        now = time.monotonic()
        for wid in sorted(self.workers):
            w = self.workers[wid]
            if not w.ready or w.busy:
                continue
            i = self._next_ready_point(now)
            if i is None:
                return
            if not self._claim(i, w):
                continue
            try:
                w.send({"op": "run", "index": i,
                        "attempt": self.attempts[i],
                        "point": point_to_wire(self.todo[i]),
                        "trace_keys": self.trace_keys[i]})
            except OSError as exc:
                self.pending.insert(0, i)
                self._release_lease(i, w.id, "send-failed")
                self._worker_died(w, f"write failed: {exc}")
                continue
            w.task = (i, now)
            w.last_seen = now
            obs_events.emit("point.assigned", index=i, worker=w.id,
                            attempts=self.attempts[i])

    def _claim(self, i, w):
        """Take the ledger lease for point ``i``; ``False`` defers it."""
        if self.ledger is None:
            return True
        ck = self.ckeys[i]
        if self.ledger.claim(ck, w.id, pid=w.proc.pid, ttl=self.lease_ttl):
            obs_events.emit("lease.claim", index=i, worker=w.id)
            return True
        summary = self.ledger.get(ck)
        if summary is not None:
            # A concurrent driver sharing the ledger finished it for us.
            self.results[i] = summary
            obs_events.emit("point.done", index=i,
                            key=repr(self.todo[i].key),
                            attempts=self.attempts[i])
            return False
        # A foreign live lease: revisit after half a TTL.
        self.not_before[i] = time.monotonic() + self.lease_ttl / 2.0
        self.pending.append(i)
        return False

    # -- event pump --------------------------------------------------------

    def _poll(self, tick):
        for key, _mask in self.sel.select(timeout=tick):
            w = key.data
            if w.id not in self.workers:
                continue
            try:
                data = os.read(key.fileobj.fileno(), 1 << 16)
            except BlockingIOError:
                continue
            except OSError:
                data = b""
            if not data:
                self._worker_died(w, "stdout closed")
                continue
            w.buf.feed(data)
            self._drain_frames(w)

    def _drain_frames(self, w):
        while w.id in self.workers:
            try:
                frame = w.buf.next_frame()
            except WorkerProtocolError as exc:
                registry().counter("sweep.backend.corrupt_frames").inc()
                obs_events.emit("frame.corrupt", worker=w.id,
                                error=str(exc))
                self._worker_died(w, f"protocol damage: {exc}", exc=exc)
                return
            if frame is None:
                return
            self._dispatch(w, frame)

    def _dispatch(self, w, frame):
        op = frame.get("op")
        w.last_seen = time.monotonic()
        if op == "ready":
            w.ready = True
            obs_events.emit("worker.ready", worker=w.id,
                            pid=frame.get("pid"))
        elif op == "heartbeat":
            if w.busy and self.ledger is not None:
                self.ledger.heartbeat(self.ckeys[w.task[0]], w.id)
        elif op == "result":
            self._on_result(w, frame)
        elif op == "error":
            self._on_error(w, frame)
        # Unknown ops are tolerated: newer workers may add informational
        # frames, and the CRC already vouches for the bytes.

    def _on_result(self, w, frame):
        from repro.core.sweep import (
            _POINT_SECONDS_BUCKETS, _sup_count, _valid_summary,
        )

        if not w.busy or frame.get("index") != w.task[0]:
            self._worker_died(
                w, "result for a point it does not hold",
                exc=WorkerProtocolError(
                    f"worker {w.id} answered for point "
                    f"{frame.get('index')!r} while holding {w.task!r}",
                    worker_id=w.id))
            return
        i, t0 = w.task
        w.task = None
        summary = frame.get("summary")
        if not _valid_summary(summary):
            _sup_count("garbage")
            obs_events.emit("point.garbage", index=i,
                            key=repr(self.todo[i].key), worker=w.id)
            self._release_lease(i, w.id, "garbage")
            self._fail(i, InvalidPointResult(
                f"worker {w.id} returned a non-summary object for point "
                f"{self.todo[i].key!r}", point_key=self.todo[i].key,
                qid=self.todo[i].qid, attempts=self.attempts[i] + 1))
            return
        elapsed = time.monotonic() - t0
        registry().histogram("sweep.point.seconds",
                             _POINT_SECONDS_BUCKETS).observe(elapsed)
        self._record(i, summary, worker=w.id)
        obs_events.emit("point.done", index=i, key=repr(self.todo[i].key),
                        seconds=round(elapsed, 6),
                        attempts=self.attempts[i] + 1, worker=w.id)

    def _on_error(self, w, frame):
        from repro.core.sweep import _sup_count

        if not w.busy or frame.get("index") != w.task[0]:
            self._worker_died(w, "error frame for a point it does not hold")
            return
        i, _t0 = w.task
        w.task = None
        exc = decode_error(frame.get("error"))
        self._release_lease(i, w.id, type(exc).__name__)
        obs_events.emit("point.error", index=i, worker=w.id,
                        error=type(exc).__name__,
                        retryable=is_retryable(exc))
        if is_retryable(exc):
            self._fail(i, exc)
        else:
            # Burning worker retries on a non-retryable error is pointless:
            # this point goes straight to the in-process pass.
            self.last_error[i] = exc
            self.attempts[i] += 1
            self.fallback.append(i)
            _sup_count("fallbacks")
            obs_events.emit("point.fallback", index=i,
                            key=repr(self.todo[i].key),
                            attempts=self.attempts[i])

    # -- failure handling --------------------------------------------------

    def _fail(self, i, exc, timed_out=False):
        """Charge a failed attempt; requeue with backoff or hand the point
        to the in-process fallback -- the pool supervisor's exact policy."""
        from repro.core.sweep import _sup_count

        self.last_error[i] = exc
        self.attempts[i] += 1
        if timed_out:
            _sup_count("timeouts")
            obs_events.emit("point.timeout", index=i,
                            key=repr(self.todo[i].key),
                            attempts=self.attempts[i])
        if self.attempts[i] > self.config.retries:
            self.fallback.append(i)
            _sup_count("fallbacks")
            obs_events.emit("point.fallback", index=i,
                            key=repr(self.todo[i].key),
                            attempts=self.attempts[i])
        else:
            _sup_count("retries")
            obs_events.emit("point.retry", index=i,
                            key=repr(self.todo[i].key),
                            attempts=self.attempts[i],
                            error=type(exc).__name__)
            self.not_before[i] = time.monotonic() + \
                self.config.backoff * (2 ** (self.attempts[i] - 1))
            self.pending.append(i)

    def _worker_died(self, w, why, exc=None, charge=True):
        if w.id not in self.workers:
            return
        del self.workers[w.id]
        try:
            self.sel.unregister(w.proc.stdout)
        except (KeyError, ValueError):
            pass
        w.kill()
        registry().counter("sweep.worker.deaths").inc()
        obs_events.emit("worker.dead", worker=w.id, cause=why)
        if w.busy:
            i, _t0 = w.task
            w.task = None
            self._release_lease(i, w.id, "worker-died")
            if charge:
                self._fail(i, exc if exc is not None else WorkerError(
                    f"worker {w.id} died mid-point ({why})",
                    worker_id=w.id, point_key=self.todo[i].key,
                    qid=self.todo[i].qid, attempts=self.attempts[i] + 1))
            else:
                self.pending.insert(0, i)

    def _check_health(self):
        now = time.monotonic()
        timeout = self.config.point_timeout
        for wid in sorted(self.workers):
            w = self.workers[wid]
            if not w.ready:
                if now - w.last_seen > max(self.lease_ttl, self.INIT_GRACE):
                    self._worker_died(w, "never became ready")
                continue
            if not w.busy:
                continue
            i, t0 = w.task
            if timeout and now - t0 > timeout:
                w.task = None
                self._release_lease(i, w.id, "timeout")
                self._fail(i, PointTimeout(
                    f"sweep point {self.todo[i].key!r} exceeded the "
                    f"{timeout:.1f}s point timeout on worker {w.id}",
                    point_key=self.todo[i].key, qid=self.todo[i].qid,
                    attempts=self.attempts[i] + 1), timed_out=True)
                self._worker_died(w, "point timeout", charge=False)
            elif now - w.last_seen > self.lease_ttl:
                registry().counter("sweep.worker.stale").inc()
                obs_events.emit("worker.stale", worker=w.id,
                                seconds=round(now - w.last_seen, 3))
                silent = now - w.last_seen
                w.task = None
                self._release_lease(i, w.id, "stale")
                self._fail(i, LeaseExpired(
                    f"worker {w.id} went silent for {silent:.1f}s "
                    f"(lease TTL {self.lease_ttl:.1f}s) holding point "
                    f"{self.todo[i].key!r}", worker_id=w.id,
                    point_key=self.todo[i].key, qid=self.todo[i].qid,
                    attempts=self.attempts[i] + 1))
                self._worker_died(w, "stale heartbeat", charge=False)

    # -- bookkeeping -------------------------------------------------------

    def _record(self, i, summary, worker="parent"):
        self.results[i] = summary
        if self.journal is None:
            return
        if self.ledger is not None:
            self.ledger.complete(self.ckeys[i], summary, worker=worker)
        else:
            self.journal.append(self.ckeys[i], summary)

    def _release_lease(self, i, worker, reason):
        if self.ledger is None:
            return
        from repro.core.checkpoint import canonical_key

        if canonical_key(self.ckeys[i]) in self.ledger.leases:
            self.ledger.abandon(self.ckeys[i], worker, reason=reason)
            obs_events.emit("lease.abandon", index=i, worker=worker,
                            reason=reason)

    def _degrade(self, why):
        registry().counter("sweep.backend.degraded").inc()
        obs_events.emit("backend.degraded", backend="workers", cause=why)
        warnings.warn(
            f"worker backend degraded to in-process execution: {why}",
            stacklevel=2)
        for i in self.pending:
            if i not in self.fallback:
                self.fallback.append(i)
        self.pending = []
