"""``repro-sweep-worker``: one sweep-point executor on the end of a pipe.

The worker half of the ``workers`` backend (:mod:`repro.core.backend`,
where the frame format and op set are documented).  The parent sends one
``init`` frame (scale, seed, spool directory, heartbeat interval), then
``run`` frames one at a time; the worker answers ``ready``, a steady
stream of ``heartbeat`` frames from a daemon thread (the lease-liveness
signal), and one ``result`` or ``error`` frame per point.

Traces arrive *by store key only*: the worker loads them from the spool
directory with :func:`repro.core.tracestore.load_trace` (strict mode --
spool damage is an error frame, never a silent re-record) and replays
them through :func:`repro.core.sweep.simulate_point`.  No trace array is
ever pickled across the pipe, and nothing in this process writes shared
state: results flow back as plain JSON summaries, bit-identical through
the protocol because summaries are JSON-safe by construction.

stdout is the protocol channel and is written only via :class:`_Output`
(``os.write`` under a lock, shared with the heartbeat thread); anything
human-readable goes to stderr.  Fault hooks run before each point:
compute kinds through :func:`repro.core.faults.maybe_inject` exactly like
a pool task, fabric kinds through :func:`repro.core.faults.worker_action`
(``wstall`` suppresses heartbeats past the lease TTL, ``wpartition`` goes
fully silent, ``wcorrupt`` flips a byte in the result frame after its
checksum is computed).
"""

import os
import sys
import threading
import time

from repro.core.backend import FrameBuffer, pack_frame, point_from_wire
from repro.core.errors import TraceStoreError, encode_error


class _Output:
    """Serialized frame writes to stdout (main loop + heartbeat thread)."""

    def __init__(self, fd=1):
        self.fd = fd
        self.lock = threading.Lock()

    def send(self, obj, corrupt=False):
        data = pack_frame(obj)
        if corrupt:
            # Flip one payload byte *after* the checksum was computed, so
            # the parent's CRC check must catch it (the wcorrupt fault).
            damaged = bytearray(data)
            damaged[-1] ^= 0x01
            data = bytes(damaged)
        with self.lock:
            os.write(self.fd, data)


class _Heartbeat(threading.Thread):
    """Periodic liveness frames; ``stalled`` suspends them (fault hook)."""

    def __init__(self, out, worker, interval):
        super().__init__(daemon=True, name="repro-heartbeat")
        self.out = out
        self.worker = worker
        self.interval = interval
        self.stalled = threading.Event()
        self.stopped = threading.Event()

    def run(self):
        while not self.stopped.wait(self.interval):
            if self.stalled.is_set():
                continue
            try:
                self.out.send({"op": "heartbeat", "worker": self.worker})
            except OSError:
                return  # the parent is gone; the main loop exits on EOF


def _read_frame(fd, buf):
    """Block until one whole frame arrives; ``None`` on EOF.

    Damage on the parent->worker stream raises
    :class:`~repro.core.errors.WorkerProtocolError`, which exits the
    worker -- the parent treats the resulting EOF as a dead worker.
    """
    while True:
        frame = buf.next_frame()
        if frame is not None:
            return frame
        data = os.read(fd, 1 << 16)
        if not data:
            return None
        buf.feed(data)


def _configure(init):
    """Apply the init frame; returns the per-process run context."""
    from repro.tpcd.scales import get_scale

    if init.get("strict"):
        from repro.core import tracestore

        tracestore.set_strict(True)
    kernel = init.get("kernel", "auto")
    if kernel != "auto":
        from repro.memsim.batch import set_default_kernel

        set_default_kernel(kernel)
    return {
        "scale": get_scale(init.get("scale", "small")),
        "seed": int(init.get("seed", 42)),
        "store_dir": init.get("store_dir"),
        "lease_ttl": float(init.get("lease_ttl", 30.0)),
    }


def _compute(frame, ctx):
    """Load the point's traces from the spool by store key and replay."""
    from repro.core.sweep import simulate_point
    from repro.core.tracestore import load_trace

    point = point_from_wire(frame.get("point") or {})
    traces = []
    for raw in frame.get("trace_keys") or []:
        key = tuple(raw)
        loaded = load_trace(ctx["store_dir"], key, strict=True)
        if loaded is None:
            raise TraceStoreError(
                f"trace {key!r} is not in the spool {ctx['store_dir']!r}",
                cause="other")
        traces.append(loaded[0])
    return simulate_point(point, ctx["scale"], traces)


def _run(frame, ctx, wid, out, hb):
    """Handle one ``run`` frame: fault hooks, compute, answer."""
    from repro.core import faults

    index = int(frame.get("index", -1))
    attempt = int(frame.get("attempt", 0))
    wfault = faults.worker_action(index, attempt)
    if wfault == "wpartition":
        # Total silence: no heartbeats, no answer.  Only the parent's
        # lease TTL can recover the point.
        hb.stalled.set()
        time.sleep(faults.active_plan().hang_seconds)
        hb.stalled.clear()
        return
    if wfault == "wstall":
        # Suppress heartbeats past the lease TTL: the parent must detect
        # the stale lease and reclaim the point before we answer.
        hb.stalled.set()
        time.sleep(2.0 * ctx["lease_ttl"])
    try:
        garbage = faults.maybe_inject(index, attempt)
        if garbage is not None:
            summary = garbage
        else:
            summary = _compute(frame, ctx)
        payload = {"op": "result", "index": index, "worker": wid,
                   "summary": summary}
    except Exception as exc:
        payload = {"op": "error", "index": index, "worker": wid,
                   "error": encode_error(exc)}
    try:
        out.send(payload, corrupt=(wfault == "wcorrupt"))
    except OSError:
        pass  # the parent killed us mid-answer; nothing left to tell it
    finally:
        hb.stalled.clear()


def main(argv=None):
    """Entry point: init handshake, then the run/answer loop until EOF."""
    out = _Output()
    buf = FrameBuffer()
    init = _read_frame(0, buf)
    if init is None or init.get("op") != "init":
        print("repro-sweep-worker: expected an init frame on stdin",
              file=sys.stderr)
        return 2
    wid = str(init.get("worker") or f"pid{os.getpid()}")
    ctx = _configure(init)
    hb = _Heartbeat(out, wid, float(init.get("heartbeat", 1.0)))
    hb.start()
    out.send({"op": "ready", "worker": wid, "pid": os.getpid()})
    while True:
        frame = _read_frame(0, buf)
        if frame is None or frame.get("op") == "shutdown":
            break
        if frame.get("op") == "run":
            _run(frame, ctx, wid, out, hb)
    hb.stopped.set()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
