"""Checkpoint journal: completed sweep points as durable on-disk records.

A paper-scale sweep is minutes of independent simulations; an OOM-killed
worker or a Ctrl-C should cost the points still in flight, not the points
already finished.  The journal makes every completed point durable the
moment its summary exists: ``repro-experiments ... --checkpoint-dir D``
appends one record per ``(point identity, summary)`` and a re-run loads
the journal first, re-simulating only what is missing.  Replayed summaries
are bit-identical to freshly computed ones (summaries are plain dicts of
ints, floats, strings and lists, all of which survive a JSON round trip
exactly).

The format follows the trace store's discipline (:mod:`repro.core.tracestore`):
self-describing framed records, each independently checksummed::

    bytes 0..3    magic  (b"RPCJ" here; the lease ledger uses b"RPLL")
    bytes 4..7    format version (u32, little-endian)
    bytes 8..11   payload length P (u32)
    bytes 12..    payload: UTF-8 JSON {"key": [...], "summary": {...}}
    last 4        CRC-32 of the payload (u32)

Appends are flushed and fsynced record by record, so the only loss mode a
crash can produce is a truncated *tail*.  Loading stops at the first
damaged record, warns, and truncates the file back to the last good
record -- an interrupted writer never poisons later appends.

The framing itself (:func:`pack_record`, :func:`parse_record`,
:func:`iter_records`) is shared with the lease ledger
(:mod:`repro.core.ledger`), which journals *work-queue state transitions*
(claim/heartbeat/complete/abandon) under the same durability contract.
"""

import json
import os
import struct
import warnings
import zlib

from repro.core.errors import CheckpointError
from repro.obs.metrics import registry
from repro.obs.spans import span

MAGIC = b"RPCJ"
FORMAT_VERSION = 1

_PREFIX = struct.Struct("<4sII")
_CRC = struct.Struct("<I")

JOURNAL_NAME = "sweep-checkpoint.rpcj"


def _plain(obj):
    """Tuples become lists so a key round-trips through JSON canonically."""
    if isinstance(obj, (tuple, list)):
        return [_plain(x) for x in obj]
    return obj


def canonical_key(key):
    """The canonical string identity of a point key (tuple/list agnostic)."""
    return json.dumps(_plain(key), separators=(",", ":"))


# -- shared record framing -------------------------------------------------

def pack_record(magic, version, payload_obj):
    """Frame one JSON-able payload as a self-checksummed record."""
    payload = json.dumps(payload_obj, separators=(",", ":")).encode()
    return (_PREFIX.pack(magic, version, len(payload))
            + payload + _CRC.pack(zlib.crc32(payload)))


def parse_record(data, offset, magic, version):
    """``(end_offset, payload_dict)`` for the record at ``offset``, or
    ``None`` on any damage (truncation, bad magic/version/CRC/JSON)."""
    if offset + _PREFIX.size > len(data):
        return None
    got_magic, got_version, payload_len = _PREFIX.unpack_from(data, offset)
    if got_magic != magic or got_version != version:
        return None
    start = offset + _PREFIX.size
    end = start + payload_len + _CRC.size
    if end > len(data):
        return None
    payload = data[start:start + payload_len]
    (crc,) = _CRC.unpack_from(data, start + payload_len)
    if zlib.crc32(payload) != crc:
        return None
    try:
        obj = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(obj, dict):
        return None
    return end, obj


def iter_records(data, magic, version):
    """Yield ``(end_offset, payload_dict)`` for every good record, in
    order, stopping at the first damaged one.  The caller truncates back
    to the last yielded ``end_offset`` to repair a damaged tail."""
    offset = 0
    while offset < len(data):
        record = parse_record(data, offset, magic, version)
        if record is None:
            return
        yield record
        offset = record[0]


class CheckpointJournal:
    """One append-only journal of completed sweep points.

    ``entries`` maps :func:`canonical_key` strings to summary dicts;
    :meth:`get` looks a point up, :meth:`append` makes a fresh completion
    durable.  ``damaged`` counts truncated/corrupt tails repaired at open.
    """

    def __init__(self, directory, name=JOURNAL_NAME):
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {directory!r}: {exc}"
            ) from exc
        self.path = os.path.join(directory, name)
        self.entries = {}
        self.damaged = 0
        self._load_and_repair()
        try:
            self._fh = open(self.path, "ab")
        except OSError as exc:
            raise CheckpointError(
                f"cannot open checkpoint journal {self.path!r}: {exc}"
            ) from exc

    # -- reading -----------------------------------------------------------

    def _load_and_repair(self):
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint journal {self.path!r}: {exc}"
            ) from exc
        good = 0
        total = len(data)
        for end, payload in iter_records(data, MAGIC, FORMAT_VERSION):
            try:
                key, summary = payload["key"], payload["summary"]
            except KeyError:
                break
            self.entries[canonical_key(key)] = summary
            good = end
        if good < total:
            self.damaged += 1
            warnings.warn(
                f"checkpoint journal {self.path}: damaged record at byte "
                f"{good} (of {total}); keeping {len(self.entries)} good "
                "entries and truncating the tail",
                stacklevel=2,
            )
            with open(self.path, "r+b") as fh:
                fh.truncate(good)

    # -- writing -----------------------------------------------------------

    def append(self, key, summary):
        """Durably record one completed point (flush + fsync per record)."""
        record = pack_record(MAGIC, FORMAT_VERSION,
                             {"key": _plain(key), "summary": summary})
        with span("checkpoint-append", bytes=len(record)):
            try:
                self._fh.write(record)
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except (OSError, ValueError) as exc:
                raise CheckpointError(
                    f"cannot append to checkpoint journal {self.path!r}: {exc}"
                ) from exc
        reg = registry()
        reg.counter("checkpoint.appends").inc()
        reg.counter("checkpoint.bytes_written").inc(len(record))
        self.entries[canonical_key(key)] = summary

    # -- lookup / lifecycle ------------------------------------------------

    def get(self, key):
        """The stored summary for ``key``, or ``None``."""
        return self.entries.get(canonical_key(key))

    def __contains__(self, key):
        return canonical_key(key) in self.entries

    def __len__(self):
        return len(self.entries)

    def close(self):
        try:
            self._fh.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
