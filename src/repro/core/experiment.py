"""Workload runner: N processors, one query stream each.

Reproduces the paper's setup: a 4-processor CC-NUMA machine where each
processor runs one query of the same type with different TPC-D parameters
(inter-query parallelism), simulated from start to finish with no warm-up
discarded -- unless a warm-start is requested explicitly, which is how the
inter-query temporal locality experiment (Figure 12) is built.
"""

from repro.core.tracecache import TraceCache
from repro.db.shmem import shared_home_fn
from repro.obs.spans import span
from repro.db.tracing import drain
from repro.memsim.interleave import Interleaver
from repro.memsim.numa import NumaMachine
from repro.tpcd.dbgen import build_database
from repro.tpcd.queries import query_instance
from repro.tpcd.scales import get_scale

_DB_CACHE = {}
_TRACE_CACHE = {}

#: Directory for the persistent trace store (``None`` disables it).  Set
#: via :func:`set_trace_dir` (the ``repro-experiments --trace-dir`` flag);
#: newly created shared trace caches read through to it.
_TRACE_DIR = None


def set_trace_dir(path):
    """Point the shared trace caches at a persistent store directory.

    Affects caches created afterwards (callers set it before running
    experiments); ``None`` turns persistence back off.  Existing caches
    keep the directory they were created with.
    """
    global _TRACE_DIR
    _TRACE_DIR = path


def get_trace_dir():
    """The configured persistent trace-store directory, or ``None``."""
    return _TRACE_DIR


def set_strict_store(strict):
    """Make damaged trace-store entries raise instead of re-recording.

    The ``repro-experiments --strict-store`` switch: default mode treats a
    damaged entry as "not stored" (warn, count, re-record); strict mode
    surfaces it as a :class:`~repro.core.errors.TraceStoreError`.  Sweep
    workers inherit the setting through the pool initializer.
    """
    from repro.core import tracestore

    tracestore.set_strict(strict)


def workload_database(scale="small", seed=42):
    """Build (or reuse) the populated TPC-D database for a scale preset.

    Databases are cached per ``(scale, seed)``: they are read-only under
    the paper's query set, so sharing one instance across experiments is
    safe and saves most of the setup time.
    """
    scale = get_scale(scale)
    key = (scale.name, seed)
    if key not in _DB_CACHE:
        with span("dbgen", scale=scale.name, seed=seed):
            _DB_CACHE[key] = build_database(sf=scale.sf, seed=seed)
    return _DB_CACHE[key]


def workload_trace_cache(scale="small", seed=42):
    """The shared :class:`TraceCache` over :func:`workload_database`.

    Cached per ``(scale, seed)`` exactly like the databases: sweeps that
    vary only the machine configuration replay the same recorded streams.
    The backing database is lazy -- a run whose traces all come from the
    persistent store never builds it.
    """
    scale = get_scale(scale)
    key = (scale.name, seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = TraceCache(
            lambda: workload_database(scale, seed), scale,
            trace_dir=_TRACE_DIR, db_seed=seed)
    return _TRACE_CACHE[key]


def trace_cache_stats():
    """Aggregate :meth:`TraceCache.stats` over every live cache.

    Sums the shared per-scale caches and the sweep driver's ablation
    variants, so ``repro-experiments --time`` can report trace traffic for
    the whole process in one line.
    """
    from repro.core.sweep import _VARIANT_CACHE

    caches = list(_TRACE_CACHE.values())
    caches += list(_VARIANT_CACHE.values())
    totals = {"traces": 0, "events": 0, "source_events": 0, "bytes": 0,
              "hits": 0, "records": 0, "loads": 0, "bytes_read": 0,
              "bytes_written": 0}
    for cache in caches:
        for name, value in cache.stats().items():
            totals[name] += value
    return totals


def clear_caches():
    """Drop every memoized database and trace cache.

    Long sessions (pytest runs, sweep drivers) otherwise accumulate one
    database build and one trace set per ``(scale, seed)`` touched.  Also
    covers the sweep driver's ablation-variant cache and the horizon
    kernel's combined-schedule memo (which holds trace references).
    """
    from repro.core.sweep import clear_variant_cache
    from repro.memsim.horizon import clear_memo
    from repro.workload.session import clear_scenarios

    _DB_CACHE.clear()
    for cache in _TRACE_CACHE.values():
        cache.clear()
    _TRACE_CACHE.clear()
    clear_variant_cache()
    clear_memo()
    clear_scenarios()


def _resolve_trace_cache(trace_cache, scale, db):
    """Normalize the ``trace_cache=`` argument of the workload runners.

    ``True`` selects the shared per-scale cache (and implies its database);
    a :class:`TraceCache` instance is used as given.  Returns
    ``(trace_cache_or_None, db_or_None)``: with a trace cache and no
    explicit database, ``db`` stays ``None`` -- replay needs no database
    object (NUMA placement is pure address arithmetic), and resolving one
    here would defeat the lazy database behind a store-warmed cache.
    """
    if trace_cache is None:
        return None, db or workload_database(scale)
    if trace_cache is True:
        shared = workload_trace_cache(scale)
        if db is not None and db is not shared.db:
            trace_cache = TraceCache(db, scale)
        else:
            trace_cache = shared
    return trace_cache, db


class WorkloadResult:
    """Everything one simulated workload produced."""

    def __init__(self, qid, scale, machine, run, rows_per_cpu):
        self.qid = qid
        self.scale = scale
        self.machine = machine
        self.run = run
        self.rows_per_cpu = rows_per_cpu

    @property
    def stats(self):
        """Machine-wide miss statistics."""
        return self.machine.stats

    @property
    def exec_time(self):
        return self.run.exec_time

    def breakdown(self):
        """Figure 6-(a): Busy / MSync / Mem fractions."""
        return self.run.breakdown()

    def mem_breakdown(self):
        """Figure 6-(b): memory stall split by data-structure group."""
        return self.run.mem_breakdown()

    def time_components(self):
        """Figures 9/11: absolute Busy / MSync / SMem / PMem cycles."""
        return self.run.time_components()


def _query_stream(db, backend, sql, hints, sink):
    rows = yield from db.execute(sql, backend, hints=hints)
    sink[backend.node] = rows


def _instances(qid, n_procs, seed_base):
    return [query_instance(qid, seed=seed_base + i) for i in range(n_procs)]


def run_query_workload(qid, scale="small", machine_config=None, n_procs=4,
                       seed_base=0, db=None, prefetch=False,
                       trace_cache=None):
    """Run one query type on every processor; return a WorkloadResult.

    ``machine_config`` defaults to the scale's baseline; ``prefetch``
    switches on the section-6 sequential prefetcher for database data.
    ``trace_cache`` replays recorded event streams instead of re-executing
    the engine (``True`` for the shared per-scale cache, or a
    :class:`~repro.core.tracecache.TraceCache`); the simulation output is
    bit-identical to a live run.
    """
    scale = get_scale(scale)
    trace_cache, db = _resolve_trace_cache(trace_cache, scale, db)
    cfg = machine_config or scale.machine_config()
    if prefetch:
        cfg = cfg.replace(prefetch_data=True)
    machine = NumaMachine(cfg, home_fn=shared_home_fn())
    sink = {}
    if trace_cache is not None:
        streams = [
            trace_cache.stream(qid, seed_base + i, i,
                               arena_size=scale.arena_size, sink=sink)
            for i in range(n_procs)
        ]
    else:
        backends = [db.backend(i, arena_size=scale.arena_size)
                    for i in range(n_procs)]
        streams = [
            _query_stream(db, backends[i], qi.sql, qi.hints, sink)
            for i, qi in enumerate(_instances(qid, n_procs, seed_base))
        ]
    run = Interleaver(machine).run(streams)
    return WorkloadResult(qid, scale, machine, run, sink)


def run_mixed_workload(qids, scale="small", machine_config=None, db=None,
                       seed_base=0, trace_cache=None):
    """Run a heterogeneous workload: processor *i* runs query ``qids[i]``.

    The paper's parallel programming model is inter-query parallelism where
    "each simulated processor runs a different query or stream of queries";
    this is the different-queries variant (the homogeneous variant is
    :func:`run_query_workload`).  A processor may also run a *stream*: pass
    a list of query ids for that slot and they execute back to back on the
    same backend, with the query-lifetime heap released in between.

    Replayed streams (``trace_cache=``) concatenate one trace per query:
    a trace recorded on a fresh backend is identical to the live stream on
    a reused backend because ``reset_heap`` restores the private address
    state a fresh backend starts with.
    """
    scale = get_scale(scale)
    trace_cache, db = _resolve_trace_cache(trace_cache, scale, db)
    cfg = machine_config or scale.machine_config()
    machine = NumaMachine(cfg, home_fn=shared_home_fn())
    sink = {}

    if trace_cache is not None:
        def stream(i, spec):
            queries = spec if isinstance(spec, (list, tuple)) else [spec]
            results = []
            for j, qid in enumerate(queries):
                trace = trace_cache.get(qid, seed_base + i + 10 * j, i,
                                        arena_size=scale.arena_size)
                yield from trace.replay()
                results.append(trace.rows)
            sink[i] = results if isinstance(spec, (list, tuple)) else results[0]
    else:
        backends = [db.backend(i, arena_size=scale.arena_size)
                    for i in range(len(qids))]

        def stream(i, spec):
            backend = backends[i]
            queries = spec if isinstance(spec, (list, tuple)) else [spec]
            results = []
            for j, qid in enumerate(queries):
                qi = query_instance(qid, seed=seed_base + i + 10 * j)
                rows = yield from db.execute(qi.sql, backend, hints=qi.hints)
                results.append(rows)
                backend.priv.reset_heap()
            sink[i] = results if isinstance(spec, (list, tuple)) else results[0]

    run = Interleaver(machine).run([stream(i, q) for i, q in enumerate(qids)])
    return WorkloadResult(tuple(qids), scale, machine, run, sink)


def run_warm_workload(measure_qid, warm_qid=None, scale="small",
                      machine_config=None, n_procs=4, db=None,
                      trace_cache=None):
    """Figure-12 style run: optionally warm the caches, then measure.

    The warm-up phase runs ``warm_qid`` (with different parameters) to
    completion; its statistics are discarded, cache and directory state are
    kept, each backend's query-lifetime heap is released (so the measured
    query reuses the same private addresses, as Postgres95 processes do),
    and then ``measure_qid`` runs with fresh statistics.
    """
    scale = get_scale(scale)
    trace_cache, db = _resolve_trace_cache(trace_cache, scale, db)
    cfg = machine_config or scale.machine_config()
    machine = NumaMachine(cfg, home_fn=shared_home_fn())
    interleaver = Interleaver(machine)

    def make_streams(qid, seed_base, sink):
        if trace_cache is not None:
            return [
                trace_cache.stream(qid, seed_base + i, i,
                                   arena_size=scale.arena_size, sink=sink)
                for i in range(n_procs)
            ]
        return [
            _query_stream(db, backends[i], qi.sql, qi.hints, sink)
            for i, qi in enumerate(_instances(qid, n_procs, seed_base))
        ]

    if trace_cache is None:
        backends = [db.backend(i, arena_size=scale.arena_size)
                    for i in range(n_procs)]

    if warm_qid is not None:
        interleaver.run(make_streams(warm_qid, 100, {}))
        if trace_cache is None:
            for b in backends:
                b.priv.reset_heap()

    sink = {}
    run = interleaver.run(make_streams(measure_qid, 0, sink), reset_stats=True)
    return WorkloadResult(measure_qid, scale, machine, run, sink)


def run_untraced(qid, scale="small", seed=0, db=None):
    """Execute a query instance without simulation; returns its rows."""
    scale = get_scale(scale)
    db = db or workload_database(scale)
    qi = query_instance(qid, seed=seed)
    backend = db.backend(0, arena_size=scale.arena_size)
    return drain(db.execute(qi.sql, backend, hints=qi.hints))
