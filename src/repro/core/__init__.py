"""Characterization core: runs DSS workloads through the simulated machine.

This is the paper's experimental apparatus (section 4.3): one query per
simulated processor, statistics recorded for the complete execution stage,
misses and stall time attributed to the software data structures they land
on.

This package is the stable API surface: library callers import from
``repro.core`` (everything in ``__all__``), not from the submodules, whose
internals may move.  The run-level entry points are :class:`RunConfig`
(one frozen config object for a whole run), :func:`configure_run` (apply
it process-wide), and :func:`run_experiments` (the library face of the
``repro-experiments`` CLI); :class:`~repro.obs.metrics.MetricsRegistry`
re-exports the observability layer's metric store.
"""

from repro.obs.metrics import MetricsRegistry
from repro.core.experiment import (
    WorkloadResult,
    clear_caches,
    run_mixed_workload,
    run_query_workload,
    run_warm_workload,
    set_trace_dir,
    trace_cache_stats,
    workload_database,
    workload_trace_cache,
)
from repro.core.backend import (
    InProcessBackend,
    PoolBackend,
    SweepBackend,
    WorkerBackend,
    fabric_stats,
)
from repro.core.checkpoint import CheckpointJournal
from repro.core.errors import (
    CheckpointError,
    InvalidPointResult,
    LeaseExpired,
    LedgerError,
    PointFailure,
    PointTimeout,
    RemoteWorkerError,
    ReproError,
    SweepError,
    TraceStoreError,
    TraceStoreWarning,
    WorkerError,
    WorkerProtocolError,
    is_retryable,
)
from repro.core.ledger import LeaseLedger
from repro.core.report import format_table, normalize, percent
from repro.core.locality import LocalityReport, analyze, analyze_query
from repro.core.parallel import run_intra_query_workload
from repro.core.run import (
    RunConfig,
    build_run_report,
    configure_run,
    current_run_config,
    run_experiments,
)
from repro.core.sweep import (
    SweepPoint, configure_sweep, run_sweep, summarize, supervisor_stats,
)
from repro.core.tracecache import QueryTrace, TraceCache

__all__ = [
    "RunConfig",
    "build_run_report",
    "configure_run",
    "current_run_config",
    "run_experiments",
    "MetricsRegistry",
    "CheckpointJournal",
    "LeaseLedger",
    "SweepBackend",
    "InProcessBackend",
    "PoolBackend",
    "WorkerBackend",
    "fabric_stats",
    "CheckpointError",
    "InvalidPointResult",
    "LeaseExpired",
    "LedgerError",
    "PointFailure",
    "PointTimeout",
    "RemoteWorkerError",
    "ReproError",
    "SweepError",
    "TraceStoreError",
    "TraceStoreWarning",
    "WorkerError",
    "WorkerProtocolError",
    "is_retryable",
    "configure_sweep",
    "supervisor_stats",
    "LocalityReport",
    "analyze",
    "analyze_query",
    "run_intra_query_workload",
    "WorkloadResult",
    "clear_caches",
    "run_mixed_workload",
    "run_query_workload",
    "run_warm_workload",
    "set_trace_dir",
    "trace_cache_stats",
    "workload_database",
    "workload_trace_cache",
    "QueryTrace",
    "TraceCache",
    "SweepPoint",
    "run_sweep",
    "summarize",
    "format_table",
    "normalize",
    "percent",
]
