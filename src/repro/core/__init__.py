"""Characterization core: runs DSS workloads through the simulated machine.

This is the paper's experimental apparatus (section 4.3): one query per
simulated processor, statistics recorded for the complete execution stage,
misses and stall time attributed to the software data structures they land
on.
"""

from repro.core.experiment import (
    WorkloadResult,
    clear_caches,
    run_mixed_workload,
    run_query_workload,
    run_warm_workload,
    set_trace_dir,
    trace_cache_stats,
    workload_database,
    workload_trace_cache,
)
from repro.core.checkpoint import CheckpointJournal
from repro.core.errors import (
    CheckpointError,
    InvalidPointResult,
    PointFailure,
    PointTimeout,
    ReproError,
    SweepError,
    TraceStoreError,
    TraceStoreWarning,
)
from repro.core.report import format_table, normalize, percent
from repro.core.locality import LocalityReport, analyze, analyze_query
from repro.core.parallel import run_intra_query_workload
from repro.core.sweep import (
    SweepPoint, configure_sweep, run_sweep, summarize, supervisor_stats,
)
from repro.core.tracecache import QueryTrace, TraceCache

__all__ = [
    "CheckpointJournal",
    "CheckpointError",
    "InvalidPointResult",
    "PointFailure",
    "PointTimeout",
    "ReproError",
    "SweepError",
    "TraceStoreError",
    "TraceStoreWarning",
    "configure_sweep",
    "supervisor_stats",
    "LocalityReport",
    "analyze",
    "analyze_query",
    "run_intra_query_workload",
    "WorkloadResult",
    "clear_caches",
    "run_mixed_workload",
    "run_query_workload",
    "run_warm_workload",
    "set_trace_dir",
    "trace_cache_stats",
    "workload_database",
    "workload_trace_cache",
    "QueryTrace",
    "TraceCache",
    "SweepPoint",
    "run_sweep",
    "summarize",
    "format_table",
    "normalize",
    "percent",
]
