"""Small text-reporting helpers shared by the experiment modules."""


def percent(x, digits=1):
    """Format a fraction as a percentage string."""
    return f"{100 * x:.{digits}f}%"


def normalize(values, reference=None):
    """Scale a mapping of numbers so the reference sums to 100.

    With ``reference=None`` the values themselves sum to 100 (the paper's
    normalized-bar convention); otherwise ``reference`` supplies the total.
    """
    total = sum(reference.values() if reference is not None else values.values())
    if not total:
        return {k: 0.0 for k in values}
    return {k: 100.0 * v / total for k, v in values.items()}


def format_table(headers, rows, title=None):
    """Render an ASCII table; numbers are shown with one decimal."""
    def cell(v):
        if isinstance(v, float):
            return f"{v:.1f}"
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
