"""Lease ledger: the checkpoint journal promoted to a crash-safe work queue.

The plain checkpoint journal (:mod:`repro.core.checkpoint`) records one
fact -- "this point is done" -- which is enough for single-driver resume
but invisible to everything in between: a worker that dies mid-point
leaves no trace, so its work is indistinguishable from work never started.
The ledger records the *whole lifecycle* of a point as typed, framed,
individually checksummed records in one append-only file::

    claim      {op, key, worker, pid, t, ttl}     worker took the point
    heartbeat  {op, key, worker, t}               worker still alive on it
    complete   {op, key, worker, t, summary}      durable result (fsynced)
    abandon    {op, key, worker, t, reason}       lease released unfinished

Replaying the records rebuilds the exact work-queue state: ``completed``
(summaries, bit-identical through JSON exactly like the journal) and
``leases`` (who holds what, since when, for how long).  A lease is *stale*
when its holder's pid no longer exists or its TTL has lapsed without a
heartbeat -- either way the point is reclaimable by anyone, so a worker
kill, stall, or partition costs one lease TTL, never the sweep.

Durability discipline matches the journal: ``complete`` records are
flushed and fsynced (a completed point survives any crash); ``claim`` and
``abandon`` are fsynced too (they gate exactly-once requeue accounting);
``heartbeat`` records are only flushed -- losing a heartbeat to a crash
costs nothing but an earlier-looking lease.  Damaged tails are repaired at
open exactly like the journal.  :meth:`compact` atomically rewrites the
file keeping every completed summary and live claim, so a long-running
farm's ledger stays bounded without ever losing resumability.
"""

import os
import time
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.checkpoint import (
    _plain, canonical_key, iter_records, pack_record,
)
from repro.core.errors import LedgerError
from repro.obs.metrics import registry
from repro.obs.spans import span

MAGIC = b"RPLL"
FORMAT_VERSION = 1

LEDGER_NAME = "sweep-ledger.rpll"

#: Default seconds a claim stays exclusive without a heartbeat.
DEFAULT_LEASE_TTL = 30.0

OPS = ("claim", "heartbeat", "complete", "abandon")


@dataclass
class Lease:
    """One live claim: who holds the point and how fresh the hold is."""

    worker: str
    pid: int
    t: float
    ttl: float


def _pid_alive(pid):
    """Best-effort liveness: ``False`` only when the pid surely exists not."""
    if not pid:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass  # pid exists but is not ours (EPERM) -- treat as alive
    return True


class LeaseLedger:
    """One append-only lease ledger over a sweep's points.

    Journal-compatible on the completed side (``entries`` / :meth:`get` /
    :meth:`append` mirror :class:`~repro.core.checkpoint.CheckpointJournal`,
    so ``run_sweep`` can use either interchangeably), plus the lease
    protocol (:meth:`claim` / :meth:`heartbeat` / :meth:`complete` /
    :meth:`abandon`) and recovery views (:meth:`stale_leases`,
    :meth:`reclaim_stale`).
    """

    def __init__(self, directory, name=LEDGER_NAME,
                 lease_ttl: float = DEFAULT_LEASE_TTL):
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise LedgerError(
                f"cannot create ledger directory {directory!r}: {exc}"
            ) from exc
        self.path = os.path.join(directory, name)
        self.lease_ttl = lease_ttl
        self.completed = {}
        self.leases = {}
        self.damaged = 0
        self._load_and_repair()
        try:
            self._fh = open(self.path, "ab")
        except OSError as exc:
            raise LedgerError(
                f"cannot open lease ledger {self.path!r}: {exc}") from exc

    # -- journal-compatible facade ----------------------------------------

    @property
    def entries(self):
        """Completed summaries by canonical key (the journal contract)."""
        return self.completed

    def get(self, key):
        """The completed summary for ``key``, or ``None``."""
        return self.completed.get(canonical_key(key))

    def append(self, key, summary):
        """Journal-compatible completion by the supervising parent."""
        self.complete(key, summary, worker="parent")

    def __contains__(self, key):
        return canonical_key(key) in self.completed

    def __len__(self):
        return len(self.completed)

    # -- loading -----------------------------------------------------------

    def _load_and_repair(self):
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return
        except OSError as exc:
            raise LedgerError(
                f"cannot read lease ledger {self.path!r}: {exc}") from exc
        good = 0
        total = len(data)
        for end, payload in iter_records(data, MAGIC, FORMAT_VERSION):
            if not self._apply(payload):
                break
            good = end
        if good < total:
            self.damaged += 1
            warnings.warn(
                f"lease ledger {self.path}: damaged record at byte {good} "
                f"(of {total}); keeping {len(self.completed)} completed "
                f"points and {len(self.leases)} leases, truncating the tail",
                stacklevel=2)
            with open(self.path, "r+b") as fh:
                fh.truncate(good)

    def _apply(self, payload):
        """Replay one record into the state machine; ``False`` on a record
        that parses but makes no sense (treated as tail damage)."""
        op = payload.get("op")
        if op not in OPS or "key" not in payload:
            return False
        ck = canonical_key(payload["key"])
        worker = payload.get("worker", "?")
        if op == "claim":
            if ck not in self.completed:
                self.leases[ck] = Lease(
                    worker=worker, pid=int(payload.get("pid") or 0),
                    t=float(payload.get("t") or 0.0),
                    ttl=float(payload.get("ttl") or self.lease_ttl))
        elif op == "heartbeat":
            lease = self.leases.get(ck)
            if lease is not None and lease.worker == worker:
                lease.t = float(payload.get("t") or lease.t)
        elif op == "complete":
            if "summary" not in payload:
                return False
            self.completed[ck] = payload["summary"]
            self.leases.pop(ck, None)
        elif op == "abandon":
            self.leases.pop(ck, None)
        return True

    # -- writing -----------------------------------------------------------

    def _write(self, payload, sync):
        record = pack_record(MAGIC, FORMAT_VERSION, payload)
        try:
            self._fh.write(record)
            self._fh.flush()
            if sync:
                os.fsync(self._fh.fileno())
        except (OSError, ValueError) as exc:
            raise LedgerError(
                f"cannot append to lease ledger {self.path!r}: {exc}"
            ) from exc
        reg = registry()
        reg.counter("ledger.appends").inc()
        reg.counter("ledger.bytes_written").inc(len(record))

    @staticmethod
    def _now():
        # Wall clock on purpose: lease timestamps are compared across
        # processes and across runs (a resumed sweep judges the previous
        # run's leases), where no shared monotonic clock exists.
        return time.time()  # repro: allow[DET002] cross-process lease clock

    # -- lease protocol ----------------------------------------------------

    def claim(self, key, worker, pid=None, ttl=None, now=None):
        """Take the lease on ``key`` for ``worker``; ``True`` on success.

        Fails (``False``, nothing written) when the point is already
        completed, or another holder's lease is still live.  A stale
        lease -- dead pid or lapsed TTL -- is silently superseded: the
        claim record itself is the reclaim.
        """
        ck = canonical_key(key)
        if ck in self.completed:
            return False
        now = self._now() if now is None else now
        lease = self.leases.get(ck)
        if lease is not None and lease.worker != worker \
                and not self._is_stale(lease, now):
            return False
        ttl = self.lease_ttl if ttl is None else ttl
        pid = os.getpid() if pid is None else pid
        self._write({"op": "claim", "key": _plain(key), "worker": worker,
                     "pid": pid, "t": now, "ttl": ttl}, sync=True)
        self.leases[ck] = Lease(worker=worker, pid=pid, t=now, ttl=ttl)
        registry().counter("ledger.claims").inc()
        return True

    def heartbeat(self, key, worker, now=None, sync=False):
        """Refresh ``worker``'s lease on ``key`` (no-op if not the holder)."""
        ck = canonical_key(key)
        lease = self.leases.get(ck)
        if lease is None or lease.worker != worker:
            return False
        now = self._now() if now is None else now
        self._write({"op": "heartbeat", "key": _plain(key),
                     "worker": worker, "t": now}, sync=sync)
        lease.t = now
        return True

    def complete(self, key, summary, worker="parent"):
        """Durably record ``key``'s summary; releases any lease on it."""
        ck = canonical_key(key)
        with span("ledger-complete", key=ck):
            self._write({"op": "complete", "key": _plain(key),
                         "worker": worker, "t": self._now(),
                         "summary": summary}, sync=True)
        self.completed[ck] = summary
        self.leases.pop(ck, None)
        registry().counter("ledger.completes").inc()

    def abandon(self, key, worker, reason=""):
        """Release ``worker``'s unfinished lease on ``key`` explicitly."""
        ck = canonical_key(key)
        self._write({"op": "abandon", "key": _plain(key), "worker": worker,
                     "t": self._now(), "reason": reason}, sync=True)
        self.leases.pop(ck, None)
        registry().counter("ledger.abandons").inc()

    # -- recovery ----------------------------------------------------------

    def _is_stale(self, lease, now):
        if not _pid_alive(lease.pid):
            return True
        return now - lease.t > lease.ttl

    def stale_leases(self, now: Optional[float] = None):
        """Canonical keys whose lease holder is dead or has lapsed."""
        now = self._now() if now is None else now
        return [ck for ck, lease in self.leases.items()
                if self._is_stale(lease, now)]

    def reclaim_stale(self, now: Optional[float] = None, reason="stale"):
        """Abandon every stale lease; returns the reclaimed canonical keys.

        This is the resume path's exactly-once requeue guarantee: the
        abandon records are durable before the caller requeues the points,
        so a second resume sees no stale leases and requeues nothing
        twice.
        """
        reclaimed = self.stale_leases(now)
        for ck in reclaimed:
            lease = self.leases[ck]
            self.abandon_canonical(ck, lease.worker, reason=reason)
        return reclaimed

    def abandon_canonical(self, ck, worker, reason=""):
        """:meth:`abandon` by canonical key (recovery paths hold those)."""
        self._write({"op": "abandon", "key": _from_canonical(ck),
                     "worker": worker, "t": self._now(),
                     "reason": reason}, sync=True)
        self.leases.pop(ck, None)
        registry().counter("ledger.abandons").inc()

    # -- compaction --------------------------------------------------------

    def compact(self):
        """Atomically rewrite the ledger to its live state; bytes saved.

        Keeps one ``complete`` record per finished point and one ``claim``
        per live lease, drops the heartbeat/abandon history.  The rewrite
        goes through a pid-suffixed temp file, is fsynced, and replaces
        the ledger in one rename -- a crash mid-compaction leaves the old
        file intact, so resumability is never at risk.
        """
        try:
            old_size = os.path.getsize(self.path)
        except OSError:
            old_size = 0
        tmp = self.path + f".tmp.{os.getpid()}"
        now = self._now()
        try:
            with open(tmp, "wb") as fh:
                for ck in sorted(self.completed):
                    fh.write(pack_record(MAGIC, FORMAT_VERSION, {
                        "op": "complete", "key": _from_canonical(ck),
                        "worker": "compact", "t": now,
                        "summary": self.completed[ck]}))
                for ck in sorted(self.leases):
                    lease = self.leases[ck]
                    fh.write(pack_record(MAGIC, FORMAT_VERSION, {
                        "op": "claim", "key": _from_canonical(ck),
                        "worker": lease.worker, "pid": lease.pid,
                        "t": lease.t, "ttl": lease.ttl}))
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            os.replace(tmp, self.path)
            self._fh = open(self.path, "ab")
        except OSError as exc:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise LedgerError(
                f"cannot compact lease ledger {self.path!r}: {exc}") from exc
        new_size = os.path.getsize(self.path)
        registry().counter("ledger.compactions").inc()
        return max(0, old_size - new_size)

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        try:
            self._fh.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def _from_canonical(ck):
    """The plain (JSON-value) key a canonical string encodes."""
    import json

    return json.loads(ck)
