"""The unified run API: one frozen config object, one experiment driver.

Before this module, every run-level knob travelled its own path: the CLI
called ``set_trace_dir`` here, ``set_strict_store`` there, threaded
``checkpoint_dir``/``point_timeout``/``retries`` through ``configure_sweep``,
and passed ``jobs`` positionally into each figure module.  :class:`RunConfig`
replaces that loose-kwarg threading with a single frozen dataclass built
once (by the CLI, or by a library caller) and passed whole through
runner -> sweep -> supervisor:

    >>> from repro.core import RunConfig, run_experiments, configure_run
    >>> cfg = RunConfig(scale="small", jobs=4, report_out="run.json")
    >>> configure_run(cfg)
    >>> outcome = run_experiments(["fig8", "fig9"], cfg)

The legacy keyword arguments of :func:`repro.core.sweep.run_sweep` keep
working through a thin deprecation shim that warns once per process; the
underlying process-wide stores (``sweep._SWEEP_DEFAULTS``, the trace-dir
and strict-store globals) remain the single source of truth, so old-style
and new-style configuration never diverge.
"""

import inspect
import time
import warnings
from dataclasses import asdict, dataclass, fields, replace
from typing import Optional

from repro.obs import enable as _obs_enable
from repro.obs import events as _events
from repro.obs.spans import span


@dataclass(frozen=True)
class RunConfig:
    """Everything a run of the experiment harness can be told once.

    Frozen: derive variants with :meth:`with_options` (or
    ``dataclasses.replace``), never by mutation -- a config handed to a
    sweep is immutable for the sweep's lifetime.

    ``scale``/``jobs`` select the workload sizing and worker processes;
    ``trace_dir`` the persistent trace store; ``checkpoint_dir``,
    ``point_timeout``, ``retries``, ``backoff`` tune the supervised
    executor; ``strict_store`` makes damaged store entries fatal;
    ``report_out`` and ``progress`` drive the observability layer
    (:mod:`repro.obs`); ``kernel`` picks the replay dispatch engine
    (``auto``/``batched``/``horizon``/``scalar``; see
    :mod:`repro.memsim.batch` and :mod:`repro.memsim.horizon`).

    ``backend`` selects the sweep executor (:mod:`repro.core.backend`):
    ``auto`` (process pool when ``jobs > 1``, else in-process), ``inproc``,
    ``pool``, or ``workers`` -- the lease-based multi-worker fabric, sized
    by ``workers`` (``0`` means "derive from jobs") with per-point lease
    TTL ``lease_ttl`` seconds (:mod:`repro.core.ledger`).
    """

    scale: str = "small"
    jobs: int = 1
    trace_dir: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    point_timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05
    strict_store: bool = False
    report_out: Optional[str] = None
    progress: bool = False
    kernel: str = "auto"
    backend: str = "auto"
    workers: int = 0
    lease_ttl: float = 30.0

    def as_dict(self):
        """Plain-dict view (the run report embeds this under ``config``)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        """Rebuild a config from :meth:`as_dict` output; unknown keys are
        ignored (reports from newer writers stay loadable)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def with_options(self, **changes):
        """A copy with ``changes`` applied (frozen-dataclass ``replace``)."""
        return replace(self, **changes)


#: The last config applied by :func:`configure_run` (CLI-facing fields the
#: legacy globals do not cover: scale, jobs, report_out, progress).
_CURRENT = RunConfig()


def configure_run(config):
    """Apply ``config`` to the process: the one call the CLI makes.

    Sets the persistent-trace directory, strict-store mode, the supervised
    executor's defaults, and switches the observability layer on when the
    config asks for a report or live progress.  Library callers that want
    per-call behaviour instead pass a config directly to
    :func:`repro.core.sweep.run_sweep`.
    """
    global _CURRENT
    from repro.core import tracestore
    from repro.core.experiment import set_trace_dir
    from repro.core.sweep import _SWEEP_DEFAULTS
    from repro.memsim.batch import set_default_kernel

    _CURRENT = config
    set_trace_dir(config.trace_dir)
    tracestore.set_strict(config.strict_store)
    set_default_kernel(config.kernel)
    _SWEEP_DEFAULTS.update(
        checkpoint_dir=config.checkpoint_dir,
        point_timeout=config.point_timeout,
        retries=config.retries,
        backoff=config.backoff,
    )
    if config.report_out or config.progress:
        _obs_enable()
    return config


def current_run_config(**overrides):
    """The process's effective :class:`RunConfig`, composed from the
    authoritative per-knob stores (so legacy ``configure_sweep`` /
    ``set_trace_dir`` calls are reflected), with ``overrides`` applied."""
    from repro.core import tracestore
    from repro.core.experiment import get_trace_dir
    from repro.core.sweep import _SWEEP_DEFAULTS
    from repro.memsim.batch import default_kernel

    cfg = replace(
        _CURRENT,
        trace_dir=get_trace_dir(),
        strict_store=tracestore.get_strict(),
        checkpoint_dir=_SWEEP_DEFAULTS["checkpoint_dir"],
        point_timeout=_SWEEP_DEFAULTS["point_timeout"],
        retries=_SWEEP_DEFAULTS["retries"],
        backoff=_SWEEP_DEFAULTS["backoff"],
        kernel=default_kernel(),
    )
    return replace(cfg, **overrides) if overrides else cfg


#: Registry names already warned about through the legacy dispatch shim
#: (modules present in ``REGISTRY`` but not in ``FAMILIES``).
_LEGACY_DISPATCH_WARNED = set()


def _legacy_run(name, mod, config):
    """Deprecated duck-typed dispatch for non-family registry modules.

    Until the family registry existed, ``run_experiments`` decided what to
    pass a module by sniffing ``run``'s signature.  Modules someone has
    injected into ``repro.experiments.REGISTRY`` without a ``FAMILIES``
    entry still work through this path, with a once-per-name
    ``DeprecationWarning`` pointing at the registry.
    """
    if name not in _LEGACY_DISPATCH_WARNED:
        _LEGACY_DISPATCH_WARNED.add(name)
        warnings.warn(
            f"experiment {name!r} is dispatched by run() signature "
            "sniffing; register it in repro.experiments.families.FAMILIES "
            "instead", DeprecationWarning, stacklevel=3)
    kwargs = {"scale": config.scale}
    if "jobs" in inspect.signature(mod.run).parameters:
        kwargs["jobs"] = config.jobs
    return mod.run(**kwargs)


def run_experiments(names, config=None, on_result=None):
    """Run the named experiments under one config; the library face of the
    ``repro-experiments`` CLI.

    ``names`` mixes family names (keys of
    :data:`repro.experiments.families.FAMILIES`) with
    :class:`~repro.workload.spec.ScenarioSpec` instances -- a spec runs as
    an ad hoc single-scenario experiment named after itself, its results
    being the :func:`repro.workload.run_scenario` dict.

    Returns ``{"outcomes": [{"name", "results", "seconds"}, ...],
    "interrupted": bool}``.  A ``KeyboardInterrupt`` mid-run keeps the
    completed outcomes and sets ``interrupted`` (completed sweep points
    are already durable when a checkpoint journal is configured).
    ``on_result(name, results, seconds)`` is called as each experiment
    finishes, so callers can render incrementally.
    """
    from repro.experiments import REGISTRY
    from repro.experiments.families import FAMILIES, run_family
    from repro.workload import run_scenario
    from repro.workload.spec import ScenarioSpec

    config = config or current_run_config()
    unknown = [n for n in names
               if not isinstance(n, ScenarioSpec)
               and n not in FAMILIES and n not in REGISTRY]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}")

    outcomes = []
    interrupted = False
    try:
        for entry in names:
            if isinstance(entry, ScenarioSpec):
                name = entry.name
                runner = lambda e=entry: run_scenario(
                    e, scale=config.scale, jobs=config.jobs, config=config)
            elif entry in FAMILIES:
                name = entry
                runner = lambda n=entry: run_family(n, config)
            else:
                name = entry
                runner = lambda n=entry: _legacy_run(n, REGISTRY[n], config)
            _events.emit("experiment.start", name=name)
            start = time.monotonic()
            with span("experiment", name=name, scale=config.scale):
                results = runner()
            elapsed = time.monotonic() - start
            _events.emit("experiment.end", name=name, seconds=elapsed)
            outcomes.append({"name": name, "results": results,
                             "seconds": elapsed})
            if on_result is not None:
                on_result(name, results, elapsed)
    except KeyboardInterrupt:
        interrupted = True
    return {"outcomes": outcomes, "interrupted": interrupted}


def build_run_report(config=None, outcomes=(), interrupted=False):
    """Assemble the structured run report for one :func:`run_experiments`
    outcome from the live observability state (metrics registry, span
    tree, recorded events)."""
    from repro.obs import build_report, events, registry, tracer

    return build_report(
        config=config or current_run_config(),
        experiments=[(o["name"], o["results"], o["seconds"])
                     for o in outcomes],
        metrics=registry(),
        spans=tracer().tree(),
        events=events.recorded(),
        interrupted=interrupted,
    )
