"""Typed error taxonomy for the experiment infrastructure.

The reproduction treats traces and partial sweep results as durable
artifacts, so every infrastructure failure mode has a dedicated type that
carries enough context to act on: which point, how many attempts, what the
workers reported.  Callers that want "any sweep-layer problem" catch
:class:`SweepError`; callers that want "any repro infrastructure problem"
catch :class:`ReproError`.

``TraceStoreError`` lives here (re-exported by :mod:`repro.core.tracestore`
for compatibility) because the store's damage taxonomy -- the ``cause``
attribute -- feeds the per-cause corruption counters that
``repro-experiments --time`` reports.

Every type also declares whether the failure is *retryable* (``retryable``
class attribute, read through :func:`is_retryable`): the supervised
executor and the worker backend use the classification to decide between
"charge an attempt and requeue" and "stop burning the retry budget, go
straight to in-process degradation".  The classification must survive the
worker protocol, so :func:`encode_error` / :func:`decode_error` round-trip
any exception through plain JSON-able dicts: known repro types come back
as themselves (message, point identity, cause taxonomy and all); foreign
types come back as :class:`RemoteWorkerError` carrying the original type
name -- never a pickled exception object.
"""


class ReproError(Exception):
    """Base class for every typed error the experiment stack raises.

    ``retryable`` classifies whether re-running the failed operation can
    plausibly succeed; subclasses override it, callers read it through
    :func:`is_retryable`.
    """

    retryable = True


class TraceStoreError(ReproError):
    """A stored trace is missing, damaged, or from an incompatible writer.

    ``cause`` classifies the damage for the corruption counters:
    ``"truncated"``, ``"checksum"``, ``"format"``, ``"header"``, ``"key"``,
    ``"arrays"``, ``"rows"``, or ``"other"``.  Retryable: the caller can
    re-record (or the sweep parent can re-spool) the entry.
    """

    def __init__(self, message, cause="other"):
        super().__init__(message)
        self.cause = cause


class TraceStoreWarning(UserWarning):
    """A damaged store entry was detected and silently fallen back from.

    Emitted (once per damaged load) in default mode, where the cache
    re-records; ``--strict-store`` raises :class:`TraceStoreError` instead.
    """


class CheckpointError(ReproError):
    """A checkpoint journal could not be opened or written.

    Not retryable: the journal lives in the parent, and a directory that
    cannot be created now will not create itself on the next attempt.
    """

    retryable = False


class LedgerError(CheckpointError):
    """A lease ledger could not be opened, written, or compacted."""


class SweepError(ReproError):
    """Base class for sweep-execution failures (see :mod:`repro.core.sweep`)."""


class PointFailure(SweepError):
    """One sweep point failed every recovery path.

    Raised only after bounded worker retries *and* the in-process
    degradation run have all failed; carries the point identity and the
    original error so the failure is actionable without a pool traceback.
    Not retryable by definition: it is the terminal verdict.
    """

    retryable = False

    def __init__(self, message, point_key=None, qid=None, attempts=0,
                 cause=None):
        super().__init__(message)
        self.point_key = point_key
        self.qid = qid
        self.attempts = attempts
        self.cause = cause


class PointTimeout(PointFailure):
    """A sweep point exceeded the per-point timeout (hung worker)."""


class InvalidPointResult(PointFailure):
    """A worker returned something that is not a summary dict (garbage)."""


class WorkerError(SweepError):
    """A sweep worker misbehaved: died, desynchronized, or went silent.

    Retryable: the point it was computing is deterministic and another
    worker (or the parent) can redo it.  ``worker_id`` names the culprit
    for the per-worker health events.
    """

    def __init__(self, message, worker_id=None, point_key=None, qid=None,
                 attempts=0, cause=None):
        super().__init__(message)
        self.worker_id = worker_id
        self.point_key = point_key
        self.qid = qid
        self.attempts = attempts
        self.cause = cause


class WorkerProtocolError(WorkerError):
    """A protocol frame from a worker was damaged (bad length prefix,
    CRC mismatch, undecodable payload).  The stream past the damage is
    unsynchronized, so the worker is killed and respawned; the point is
    retryable."""


class LeaseExpired(WorkerError):
    """A worker's lease on a point lapsed (stalled heartbeat, partition).

    The point was reclaimed and requeued; retryable by construction.
    """


class RemoteWorkerError(WorkerError):
    """An error type the parent does not know, reported over the protocol.

    ``remote_type`` preserves the original class name; ``retryable``
    is whatever the worker-side classification said (carried on the wire,
    set per instance by :func:`decode_error`).
    """

    def __init__(self, message, remote_type="Exception", **kwargs):
        super().__init__(message, **kwargs)
        self.remote_type = remote_type


def is_retryable(exc):
    """Whether re-attempting the operation that raised ``exc`` can succeed.

    Repro types carry their own classification; foreign exceptions default
    to retryable ``True`` (a transient environment problem is the common
    case, and retries are bounded anyway).
    """
    return bool(getattr(exc, "retryable", True))


# -- wire codec ------------------------------------------------------------

#: Attribute names :func:`encode_error` carries for typed errors (absent
#: attributes are simply skipped, so the codec never invents fields).
_WIRE_ATTRS = ("point_key", "qid", "attempts", "cause", "worker_id",
               "remote_type")

#: ``type name -> class`` for every error :func:`decode_error` can rebuild
#: exactly.  Anything else becomes :class:`RemoteWorkerError`.
_WIRE_TYPES = {
    cls.__name__: cls
    for cls in (TraceStoreError, CheckpointError, LedgerError, SweepError,
                PointFailure, PointTimeout, InvalidPointResult, WorkerError,
                WorkerProtocolError, LeaseExpired, RemoteWorkerError)
}


def encode_error(exc):
    """Flatten any exception to a JSON-able dict for the worker protocol.

    The dict carries the type name, message, retryability, and whichever
    :data:`_WIRE_ATTRS` the instance has.  A chained ``cause`` that is
    itself an exception is stringified -- the wire carries diagnosis
    context, never live objects.
    """
    attrs = {}
    for name in _WIRE_ATTRS:
        value = getattr(exc, name, None)
        if value is None:
            continue
        if isinstance(value, BaseException):
            value = f"{type(value).__name__}: {value}"
        elif isinstance(value, tuple):
            value = list(value)
        attrs[name] = value
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "retryable": is_retryable(exc),
        "attrs": attrs,
    }


def decode_error(data):
    """Rebuild an exception from :func:`encode_error` output.

    Known repro types come back as themselves with their attributes and
    class-level retryability; unknown types come back as
    :class:`RemoteWorkerError` with the wire's retryability flag, so the
    classification survives even for errors defined worker-side only.
    A malformed ``data`` yields a :class:`WorkerProtocolError` instead of
    raising -- the decoder is itself on the failure path.
    """
    if not isinstance(data, dict) or "message" not in data:
        return WorkerProtocolError(
            f"malformed error frame payload: {data!r}")
    name = data.get("type", "Exception")
    attrs = data.get("attrs") or {}
    if not isinstance(attrs, dict):
        attrs = {}
    if "point_key" in attrs and isinstance(attrs["point_key"], list):
        attrs = dict(attrs, point_key=tuple(attrs["point_key"]))
    cls = _WIRE_TYPES.get(name)
    try:
        if cls is TraceStoreError:
            exc = TraceStoreError(data["message"],
                                  cause=attrs.get("cause", "other"))
        elif cls is not None:
            kwargs = {k: v for k, v in attrs.items()
                      if k in _ctor_kwargs(cls)}
            exc = cls(data["message"], **kwargs)
        else:
            exc = RemoteWorkerError(data["message"], remote_type=name)
            exc.retryable = bool(data.get("retryable", True))
    except TypeError:
        exc = RemoteWorkerError(data["message"], remote_type=name)
        exc.retryable = bool(data.get("retryable", True))
    return exc


def _ctor_kwargs(cls):
    """Keyword arguments ``cls``'s constructor accepts beyond the message."""
    if issubclass(cls, WorkerError):
        kwargs = {"worker_id", "point_key", "qid", "attempts", "cause"}
        if cls is RemoteWorkerError:
            kwargs.add("remote_type")
        return kwargs
    if issubclass(cls, PointFailure):
        return {"point_key", "qid", "attempts", "cause"}
    return set()
