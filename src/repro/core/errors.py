"""Typed error taxonomy for the experiment infrastructure.

The reproduction treats traces and partial sweep results as durable
artifacts, so every infrastructure failure mode has a dedicated type that
carries enough context to act on: which point, how many attempts, what the
workers reported.  Callers that want "any sweep-layer problem" catch
:class:`SweepError`; callers that want "any repro infrastructure problem"
catch :class:`ReproError`.

``TraceStoreError`` lives here (re-exported by :mod:`repro.core.tracestore`
for compatibility) because the store's damage taxonomy -- the ``cause``
attribute -- feeds the per-cause corruption counters that
``repro-experiments --time`` reports.
"""


class ReproError(Exception):
    """Base class for every typed error the experiment stack raises."""


class TraceStoreError(ReproError):
    """A stored trace is missing, damaged, or from an incompatible writer.

    ``cause`` classifies the damage for the corruption counters:
    ``"truncated"``, ``"checksum"``, ``"format"``, ``"header"``, ``"key"``,
    ``"arrays"``, ``"rows"``, or ``"other"``.
    """

    def __init__(self, message, cause="other"):
        super().__init__(message)
        self.cause = cause


class TraceStoreWarning(UserWarning):
    """A damaged store entry was detected and silently fallen back from.

    Emitted (once per damaged load) in default mode, where the cache
    re-records; ``--strict-store`` raises :class:`TraceStoreError` instead.
    """


class CheckpointError(ReproError):
    """A checkpoint journal could not be opened or written."""


class SweepError(ReproError):
    """Base class for sweep-execution failures (see :mod:`repro.core.sweep`)."""


class PointFailure(SweepError):
    """One sweep point failed every recovery path.

    Raised only after bounded worker retries *and* the in-process
    degradation run have all failed; carries the point identity and the
    original error so the failure is actionable without a pool traceback.
    """

    def __init__(self, message, point_key=None, qid=None, attempts=0,
                 cause=None):
        super().__init__(message)
        self.point_key = point_key
        self.qid = qid
        self.attempts = attempts
        self.cause = cause


class PointTimeout(PointFailure):
    """A sweep point exceeded the per-point timeout (hung worker)."""


class InvalidPointResult(PointFailure):
    """A worker returned something that is not a summary dict (garbage)."""
