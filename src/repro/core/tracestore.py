"""Persistent trace store: recorded query traces as on-disk artifacts.

A :class:`~repro.core.tracecache.QueryTrace` is expensive to produce (one
full engine execution) and cheap to replay; the paper's own methodology
treats the Mint trace as the reusable artifact of that asymmetry.  This
module gives the reproduction the same property across *processes and
sessions*: a trace encodes to one self-describing binary blob that can be
written to a trace directory, shipped to a sweep worker, or loaded by a
later run -- without re-touching the database engine.

File format (version |version|, little-endian)::

    bytes 0..3    magic  b"RPTR"
    bytes 4..7    format version (u32)
    bytes 8..11   header length H (u32)
    bytes 12..    header: UTF-8 JSON, H bytes
    rest          payload: the six columnar arrays back to back
                  (``array.tobytes()``), then the pickled result rows

The JSON header carries the identifying key ``(scale name, database seed,
qid, query seed, node, arena size, lock_check_per_rescan)``, the typecode /
itemsize / element count of every array (so a platform whose ``array``
itemsizes differ is detected instead of mis-decoded), the interned lock-id
table, and a CRC-32 of the payload.  Every anticipated failure -- missing
file, truncation, bit flip, format-version bump, key collision, foreign
itemsize -- surfaces as :class:`TraceStoreError`, which callers
(:class:`~repro.core.tracecache.TraceCache`) treat as "not stored": they
fall back to re-recording, so a damaged store costs time, never
correctness.

The fallback is *visible*, not silent: every damaged load increments a
per-cause corruption counter (:func:`corruption_stats`, reported by
``repro-experiments --time``) and emits a :class:`TraceStoreWarning`.
``--strict-store`` (:func:`set_strict`) turns the fallback off entirely:
damage raises :class:`TraceStoreError` instead of re-recording, for runs
where a corrupted artifact must stop the world.
"""

import hashlib
import json
import os
import pickle
import struct
import time
import warnings
import zlib
from array import array

from repro.core.errors import TraceStoreError, TraceStoreWarning
from repro.obs.metrics import registry

__all__ = [
    "TraceStoreError", "TraceStoreWarning", "store_key", "trace_filename",
    "encode_trace", "decode_trace", "stored_key", "save_trace", "load_trace",
    "iter_traces", "clean_stale_temps", "corruption_stats", "set_strict",
    "get_strict",
]

MAGIC = b"RPTR"
FORMAT_VERSION = 1

_PREFIX = struct.Struct("<4sII")

#: QueryTrace column attributes, in payload order.
_COLUMNS = ("kinds", "a", "b", "c", "d", "e")

SUFFIX = ".trace"

#: Marker :func:`save_trace` puts in its temp-file names: ``<name>.tmp.<pid>``.
TMP_MARKER = ".tmp."

#: Age (seconds) beyond which an unparsable temp file counts as stale.
STALE_TMP_AGE = 3600.0

#: Strict mode: damaged entries raise instead of falling back to
#: re-recording.  Set by ``repro-experiments --strict-store``.
_STRICT = False

#: Metric-name prefix of the per-cause damaged-entry counters
#: (``tracestore.corrupt.checksum``, ``tracestore.corrupt.truncated``, ...).
CORRUPT_PREFIX = "tracestore.corrupt"


def set_strict(strict):
    """Globally toggle strict store mode (damage raises, never re-records)."""
    global _STRICT
    _STRICT = bool(strict)


def get_strict():
    """Whether strict store mode is on."""
    return _STRICT


def corruption_stats():
    """Observability for the fallback path, read from the metrics registry:
    total and per-cause damaged entries seen by this process, stale temp
    files removed, and *unique* store entries re-recorded after damage
    (a retried sweep point re-recording the same entry counts once)."""
    reg = registry()
    by_cause = {name[len(CORRUPT_PREFIX) + 1:]: metric.value
                for name, metric in reg.items(CORRUPT_PREFIX)}
    return {
        "corrupt": sum(by_cause.values()),
        "by_cause": by_cause,
        "stale_tmp_removed": reg.value("tracestore.stale_tmp_removed"),
        "rerecords": reg.value("tracestore.rerecords"),
        "read_races": reg.value("store.read_races"),
    }


def _count_damage(exc):
    registry().counter(f"{CORRUPT_PREFIX}.{exc.cause}").inc()


def store_key(scale_name, db_seed, qid, query_seed, node, arena_size,
              lock_check_per_rescan):
    """The identity under which a trace is stored.

    Everything that determines the recorded event stream, and nothing
    else: the database (scale preset + generation seed + the engine's
    per-rescan lock revalidation switch) and the query instance (qid +
    parameter seed + node + private-arena size).
    """
    return (scale_name, db_seed, qid, query_seed, node, arena_size,
            bool(lock_check_per_rescan))


def trace_filename(key):
    """Deterministic file name for ``key``: readable stem + key hash."""
    digest = hashlib.sha256(repr(key).encode()).hexdigest()[:12]
    scale_name, _, qid, query_seed, node = key[:5]
    return f"{scale_name}-{qid}-s{query_seed}-n{node}-{digest}{SUFFIX}"


def encode_trace(key, trace):
    """Serialize one trace (plus its identifying ``key``) to bytes."""
    from repro.core.tracecache import QueryTrace  # noqa: F401  (doc anchor)

    rows_blob = pickle.dumps(trace.rows, protocol=pickle.HIGHEST_PROTOCOL)
    chunks = [getattr(trace, name).tobytes() for name in _COLUMNS]
    chunks.append(rows_blob)
    payload = b"".join(chunks)
    header = {
        "key": list(key),
        "arrays": [[name, arr.typecode, arr.itemsize, len(arr)]
                   for name, arr in ((c, getattr(trace, c)) for c in _COLUMNS)],
        "lock_ids": list(trace.lock_ids),
        "n_source_events": trace.n_source_events,
        "rows_len": len(rows_blob),
        "payload_len": len(payload),
        "payload_crc": zlib.crc32(payload),
    }
    header_blob = json.dumps(header, separators=(",", ":")).encode()
    return _PREFIX.pack(MAGIC, FORMAT_VERSION, len(header_blob)) \
        + header_blob + payload


def decode_trace(data, expect_key=None):
    """Rebuild a :class:`QueryTrace` from :func:`encode_trace` bytes.

    Raises :class:`TraceStoreError` on any damage or incompatibility;
    never returns a partially decoded trace.  ``expect_key`` additionally
    pins the stored identity (a hash-collision / misfiled-blob guard).
    """
    from repro.core.tracecache import QueryTrace

    if len(data) < _PREFIX.size:
        raise TraceStoreError("blob shorter than the fixed prefix",
                              cause="truncated")
    magic, version, header_len = _PREFIX.unpack_from(data)
    if magic != MAGIC:
        raise TraceStoreError(f"bad magic {magic!r}", cause="format")
    if version != FORMAT_VERSION:
        raise TraceStoreError(
            f"format version {version} (this writer is {FORMAT_VERSION})",
            cause="format")
    body = data[_PREFIX.size:]
    if len(body) < header_len:
        raise TraceStoreError("truncated header", cause="truncated")
    try:
        header = json.loads(body[:header_len].decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceStoreError(f"undecodable header: {exc}",
                              cause="header") from None
    try:
        key = tuple(header["key"])
        arrays = header["arrays"]
        lock_ids = header["lock_ids"]
        n_source_events = header["n_source_events"]
        rows_len = header["rows_len"]
        payload_len = header["payload_len"]
        payload_crc = header["payload_crc"]
    except (KeyError, TypeError) as exc:
        raise TraceStoreError(f"malformed header: {exc}",
                              cause="header") from None
    if expect_key is not None and key != tuple(expect_key):
        raise TraceStoreError(
            f"stored key {key!r} does not match expected {tuple(expect_key)!r}",
            cause="key")
    payload = body[header_len:]
    if len(payload) != payload_len:
        raise TraceStoreError(
            f"payload is {len(payload)} bytes, header says {payload_len}",
            cause="truncated")
    if zlib.crc32(payload) != payload_crc:
        raise TraceStoreError("payload checksum mismatch", cause="checksum")

    trace = QueryTrace()
    offset = 0
    for name, typecode, itemsize, count in arrays:
        arr = array(typecode)
        if arr.itemsize != itemsize:
            raise TraceStoreError(
                f"array {name!r}: typecode {typecode!r} is {arr.itemsize} "
                f"bytes here but {itemsize} in the store", cause="format")
        nbytes = itemsize * count
        arr.frombytes(payload[offset:offset + nbytes])
        offset += nbytes
        setattr(trace, name, arr)
    lengths = {len(getattr(trace, name)) for name in _COLUMNS}
    if len(lengths) != 1:
        raise TraceStoreError("column arrays have unequal lengths",
                              cause="arrays")
    try:
        trace.rows = pickle.loads(payload[offset:offset + rows_len])
    except Exception as exc:  # pickle raises a zoo of types on damage
        raise TraceStoreError(f"unpicklable result rows: {exc}",
                              cause="rows") from None
    trace.lock_ids = list(lock_ids)
    trace.n_source_events = n_source_events
    trace._rows_nbytes = rows_len
    return trace, key


def stored_key(data):
    """The identifying key of an encoded blob (header-only peek)."""
    if len(data) < _PREFIX.size:
        raise TraceStoreError("blob shorter than the fixed prefix",
                              cause="truncated")
    magic, version, header_len = _PREFIX.unpack_from(data)
    if magic != MAGIC:
        raise TraceStoreError(f"bad magic {magic!r}", cause="format")
    if version != FORMAT_VERSION:
        raise TraceStoreError(
            f"format version {version} (this writer is {FORMAT_VERSION})",
            cause="format")
    try:
        header = json.loads(data[_PREFIX.size:_PREFIX.size + header_len].decode())
        return tuple(header["key"])
    except (ValueError, UnicodeDecodeError, KeyError, TypeError) as exc:
        raise TraceStoreError(f"undecodable header: {exc}",
                              cause="header") from None


def save_trace(directory, key, trace):
    """Write one trace under ``directory``; returns the bytes written.

    The write is atomic (temp file + rename), so a concurrent or crashed
    writer can leave a stale temp file but never a half-written store
    entry.
    """
    os.makedirs(directory, exist_ok=True)
    blob = encode_trace(key, trace)
    path = os.path.join(directory, trace_filename(key))
    tmp = path + f".tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)
    return len(blob)


def _writer_racing(path):
    """Whether a live writer's ``*.tmp.<pid>`` sibling of ``path`` exists.

    :func:`save_trace` writes temp-then-rename, so a reader can observe a
    half-replaced entry only in the window where the writer's temp file
    is still on disk (or the rename just landed).  A sibling whose pid is
    alive is exactly that window.
    """
    directory, name = os.path.split(path)
    try:
        siblings = os.listdir(directory)
    except OSError:
        return False
    prefix = name + TMP_MARKER
    for sibling in sorted(siblings):
        if not sibling.startswith(prefix):
            continue
        pid_part = sibling[len(prefix):]
        if not pid_part.isdigit():
            continue
        pid = int(pid_part)
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            return True  # writer is alive: an in-flight save_trace
        except ProcessLookupError:
            continue
        except OSError:
            return True  # pid exists but is not ours: assume alive
    return False


def load_trace(directory, key, strict=None):
    """Load the trace stored for ``key``; ``(trace, nbytes)`` or ``None``.

    A missing file is a normal cold-cache miss and returns ``None``
    quietly.  Damage -- truncation, checksum failure, version or key
    mismatch -- increments the matching corruption counter, emits a
    :class:`TraceStoreWarning`, and returns ``None`` so callers fall back
    to re-recording; under strict mode (``strict=True``, or the
    :func:`set_strict` global when ``strict`` is ``None``) the
    :class:`TraceStoreError` propagates instead.

    One exception: a checksum/truncation failure while a concurrent
    writer's ``*.tmp.<pid>`` sibling exists is a read *race*, not
    corruption -- the entry is re-read once, and a successful retry is
    counted under ``store.read_races`` instead of the corruption
    counters (strict mode included: a race is not damage).
    """
    path = os.path.join(directory, trace_filename(key))
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return None
    try:
        trace, _ = decode_trace(data, expect_key=key)
    except TraceStoreError as exc:
        if exc.cause in ("checksum", "truncated") and _writer_racing(path):
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
                trace, _ = decode_trace(data, expect_key=key)
            except (OSError, TraceStoreError):
                pass  # still unreadable: fall through as real damage
            else:
                registry().counter("store.read_races").inc()
                return trace, len(data)
        _count_damage(exc)
        if _STRICT if strict is None else strict:
            raise
        # The caller now re-records this entry.  Count re-records per
        # *unique* stored artifact (the entry's path): a sweep point
        # retried after a worker crash re-reads and re-records the same
        # damaged entry once per attempt, but it is still one damaged
        # artifact in the summary.
        registry().unique("tracestore.rerecords").add(str(path))
        warnings.warn(f"damaged trace store entry {path}: {exc} "
                      "(falling back to re-recording)",
                      TraceStoreWarning, stacklevel=2)
        return None
    return trace, len(data)


def iter_traces(directory, strict=None):
    """Yield ``(key, trace, nbytes)`` for every readable stored trace.

    Damaged files are counted, warned about, and skipped (raised under
    strict mode); foreign files are ignored outright: a trace directory is
    a cache, and a cache with a bad entry is just a smaller cache.
    """
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return
    for name in names:
        if not name.endswith(SUFFIX):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
            trace, key = decode_trace(data)
        except OSError:
            continue
        except TraceStoreError as exc:
            _count_damage(exc)
            if _STRICT if strict is None else strict:
                raise
            warnings.warn(f"damaged trace store entry {path}: {exc} "
                          "(skipped)", TraceStoreWarning, stacklevel=2)
            continue
        yield key, trace, len(data)


def clean_stale_temps(directory, max_age=STALE_TMP_AGE):
    """Remove stale ``*.tmp.<pid>`` files a crashed writer left behind.

    A temp file is stale when its writer pid no longer exists (an alive
    pid means a concurrent writer mid-:func:`save_trace`; it is left
    alone), or -- for unparsable names -- when it is older than
    ``max_age`` seconds.  Called whenever a trace directory is opened
    (:class:`~repro.core.tracecache.TraceCache` with a ``trace_dir``).
    Returns the number of files removed.
    """
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    removed = 0
    # Wall clock on purpose: it is compared against on-disk mtimes.
    now = time.time()  # repro: allow[DET002] compared to file mtimes
    for name in names:
        if TMP_MARKER not in name:
            continue
        path = os.path.join(directory, name)
        pid_part = name.rsplit(".", 1)[-1]
        if pid_part.isdigit():
            pid = int(pid_part)
            if pid == os.getpid():
                continue
            try:
                os.kill(pid, 0)
                continue  # writer is alive: an in-flight save_trace
            except ProcessLookupError:
                pass  # writer is gone: stale
            except (PermissionError, OSError):
                continue  # pid exists but is not ours: leave it alone
        else:
            try:
                if now - os.path.getmtime(path) < max_age:
                    continue
            except OSError:
                continue
        try:
            os.remove(path)
            removed += 1
        except OSError:
            pass
    if removed:
        registry().counter("tracestore.stale_tmp_removed").inc(removed)
    return removed
