"""Persistent trace store: recorded query traces as on-disk artifacts.

A :class:`~repro.core.tracecache.QueryTrace` is expensive to produce (one
full engine execution) and cheap to replay; the paper's own methodology
treats the Mint trace as the reusable artifact of that asymmetry.  This
module gives the reproduction the same property across *processes and
sessions*: a trace encodes to one self-describing binary blob that can be
written to a trace directory, shipped to a sweep worker, or loaded by a
later run -- without re-touching the database engine.

File format (version |version|, little-endian)::

    bytes 0..3    magic  b"RPTR"
    bytes 4..7    format version (u32)
    bytes 8..11   header length H (u32)
    bytes 12..    header: UTF-8 JSON, H bytes
    rest          payload: the six columnar arrays back to back
                  (``array.tobytes()``), then the pickled result rows

The JSON header carries the identifying key ``(scale name, database seed,
qid, query seed, node, arena size, lock_check_per_rescan)``, the typecode /
itemsize / element count of every array (so a platform whose ``array``
itemsizes differ is detected instead of mis-decoded), the interned lock-id
table, and a CRC-32 of the payload.  Every anticipated failure -- missing
file, truncation, bit flip, format-version bump, key collision, foreign
itemsize -- surfaces as :class:`TraceStoreError`, which callers
(:class:`~repro.core.tracecache.TraceCache`) treat as "not stored": they
silently fall back to re-recording, so a damaged store costs time, never
correctness.
"""

import hashlib
import json
import os
import pickle
import struct
import zlib
from array import array

MAGIC = b"RPTR"
FORMAT_VERSION = 1

_PREFIX = struct.Struct("<4sII")

#: QueryTrace column attributes, in payload order.
_COLUMNS = ("kinds", "a", "b", "c", "d", "e")

SUFFIX = ".trace"


class TraceStoreError(Exception):
    """A stored trace is missing, damaged, or from an incompatible writer."""


def store_key(scale_name, db_seed, qid, query_seed, node, arena_size,
              lock_check_per_rescan):
    """The identity under which a trace is stored.

    Everything that determines the recorded event stream, and nothing
    else: the database (scale preset + generation seed + the engine's
    per-rescan lock revalidation switch) and the query instance (qid +
    parameter seed + node + private-arena size).
    """
    return (scale_name, db_seed, qid, query_seed, node, arena_size,
            bool(lock_check_per_rescan))


def trace_filename(key):
    """Deterministic file name for ``key``: readable stem + key hash."""
    digest = hashlib.sha256(repr(key).encode()).hexdigest()[:12]
    scale_name, _, qid, query_seed, node = key[:5]
    return f"{scale_name}-{qid}-s{query_seed}-n{node}-{digest}{SUFFIX}"


def encode_trace(key, trace):
    """Serialize one trace (plus its identifying ``key``) to bytes."""
    from repro.core.tracecache import QueryTrace  # noqa: F401  (doc anchor)

    rows_blob = pickle.dumps(trace.rows, protocol=pickle.HIGHEST_PROTOCOL)
    chunks = [getattr(trace, name).tobytes() for name in _COLUMNS]
    chunks.append(rows_blob)
    payload = b"".join(chunks)
    header = {
        "key": list(key),
        "arrays": [[name, arr.typecode, arr.itemsize, len(arr)]
                   for name, arr in ((c, getattr(trace, c)) for c in _COLUMNS)],
        "lock_ids": list(trace.lock_ids),
        "n_source_events": trace.n_source_events,
        "rows_len": len(rows_blob),
        "payload_len": len(payload),
        "payload_crc": zlib.crc32(payload),
    }
    header_blob = json.dumps(header, separators=(",", ":")).encode()
    return _PREFIX.pack(MAGIC, FORMAT_VERSION, len(header_blob)) \
        + header_blob + payload


def decode_trace(data, expect_key=None):
    """Rebuild a :class:`QueryTrace` from :func:`encode_trace` bytes.

    Raises :class:`TraceStoreError` on any damage or incompatibility;
    never returns a partially decoded trace.  ``expect_key`` additionally
    pins the stored identity (a hash-collision / misfiled-blob guard).
    """
    from repro.core.tracecache import QueryTrace

    if len(data) < _PREFIX.size:
        raise TraceStoreError("blob shorter than the fixed prefix")
    magic, version, header_len = _PREFIX.unpack_from(data)
    if magic != MAGIC:
        raise TraceStoreError(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise TraceStoreError(
            f"format version {version} (this writer is {FORMAT_VERSION})")
    body = data[_PREFIX.size:]
    if len(body) < header_len:
        raise TraceStoreError("truncated header")
    try:
        header = json.loads(body[:header_len].decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceStoreError(f"undecodable header: {exc}") from None
    try:
        key = tuple(header["key"])
        arrays = header["arrays"]
        lock_ids = header["lock_ids"]
        n_source_events = header["n_source_events"]
        rows_len = header["rows_len"]
        payload_len = header["payload_len"]
        payload_crc = header["payload_crc"]
    except (KeyError, TypeError) as exc:
        raise TraceStoreError(f"malformed header: {exc}") from None
    if expect_key is not None and key != tuple(expect_key):
        raise TraceStoreError(
            f"stored key {key!r} does not match expected {tuple(expect_key)!r}")
    payload = body[header_len:]
    if len(payload) != payload_len:
        raise TraceStoreError(
            f"payload is {len(payload)} bytes, header says {payload_len}")
    if zlib.crc32(payload) != payload_crc:
        raise TraceStoreError("payload checksum mismatch")

    trace = QueryTrace()
    offset = 0
    for name, typecode, itemsize, count in arrays:
        arr = array(typecode)
        if arr.itemsize != itemsize:
            raise TraceStoreError(
                f"array {name!r}: typecode {typecode!r} is {arr.itemsize} "
                f"bytes here but {itemsize} in the store")
        nbytes = itemsize * count
        arr.frombytes(payload[offset:offset + nbytes])
        offset += nbytes
        setattr(trace, name, arr)
    lengths = {len(getattr(trace, name)) for name in _COLUMNS}
    if len(lengths) != 1:
        raise TraceStoreError("column arrays have unequal lengths")
    try:
        trace.rows = pickle.loads(payload[offset:offset + rows_len])
    except Exception as exc:  # pickle raises a zoo of types on damage
        raise TraceStoreError(f"unpicklable result rows: {exc}") from None
    trace.lock_ids = list(lock_ids)
    trace.n_source_events = n_source_events
    trace._rows_nbytes = rows_len
    return trace, key


def stored_key(data):
    """The identifying key of an encoded blob (header-only peek)."""
    if len(data) < _PREFIX.size:
        raise TraceStoreError("blob shorter than the fixed prefix")
    magic, version, header_len = _PREFIX.unpack_from(data)
    if magic != MAGIC:
        raise TraceStoreError(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise TraceStoreError(
            f"format version {version} (this writer is {FORMAT_VERSION})")
    try:
        header = json.loads(data[_PREFIX.size:_PREFIX.size + header_len].decode())
        return tuple(header["key"])
    except (ValueError, UnicodeDecodeError, KeyError, TypeError) as exc:
        raise TraceStoreError(f"undecodable header: {exc}") from None


def save_trace(directory, key, trace):
    """Write one trace under ``directory``; returns the bytes written.

    The write is atomic (temp file + rename), so a concurrent or crashed
    writer can leave a stale temp file but never a half-written store
    entry.
    """
    os.makedirs(directory, exist_ok=True)
    blob = encode_trace(key, trace)
    path = os.path.join(directory, trace_filename(key))
    tmp = path + f".tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)
    return len(blob)


def load_trace(directory, key):
    """Load the trace stored for ``key``; ``(trace, nbytes)`` or ``None``.

    Any damage -- missing file, truncation, checksum failure, version or
    key mismatch -- returns ``None`` so callers fall back to re-recording.
    """
    path = os.path.join(directory, trace_filename(key))
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return None
    try:
        trace, _ = decode_trace(data, expect_key=key)
    except TraceStoreError:
        return None
    return trace, len(data)


def iter_traces(directory):
    """Yield ``(key, trace, nbytes)`` for every readable stored trace.

    Damaged or foreign files are skipped, not raised: a trace directory is
    a cache, and a cache with a bad entry is just a smaller cache.
    """
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return
    for name in names:
        if not name.endswith(SUFFIX):
            continue
        try:
            with open(os.path.join(directory, name), "rb") as fh:
                data = fh.read()
            trace, key = decode_trace(data)
        except (OSError, TraceStoreError):
            continue
        yield key, trace, len(data)
