"""Intra-query parallelism: one query, all processors.

The paper's closing line lists intra-query parallelism as remaining work.
This module implements its simplest and most common form for DSS:
partitioned sequential scans.  A single aggregate query over one table is
split into N plan clones, each scanning a contiguous slice of the table's
pages; the partial aggregates are combined by a coordinator at the end.

Supported plan shape: ``Project(Aggregate(SeqScan))`` with SUM / COUNT /
MIN / MAX aggregates (AVG decomposes into SUM and COUNT, which callers can
do in SQL).  This covers Q6-style scans, the bread and butter of DSS.
"""

import copy

from repro.db.plan import Aggregate, Project, SeqScan, walk
from repro.memsim.interleave import Interleaver
from repro.memsim.numa import NumaMachine
from repro.tpcd.scales import get_scale
from repro.core.experiment import WorkloadResult, workload_database

_COMBINABLE = {"SUM", "COUNT", "MIN", "MAX"}


class ParallelPlanError(ValueError):
    """The plan cannot be decomposed into partitioned partial aggregates."""


def _validate(plan):
    if not isinstance(plan, Project) or not isinstance(plan.child, Aggregate):
        raise ParallelPlanError(
            "intra-query parallelism needs a single-table aggregate query "
            "(Project over Aggregate over SeqScan)"
        )
    agg = plan.child
    if not isinstance(agg.child, SeqScan):
        raise ParallelPlanError("the aggregate's input must be a SeqScan")
    for func, _arg, _name in agg.aggs:
        if func not in _COMBINABLE:
            raise ParallelPlanError(
                f"aggregate {func} cannot be combined across partitions; "
                f"supported: {sorted(_COMBINABLE)}"
            )
    return agg


def partition_plan(plan, k, n):
    """Clone ``plan`` with its SeqScan restricted to partition ``k`` of ``n``."""
    _validate(plan)
    clone = copy.deepcopy(plan)
    for node in walk(clone):
        if isinstance(node, SeqScan):
            node.partition = (k, n)
    return clone


def combine_partials(plan, partial_rows):
    """Combine per-partition aggregate rows into the final result row.

    ``partial_rows`` is a list of single-row results (one per partition),
    each aligned to the Aggregate node's output.  Returns one row aligned
    to the plan's (Project) output.

    Partitions that produced SUM/MIN/MAX over zero rows contribute ``None``
    and are skipped, matching SQL semantics.
    """
    agg = _validate(plan)
    combined = []
    for j, (func, _arg, _name) in enumerate(agg.aggs):
        values = [row[j] for row in partial_rows if row[j] is not None]
        if func == "COUNT":
            combined.append(sum(row[j] for row in partial_rows))
        elif not values:
            combined.append(None)
        elif func == "SUM":
            combined.append(sum(values))
        elif func == "MIN":
            combined.append(min(values))
        else:
            combined.append(max(values))
    # Re-apply the projection over the combined aggregate row.
    from repro.db.expr import compile_expr

    positions = {name: i for i, (_f, _a, name) in enumerate(agg.aggs)}
    return [compile_expr(e, positions)(combined) for e in plan.exprs]


def run_intra_query_workload(sql, scale="small", db=None, n_procs=4,
                             machine_config=None, hints=None):
    """Run one aggregate query partitioned across all processors.

    Returns ``(WorkloadResult, combined_row)``.  Compare against
    ``run_query_workload`` (inter-query parallelism) or a single-processor
    run to measure intra-query speedup.
    """
    scale = get_scale(scale)
    db = db or workload_database(scale)
    plan = db.plan(sql, hints=hints)
    _validate(plan)
    cfg = machine_config or scale.machine_config()
    machine = NumaMachine(cfg, home_fn=db.shmem.home_fn())
    backends = [db.backend(i, arena_size=scale.arena_size)
                for i in range(n_procs)]
    sink = {}

    def stream(i):
        rows = yield from db.execute(partition_plan(plan, i, n_procs),
                                     backends[i])
        sink[i] = rows

    run = Interleaver(machine).run([stream(i) for i in range(n_procs)])
    partials = [sink[i][0] for i in range(n_procs) if sink[i]]
    combined = combine_partials(plan, partials)
    result = WorkloadResult(sql, scale, machine, run, sink)
    return result, combined
