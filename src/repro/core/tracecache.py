"""Trace record/replay cache: run each query once, simulate it many times.

The reference stream a query emits is *machine-independent*: the engine
never observes the simulated memory system (the interleaver only ever calls
``next()`` on a stream), so the exact same event sequence drives every
machine configuration of a sweep.  The paper's own methodology separates
trace generation (Mint) from memory-system analysis; this module does the
same for the reproduction.

A :class:`QueryTrace` stores one ``(qid, seed, node, arena_size)`` event
stream in a compact columnar encoding -- four flat arrays plus an interned
spinlock-name table -- with consecutive ``EV_BUSY`` and consecutive
``EV_HIT`` events coalesced at record time.  Coalescing is exact: busy/hit
events only advance the emitting processor's clock and add to additive
counters, and the engine never emits them inside a spinlock critical
section, so waiter-observed holder clocks are unchanged.  Spinlock *retry*
logic lives in the interleaver (a contended acquire is re-dispatched from
``pending``, never re-emitted by the stream), so replayed lock handoffs
reproduce live coherence behaviour bit for bit.

Result rows are captured at record time, so replayed workloads still
populate ``WorkloadResult.rows_per_cpu``.

:class:`TraceCache` memoizes traces per database the way
``experiment._DB_CACHE`` memoizes databases; use
:func:`repro.core.experiment.workload_trace_cache` for the shared
per-scale instance and :func:`repro.core.experiment.clear_caches` to drop
both layers.  With a ``trace_dir`` the cache also reads through to the
persistent store (:mod:`repro.core.tracestore`): a memory miss tries the
store before recording, and every fresh recording is written back, so a
second process or session starts warm.
"""

import pickle
from array import array

from repro.memsim.events import (
    EV_BUSY, EV_HIT, EV_LOCK_ACQ, EV_LOCK_REL, EV_WRITE,
)
from repro.obs.metrics import registry
from repro.obs.spans import span
from repro.tpcd.queries import query_instance
from repro.tpcd.scales import get_scale


class QueryTrace:
    """One recorded event stream in columnar form, plus its result rows.

    Layout (parallel arrays, one entry per coalesced event):

    ========  =============  ============  =========  ============  =========
    kind      ``a``          ``b``         ``c``      ``d``         ``e``
    ========  =============  ============  =========  ============  =========
    READ      addr           size          cls        inert cycles  hit count
    WRITE     addr           size          cls        inert cycles  hit count
    BUSY      cycles         --            --         --            --
    HIT       count          --            --         --            --
    LOCK_ACQ  lock-id index  addr          cls        --            --
    LOCK_REL  lock-id index  addr          cls        --            --
    ========  =============  ============  =========  ============  =========

    ``d``/``e`` carry the run of busy/hit events that followed a memory
    reference, fused into its row: replay dispatches the reference and the
    trailing compute cycles in one step.  The fusion is exact because
    busy/hit events never touch the machine -- they only advance the
    emitting processor's clock and add to additive counters, so the global
    order of machine operations is unchanged (``e`` is the always-hit
    reference count inside ``d``, which feeds the machine's ``l1_reads``).
    Standalone busy/hit runs (at stream start or after a lock event, whose
    retry dispatch must not carry extra cycles) stay their own rows.
    """

    __slots__ = ("kinds", "a", "b", "c", "d", "e", "lock_ids", "rows",
                 "n_source_events", "_rows_nbytes", "_columns",
                 "_batch_base", "_batch_plans", "_share_base")

    def __init__(self):
        self.kinds = array("b")
        self.a = array("q")
        self.b = array("q")
        self.c = array("b")
        self.d = array("l")
        self.e = array("l")
        self.lock_ids = []
        self.rows = None
        self.n_source_events = 0
        self._rows_nbytes = None
        self._columns = None
        self._batch_base = None
        self._batch_plans = {}
        self._share_base = {}

    def columns(self):
        """The six columns as plain lists, memoized.

        ``array`` storage is the compact at-rest encoding; replay dispatch
        indexes the columns millions of times, and plain lists avoid the
        per-access int boxing ``array.__getitem__`` pays.  Sweeps replay
        one trace against dozens of machine configurations, so the boxed
        view is built once and kept (it is dropped with the trace itself
        when a cache is cleared).
        """
        cols = self._columns
        if cols is None:
            cols = self._columns = (list(self.kinds), list(self.a),
                                    list(self.b), list(self.c),
                                    list(self.d), list(self.e))
        return cols

    def batch_plan(self, l1_shift, n_sets):
        """Run-partition metadata for the batched replay kernel, memoized
        per L1 geometry (see :func:`repro.memsim.batch.trace_plan`); like
        :meth:`columns`, the derived view is paid once per trace, not per
        replay, and dropped with the trace itself."""
        from repro.memsim.batch import trace_plan

        return trace_plan(self, l1_shift, n_sets)

    def __len__(self):
        return len(self.kinds)

    def nbytes(self):
        """Approximate encoded size in bytes (diagnostics).

        Counts everything the persistent store writes: the six columnar
        arrays, the interned lock-id table, and the pickled result rows
        (measured once and memoized -- pickling is also exactly what
        :func:`repro.core.tracestore.encode_trace` does with them).
        """
        n = sum(arr.itemsize * len(arr)
                for arr in (self.kinds, self.a, self.b, self.c,
                            self.d, self.e))
        n += sum(len(lock_id) for lock_id in self.lock_ids)
        if self._rows_nbytes is None:
            self._rows_nbytes = len(
                pickle.dumps(self.rows, protocol=pickle.HIGHEST_PROTOCOL))
        return n + self._rows_nbytes

    def replay(self, sink=None, node=None):
        """Generator re-emitting the recorded events as plain tuples.

        Tuples have the shapes of :mod:`repro.memsim.events`, so the
        interleaver consumes a replay stream unchanged -- except fused
        memory references, which extend the 4-tuple with their trailing
        ``(inert cycles, hit count)`` and dispatch as one event.  When
        ``sink`` is given, ``sink[node]`` is set to the recorded result
        rows after the last event, mirroring the live ``_query_stream``
        behaviour.
        """
        lock_ids = self.lock_ids
        for k, x, y, z, inert, hits in zip(self.kinds, self.a, self.b,
                                           self.c, self.d, self.e):
            if k <= EV_WRITE:  # EV_READ / EV_WRITE
                if inert:
                    yield (k, x, y, z, inert, hits)
                else:
                    yield (k, x, y, z)
            elif k == EV_BUSY or k == EV_HIT:
                yield (k, x)
            else:  # EV_LOCK_ACQ / EV_LOCK_REL
                yield (k, lock_ids[x], y, z)
        if sink is not None:
            sink[node] = self.rows


def record(gen):
    """Consume a traced generator; return its :class:`QueryTrace`.

    Busy/hit events following a memory reference are fused into that row's
    ``d``/``e`` columns; standalone runs of consecutive ``EV_BUSY`` (or
    consecutive ``EV_HIT``) events are merged into one row.
    """
    trace = QueryTrace()
    kinds = trace.kinds
    a = trace.a
    b = trace.b
    c = trace.c
    d = trace.d
    e = trace.e
    lock_ids = trace.lock_ids
    lock_index = {}
    n = 0
    fusable = False      # last row is READ/WRITE with no lock event since
    last_mergeable = -1  # kind of the previous row iff standalone BUSY/HIT
    try:
        while True:
            ev = next(gen)
            n += 1
            k = ev[0]
            if k == EV_BUSY or k == EV_HIT:
                if fusable:
                    d[-1] += ev[1]
                    if k == EV_HIT:
                        e[-1] += ev[1]
                    continue
                if k == last_mergeable:
                    a[-1] += ev[1]
                    continue
                kinds.append(k)
                a.append(ev[1])
                b.append(0)
                c.append(0)
                d.append(0)
                e.append(0)
                last_mergeable = k
                continue
            last_mergeable = -1
            if k <= EV_WRITE:  # EV_READ / EV_WRITE
                kinds.append(k)
                a.append(ev[1])
                b.append(ev[2])
                c.append(ev[3])
                d.append(0)
                e.append(0)
                fusable = True
            elif k == EV_LOCK_ACQ or k == EV_LOCK_REL:
                lock_id = ev[1]
                idx = lock_index.get(lock_id)
                if idx is None:
                    idx = lock_index[lock_id] = len(lock_ids)
                    lock_ids.append(lock_id)
                kinds.append(k)
                a.append(idx)
                b.append(ev[2])
                c.append(ev[3])
                d.append(0)
                e.append(0)
                fusable = False
            else:
                raise ValueError(f"unknown event kind {k!r}")
    except StopIteration as stop:
        trace.rows = stop.value
    trace.n_source_events = n
    return trace


class TraceCache:
    """Memoized query traces for one database instance.

    Traces are keyed by ``(qid, seed, node, arena_size)``.  Recording is
    side-effect free on the database (queries are read-only and the
    recording backend's transaction id is the deterministic per-node one a
    live workload would use), so live and replayed runs can be freely
    interleaved against the same database.

    ``trace_dir`` (with ``db_seed``, the seed the database was generated
    from) turns on read-through persistence: a miss in memory tries
    :func:`repro.core.tracestore.load_trace` before paying for an engine
    execution, and every fresh recording is saved back.  Damaged or
    incompatible store files silently fall back to re-recording (and are
    overwritten with a good copy).  The ``hits`` / ``records`` / ``loads``
    / ``bytes_read`` / ``bytes_written`` counters make the traffic
    observable (``repro-experiments --time`` reports them).

    ``db`` may be a zero-argument callable instead of a database: it is
    invoked on the first actual recording, so a session whose traces all
    come from the store (or from shipped bytes) never pays for a database
    build at all.  A lazy cache must state ``lock_check_per_rescan``
    explicitly if its database would be non-default.

    Damaged store entries fall back to re-recording with a warning and a
    corruption counter (:func:`repro.core.tracestore.corruption_stats`);
    ``strict_store=True`` raises :class:`TraceStoreError` instead
    (``None`` defers to the ``--strict-store`` global).  Opening a cache
    with a ``trace_dir`` also sweeps stale ``*.tmp.<pid>`` files left by
    crashed writers.
    """

    def __init__(self, db, scale, trace_dir=None, db_seed=None,
                 lock_check_per_rescan=None, strict_store=None):
        self._db = db
        self.scale = get_scale(scale)
        self.trace_dir = trace_dir
        self.db_seed = db_seed
        self.strict_store = strict_store
        if trace_dir is not None:
            from repro.core.tracestore import clean_stale_temps

            clean_stale_temps(trace_dir)
        if lock_check_per_rescan is None:
            lock_check_per_rescan = (True if callable(db) else
                                     getattr(db, "lock_check_per_rescan",
                                             True))
        self.lock_check_per_rescan = bool(lock_check_per_rescan)
        self._traces = {}
        self.hits = 0
        self.records = 0
        self.loads = 0
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def db(self):
        """The backing database, materialized on first use if lazy."""
        if callable(self._db):
            self._db = self._db()
        return self._db

    def _store_key(self, qid, seed, node, arena_size):
        from repro.core.tracestore import store_key

        return store_key(self.scale.name, self.db_seed, qid, seed, node,
                         arena_size, self.lock_check_per_rescan)

    def get(self, qid, seed, node, arena_size=None):
        """Return the trace for one query instance.

        Resolution order: in-memory memo, then the persistent store (when
        ``trace_dir`` is set), then a fresh recording -- which is written
        back to the store.
        """
        if arena_size is None:
            arena_size = self.scale.arena_size
        key = (qid, seed, node, arena_size)
        reg = registry()
        trace = self._traces.get(key)
        if trace is not None:
            self.hits += 1
            reg.counter("tracecache.hits").inc()
            return trace
        if self.trace_dir is not None:
            from repro.core.tracestore import load_trace, save_trace

            skey = self._store_key(qid, seed, node, arena_size)
            loaded = load_trace(self.trace_dir, skey, strict=self.strict_store)
            if loaded is not None:
                trace, nbytes = loaded
                self.loads += 1
                self.bytes_read += nbytes
                reg.counter("tracecache.loads").inc()
                reg.counter("tracecache.bytes_read").inc(nbytes)
                self._traces[key] = trace
                return trace
            trace = self._record(qid, seed, node, arena_size)
            self.records += 1
            reg.counter("tracecache.records").inc()
            written = save_trace(self.trace_dir, skey, trace)
            self.bytes_written += written
            reg.counter("tracecache.bytes_written").inc(written)
        else:
            trace = self._record(qid, seed, node, arena_size)
            self.records += 1
            reg.counter("tracecache.records").inc()
        self._traces[key] = trace
        return trace

    def _record(self, qid, seed, node, arena_size):
        if qid.startswith("scn:"):
            # Scenario traces (repro.workload): the whole multi-tenant
            # session is recorded in one canonical pass on a private
            # database -- the shared read-only instance behind this cache
            # must never see UF1/UF2 mutations -- and this cache keeps the
            # per-node stream.  The query-parameter ``seed`` is unused
            # (scenario randomness comes from the spec), but stays in the
            # store identity like every other trace.
            from repro.workload.session import record_scenario

            db_seed = self.db_seed if self.db_seed is not None else 42
            traces = record_scenario(qid, self.scale, db_seed, arena_size,
                                     lock_check=self.lock_check_per_rescan)
            if node not in traces:
                raise KeyError(
                    f"scenario {qid!r} records {len(traces)} CPUs; "
                    f"node {node} was requested (SweepPoint.n_procs must "
                    "equal the spec's cpus)")
            return traces[node]
        qi = query_instance(qid, seed=seed)
        backend = self.db.backend(node, arena_size=arena_size)
        with span("record", qid=qid, seed=seed, node=node):
            return record(self.db.execute(qi.sql, backend, hints=qi.hints))

    # -- persistence -----------------------------------------------------------

    def save_to(self, directory):
        """Write every in-memory trace to ``directory``; bytes written."""
        from repro.core.tracestore import save_trace

        written = 0
        for (qid, seed, node, arena_size), trace in self._traces.items():
            written += save_trace(
                directory, self._store_key(qid, seed, node, arena_size), trace)
        self.bytes_written += written
        return written

    def load_from(self, directory):
        """Preload every stored trace that belongs to this cache.

        Matches on the full store identity (scale, database seed, engine
        lock-check mode); entries already in memory are kept.  Returns the
        number of traces loaded.
        """
        from repro.core.tracestore import iter_traces

        n = 0
        for key, trace, nbytes in iter_traces(directory,
                                              strict=self.strict_store):
            scale_name, db_seed, qid, seed, node, arena_size, lc = key
            if (scale_name != self.scale.name or db_seed != self.db_seed
                    or lc != self.lock_check_per_rescan):
                continue
            mkey = (qid, seed, node, arena_size)
            if mkey in self._traces:
                continue
            self._traces[mkey] = trace
            self.loads += 1
            self.bytes_read += nbytes
            n += 1
        return n

    def stream(self, qid, seed, node, arena_size=None, sink=None):
        """A replay generator ready to hand to the interleaver as node's
        processor stream."""
        return self.get(qid, seed, node, arena_size).replay(sink=sink, node=node)

    # -- bookkeeping -----------------------------------------------------------

    def __len__(self):
        return len(self._traces)

    def clear(self):
        """Drop every recorded trace."""
        self._traces.clear()

    def stats(self):
        """Summary of cache contents and traffic: traces, events, encoded
        bytes, plus the hit/record/load counters and store byte totals."""
        return {
            "traces": len(self._traces),
            "events": sum(len(t) for t in self._traces.values()),
            "source_events": sum(t.n_source_events
                                 for t in self._traces.values()),
            "bytes": sum(t.nbytes() for t in self._traces.values()),
            "hits": self.hits,
            "records": self.records,
            "loads": self.loads,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }
