"""Deterministic fault injection for the sweep execution layer.

Recovery code that is never exercised is broken code; this module makes
every failure mode of a parallel sweep reproducible on demand so the tests
(and the CI smoke job) can prove each recovery path instead of trusting it.

Faults are declared in the ``REPRO_FAULTS`` environment variable -- the
environment is the one channel that reaches ``spawn`` pool workers without
touching the task payload -- as a comma-separated list of
``kind@index`` entries::

    REPRO_FAULTS="crash@1,hang@3*2,garbage@0"

``index`` is the sweep-point submission index (the Nth worker task);
``kind`` is one of

``crash``
    the worker process exits hard (``os._exit``), like an OOM kill --
    exercises ``BrokenProcessPool`` pool respawn;
``hang``
    the task sleeps ``REPRO_FAULTS_HANG`` seconds (default 300) --
    exercises the per-point timeout and pool kill;
``raise``
    the task raises :class:`InjectedFault` -- exercises worker exception
    propagation and retry;
``garbage``
    the task returns a non-summary object -- exercises result validation.

``*N`` makes a fault fire on the first *N* attempts of that point (default
1), so a retried point deterministically succeeds -- or keeps failing, to
exercise the in-process degradation path.  Faults fire only inside pool
workers (:func:`maybe_inject` is called from the worker task body), never
in the supervising parent, so degraded in-process execution of a
persistently failing point completes.

:func:`corrupt_file` is the store-side counterpart: it bit-flips or
truncates an on-disk artifact (trace-store entry, checkpoint journal) the
way real disk/writer damage would, deterministically.  It doubles as a
tiny CLI for the CI smoke job::

    python -m repro.core.faults flip  path/to/entry.trace
    python -m repro.core.faults truncate  path/to/entry.trace
"""

import os
import time

ENV_VAR = "REPRO_FAULTS"
ENV_HANG = "REPRO_FAULTS_HANG"

KINDS = ("crash", "hang", "raise", "garbage")

#: Exit status of an injected worker crash (visible in pool diagnostics).
CRASH_EXIT_CODE = 13


class InjectedFault(RuntimeError):
    """The error an injected ``raise`` fault produces in a worker."""


class FaultPlan:
    """A parsed fault specification: ``{point index: (kind, attempts)}``."""

    def __init__(self, by_index=None, hang_seconds=None):
        self.by_index = dict(by_index or {})
        if hang_seconds is None:
            hang_seconds = float(os.environ.get(ENV_HANG, "300"))
        self.hang_seconds = hang_seconds

    @classmethod
    def parse(cls, spec):
        """Parse ``"kind@index[*attempts],..."``; raises ``ValueError``."""
        by_index = {}
        for entry in (spec or "").split(","):
            entry = entry.strip()
            if not entry:
                continue
            try:
                kind, _, rest = entry.partition("@")
                index, _, count = rest.partition("*")
                index = int(index)
                count = int(count) if count else 1
            except ValueError:
                raise ValueError(
                    f"bad {ENV_VAR} entry {entry!r} "
                    "(expected kind@index or kind@index*attempts)") from None
            if kind not in KINDS:
                raise ValueError(
                    f"bad {ENV_VAR} entry {entry!r}: unknown kind {kind!r} "
                    f"(expected one of {', '.join(KINDS)})")
            if count < 1:
                raise ValueError(
                    f"bad {ENV_VAR} entry {entry!r}: attempts must be >= 1")
            by_index[index] = (kind, count)
        return cls(by_index)

    def action(self, index, attempt):
        """The fault kind to fire for ``(index, attempt)``, or ``None``."""
        entry = self.by_index.get(index)
        if entry is None:
            return None
        kind, count = entry
        return kind if attempt < count else None

    def __bool__(self):
        return bool(self.by_index)


# -- active plan -----------------------------------------------------------

#: Test-API override (parent process only); ``None`` defers to the env var.
_OVERRIDE = None
_CACHED_SPEC = None
_CACHED_PLAN = FaultPlan()


def install(plan):
    """Install a :class:`FaultPlan` directly (test API, this process only)."""
    global _OVERRIDE
    _OVERRIDE = plan


def clear():
    """Drop an installed plan; the environment variable rules again."""
    global _OVERRIDE
    _OVERRIDE = None


def active_plan():
    """The plan in force: an installed one, else ``REPRO_FAULTS`` (memoized
    per spec string, so env changes between pools are picked up)."""
    global _CACHED_SPEC, _CACHED_PLAN
    if _OVERRIDE is not None:
        return _OVERRIDE
    spec = os.environ.get(ENV_VAR, "")
    if spec != _CACHED_SPEC:
        _CACHED_PLAN = FaultPlan.parse(spec)
        _CACHED_SPEC = spec
    return _CACHED_PLAN


#: The sentinel a ``garbage`` fault returns in place of a summary dict.
GARBAGE = {"injected": "garbage"}


def maybe_inject(index, attempt):
    """Fire the configured fault for worker task ``(index, attempt)``.

    Returns ``None`` (no fault / fault already spent), or a garbage object
    the caller must return *instead of* computing its summary.  ``crash``
    never returns; ``hang`` sleeps; ``raise`` raises
    :class:`InjectedFault`.
    """
    plan = active_plan()
    if not plan:
        return None
    kind = plan.action(index, attempt)
    if kind is None:
        return None
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if kind == "hang":
        time.sleep(plan.hang_seconds)
        return None
    if kind == "raise":
        raise InjectedFault(
            f"injected worker failure at point {index} (attempt {attempt})")
    return dict(GARBAGE, point=index, attempt=attempt)


# -- on-disk damage --------------------------------------------------------

def corrupt_file(path, mode="flip"):
    """Deterministically damage one on-disk artifact.

    ``flip`` XORs a bit in the byte 7 from the end (inside a trace-store
    payload, past the header); ``truncate`` cuts the file in half.
    Returns the new length.
    """
    with open(path, "rb") as fh:
        data = bytearray(fh.read())
    if mode == "flip":
        if len(data) < 8:
            raise ValueError(f"{path}: too short to bit-flip safely")
        data[-7] ^= 0x01
    elif mode == "truncate":
        data = data[:len(data) // 2]
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    with open(path, "wb") as fh:
        fh.write(bytes(data))
    return len(data)


def main(argv=None):
    import sys

    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2 or argv[0] not in ("flip", "truncate"):
        print("usage: python -m repro.core.faults {flip|truncate} PATH",
              file=sys.stderr)
        return 2
    n = corrupt_file(argv[1], argv[0])
    print(f"{argv[0]} {argv[1]} -> {n} bytes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
