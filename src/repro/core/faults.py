"""Deterministic fault injection for the sweep execution layer.

Recovery code that is never exercised is broken code; this module makes
every failure mode of a parallel sweep reproducible on demand so the tests
(and the CI smoke job) can prove each recovery path instead of trusting it.

Faults are declared in the ``REPRO_FAULTS`` environment variable -- the
environment is the one channel that reaches ``spawn`` pool workers without
touching the task payload -- as a comma-separated list of
``kind@index`` entries::

    REPRO_FAULTS="crash@1,hang@3*2,garbage@0"

``index`` is the sweep-point submission index (the Nth worker task);
``kind`` is one of

``crash``
    the worker process exits hard (``os._exit``), like an OOM kill --
    exercises ``BrokenProcessPool`` pool respawn;
``hang``
    the task sleeps ``REPRO_FAULTS_HANG`` seconds (default 300) --
    exercises the per-point timeout and pool kill;
``raise``
    the task raises :class:`InjectedFault` -- exercises worker exception
    propagation and retry;
``garbage``
    the task returns a non-summary object -- exercises result validation.

``*N`` makes a fault fire on the first *N* attempts of that point (default
1), so a retried point deterministically succeeds -- or keeps failing, to
exercise the in-process degradation path.  Faults fire only inside pool
workers (:func:`maybe_inject` is called from the worker task body), never
in the supervising parent, so degraded in-process execution of a
persistently failing point completes.

The worker backend (:mod:`repro.core.backend`) adds *worker-targeted*
kinds that attack the fabric instead of the computation -- same
``kind@index[*attempts]`` grammar, fired through :func:`worker_action`
from inside a ``repro-sweep-worker`` process:

``wstall``
    the worker suppresses heartbeats for the point -- exercises lease
    expiry and the parent's stale-worker kill;
``wpartition``
    the worker goes completely silent mid-point (no heartbeats, no
    result), like a network partition -- exercises lease reclaim of a
    worker that will never answer;
``wcorrupt``
    the worker flips a byte inside its result frame after the checksum is
    computed -- exercises protocol-level damage detection and the
    kill-and-retry path.

``crash``/``hang``/``raise``/``garbage`` fire in ``repro-sweep-worker``
processes too (the worker's point runner calls :func:`maybe_inject` like
a pool task does), so one grammar drives both executors.

Finally, ``chaos@SEED[*PERCENT]`` turns on *seeded randomized chaos*: for
every ``(point index, attempt)`` not covered by an explicit entry, a
deterministic per-coordinate RNG fires a fault with probability
``PERCENT``/100 (default 25), drawn from :data:`CHAOS_MENU`.  The same
seed always produces the same fault schedule, so a CI job can sweep a
randomized fault matrix and still assert bit-identical results.

:func:`corrupt_file` is the store-side counterpart: it bit-flips or
truncates an on-disk artifact (trace-store entry, checkpoint journal) the
way real disk/writer damage would, deterministically.  It doubles as a
tiny CLI for the CI smoke job::

    python -m repro.core.faults flip  path/to/entry.trace
    python -m repro.core.faults truncate  path/to/entry.trace
"""

import os
import random
import time

ENV_VAR = "REPRO_FAULTS"
ENV_HANG = "REPRO_FAULTS_HANG"

#: Kinds that corrupt the *computation* (fired by :func:`maybe_inject`).
COMPUTE_KINDS = ("crash", "hang", "raise", "garbage")

#: Kinds that attack the *worker fabric* (fired by :func:`worker_action`).
WORKER_KINDS = ("wstall", "wpartition", "wcorrupt")

KINDS = COMPUTE_KINDS + WORKER_KINDS

#: The fault population seeded chaos draws from: every deterministic,
#: self-limiting kind.  ``hang``/``wpartition`` are excluded -- they need
#: a point timeout / lease TTL tuned to the run to terminate, which a
#: randomized schedule cannot assume.
CHAOS_MENU = ("crash", "raise", "garbage", "wstall", "wcorrupt")

#: Default chaos fire probability (percent) when ``chaos@SEED`` has no
#: ``*PERCENT`` suffix.
CHAOS_DEFAULT_PERCENT = 25

#: Exit status of an injected worker crash (visible in pool diagnostics).
CRASH_EXIT_CODE = 13


class InjectedFault(RuntimeError):
    """The error an injected ``raise`` fault produces in a worker."""


class FaultPlan:
    """A parsed fault specification: ``{point index: (kind, attempts)}``,
    plus an optional seeded-chaos schedule ``(seed, percent)``."""

    def __init__(self, by_index=None, hang_seconds=None, chaos=None):
        self.by_index = dict(by_index or {})
        if hang_seconds is None:
            hang_seconds = float(os.environ.get(ENV_HANG, "300"))
        self.hang_seconds = hang_seconds
        self.chaos = chaos

    @classmethod
    def parse(cls, spec):
        """Parse ``"kind@index[*attempts],..."``; raises ``ValueError``.

        ``chaos@SEED[*PERCENT]`` entries configure the randomized-but-
        seeded schedule instead of a per-index fault.
        """
        by_index = {}
        chaos = None
        for entry in (spec or "").split(","):
            entry = entry.strip()
            if not entry:
                continue
            try:
                kind, _, rest = entry.partition("@")
                index, _, count = rest.partition("*")
                index = int(index)
                count = int(count) if count else 1
            except ValueError:
                raise ValueError(
                    f"bad {ENV_VAR} entry {entry!r} "
                    "(expected kind@index or kind@index*attempts)") from None
            if kind == "chaos":
                percent = count if "*" in rest else CHAOS_DEFAULT_PERCENT
                if not 1 <= percent <= 100:
                    raise ValueError(
                        f"bad {ENV_VAR} entry {entry!r}: chaos percent must "
                        "be in 1..100")
                chaos = (index, percent)
                continue
            if kind not in KINDS:
                raise ValueError(
                    f"bad {ENV_VAR} entry {entry!r}: unknown kind {kind!r} "
                    f"(expected one of {', '.join(KINDS)} or chaos)")
            if count < 1:
                raise ValueError(
                    f"bad {ENV_VAR} entry {entry!r}: attempts must be >= 1")
            by_index[index] = (kind, count)
        return cls(by_index, chaos=chaos)

    def _scheduled(self, index, attempt):
        """The raw kind for ``(index, attempt)`` from the explicit table,
        else the seeded chaos schedule, else ``None``."""
        entry = self.by_index.get(index)
        if entry is not None:
            kind, count = entry
            return kind if attempt < count else None
        if self.chaos is not None:
            seed, percent = self.chaos
            # Per-coordinate RNG: the schedule depends only on (seed,
            # index, attempt), never on call order -- string seeding is
            # hash-independent (sha512), so it is stable across processes.
            rng = random.Random(f"chaos:{seed}:{index}:{attempt}")
            if rng.random() * 100.0 < percent:
                return rng.choice(CHAOS_MENU)
        return None

    def action(self, index, attempt):
        """The *compute* fault to fire for ``(index, attempt)``, or
        ``None``.  Worker-fabric kinds are invisible here -- they fire
        through :func:`worker_action` instead."""
        kind = self._scheduled(index, attempt)
        return kind if kind in COMPUTE_KINDS else None

    def worker_action(self, index, attempt):
        """The *worker-fabric* fault for ``(index, attempt)``, or ``None``."""
        kind = self._scheduled(index, attempt)
        return kind if kind in WORKER_KINDS else None

    def __bool__(self):
        return bool(self.by_index) or self.chaos is not None


# -- active plan -----------------------------------------------------------

#: Test-API override (parent process only); ``None`` defers to the env var.
_OVERRIDE = None
_CACHED_SPEC = None
_CACHED_PLAN = FaultPlan()


def install(plan):
    """Install a :class:`FaultPlan` directly (test API, this process only)."""
    global _OVERRIDE
    _OVERRIDE = plan


def clear():
    """Drop an installed plan; the environment variable rules again."""
    global _OVERRIDE
    _OVERRIDE = None


def active_plan():
    """The plan in force: an installed one, else ``REPRO_FAULTS`` (memoized
    per spec string, so env changes between pools are picked up)."""
    global _CACHED_SPEC, _CACHED_PLAN
    if _OVERRIDE is not None:
        return _OVERRIDE
    spec = os.environ.get(ENV_VAR, "")
    if spec != _CACHED_SPEC:
        _CACHED_PLAN = FaultPlan.parse(spec)
        _CACHED_SPEC = spec
    return _CACHED_PLAN


#: The sentinel a ``garbage`` fault returns in place of a summary dict.
GARBAGE = {"injected": "garbage"}


def maybe_inject(index, attempt):
    """Fire the configured fault for worker task ``(index, attempt)``.

    Returns ``None`` (no fault / fault already spent), or a garbage object
    the caller must return *instead of* computing its summary.  ``crash``
    never returns; ``hang`` sleeps; ``raise`` raises
    :class:`InjectedFault`.
    """
    plan = active_plan()
    if not plan:
        return None
    kind = plan.action(index, attempt)
    if kind is None:
        return None
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if kind == "hang":
        time.sleep(plan.hang_seconds)
        return None
    if kind == "raise":
        raise InjectedFault(
            f"injected worker failure at point {index} (attempt {attempt})")
    return dict(GARBAGE, point=index, attempt=attempt)


def worker_action(index, attempt):
    """The worker-fabric fault for ``(index, attempt)``, or ``None``.

    Called by ``repro-sweep-worker`` (:mod:`repro.core.worker`) before it
    computes a point: ``wstall`` suppresses heartbeats, ``wpartition``
    goes silent, ``wcorrupt`` damages the result frame.  Pool workers
    never call this -- the fabric kinds have no meaning there.
    """
    plan = active_plan()
    if not plan:
        return None
    return plan.worker_action(index, attempt)


# -- on-disk damage --------------------------------------------------------

def corrupt_file(path, mode="flip"):
    """Deterministically damage one on-disk artifact.

    ``flip`` XORs a bit in the byte 7 from the end (inside a trace-store
    payload, past the header); ``truncate`` cuts the file in half.
    Returns the new length.
    """
    with open(path, "rb") as fh:
        data = bytearray(fh.read())
    if mode == "flip":
        if len(data) < 8:
            raise ValueError(f"{path}: too short to bit-flip safely")
        data[-7] ^= 0x01
    elif mode == "truncate":
        data = data[:len(data) // 2]
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    with open(path, "wb") as fh:
        fh.write(bytes(data))
    return len(data)


def main(argv=None):
    import sys

    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2 or argv[0] not in ("flip", "truncate"):
        print("usage: python -m repro.core.faults {flip|truncate} PATH",
              file=sys.stderr)
        return 2
    n = corrupt_file(argv[1], argv[0])
    print(f"{argv[0]} {argv[1]} -> {n} bytes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
