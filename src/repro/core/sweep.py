"""Parallel sweep driver: one trace recording, many machine simulations.

Sweep experiments (Figures 8-11, the ablation benchmarks) simulate the same
workload under many machine configurations.  Live execution costs
``O(configs x full-engine-execution)``; with the trace cache it is
``O(1 engine execution + configs x replay)``, and the replays are
independent, so they also parallelize over a process pool.

A sweep is a list of :class:`SweepPoint` specifications -- picklable, so
they can be shipped to ``spawn`` workers.  Each worker process rebuilds the
(deterministic) database and trace cache once, then iterates its assigned
points; results come back as plain-dict summaries (:func:`summarize`), not
live ``WorkloadResult`` objects, so nothing unpicklable crosses the
process boundary.

With ``jobs=1`` (the default) everything runs in-process against the
shared per-scale caches; results are identical either way because database
generation, query parameters, and backend transaction ids are all
process-independent.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.memsim.events import CLASS_NAMES, DataClass, N_CLASSES
from repro.memsim.interleave import Interleaver
from repro.memsim.numa import NumaMachine
from repro.tpcd.scales import get_scale


@dataclass(frozen=True)
class SweepPoint:
    """One simulation of a sweep: a workload under one machine setup.

    ``key`` identifies the point in the result dict.  ``machine`` holds
    :class:`~repro.memsim.numa.MachineConfig` overrides applied to the
    scale's baseline (e.g. ``{"l2_line": 128, "l1_line": 64}``).  The
    remaining fields select workload-side variants used by the ablation
    benchmarks: private-arena size, NUMA page placement (``"shared"``
    round-robin or ``"node0"`` single-home), and the engine's per-rescan
    lock revalidation.
    """

    key: object
    qid: str
    machine: dict = field(default_factory=dict)
    n_procs: int = 4
    seed_base: int = 0
    arena_size: int = None
    placement: str = "shared"
    lock_check_per_rescan: bool = True


def summarize(result):
    """Reduce a :class:`WorkloadResult` to a picklable plain-dict summary.

    Carries everything the sweep-based experiments read: execution time,
    the Busy/MSync/SMem/PMem split, grouped and per-class miss counts for
    both cache levels, and per-processor time accounting.
    """
    stats = result.stats
    return {
        "exec_time": result.exec_time,
        "components": result.time_components(),
        "breakdown": result.breakdown(),
        "l1_grouped": stats.grouped("l1"),
        "l2_grouped": stats.grouped("l2"),
        "l1_by_class": {CLASS_NAMES[DataClass(c)]: sum(stats.l1_read_misses[c])
                        for c in range(N_CLASSES)},
        "l2_by_class": {CLASS_NAMES[DataClass(c)]: sum(stats.l2_read_misses[c])
                        for c in range(N_CLASSES)},
        "l1_reads": stats.l1_reads,
        "l1_writes": stats.l1_writes,
        "cpu": [
            {"busy": s.busy, "msync": s.msync, "mem": s.mem,
             "finish_time": s.finish_time}
            for s in result.run.cpu_stats
        ],
    }


# -- per-process database / trace-cache store -----------------------------------

#: ``(scale_name, seed, lock_check_per_rescan) -> (db, TraceCache)``, one
#: entry per variant per process (workers build their own copy once).
_VARIANT_CACHE = {}

#: ``(scale_name, seed, point identity) -> summary``.  Sweep points are
#: deterministic, so experiments that sweep the same configurations (the
#: Figure 8/9 and Figure 10/11 pairs report misses and time from identical
#: simulations) share one run per point.  Treat cached summaries as
#: immutable: copy before editing.
_POINT_CACHE = {}


def _point_cache_key(point, scale, seed):
    return (scale.name, seed, point.qid,
            tuple(sorted(point.machine.items())), point.n_procs,
            point.seed_base, point.arena_size, point.placement,
            point.lock_check_per_rescan)


def _variant(scale, seed, lock_check_per_rescan):
    from repro.core.experiment import workload_database, workload_trace_cache
    from repro.core.tracecache import TraceCache
    from repro.tpcd.dbgen import build_database

    if lock_check_per_rescan:
        return (workload_database(scale, seed),
                workload_trace_cache(scale, seed))
    key = (scale.name, seed, lock_check_per_rescan)
    if key not in _VARIANT_CACHE:
        db = build_database(sf=scale.sf, seed=seed)
        db.lock_check_per_rescan = lock_check_per_rescan
        _VARIANT_CACHE[key] = (db, TraceCache(db, scale))
    return _VARIANT_CACHE[key]


def clear_variant_cache():
    """Drop the sweep driver's ablation-variant databases and traces, and
    the memoized point summaries."""
    _VARIANT_CACHE.clear()
    _POINT_CACHE.clear()


def _home_fn(db, placement):
    if placement == "shared":
        return db.shmem.home_fn()
    if placement == "node0":
        return lambda addr: 0
    raise ValueError(f"unknown placement {placement!r}")


def run_point(point, scale, seed=42):
    """Simulate one sweep point from the per-process caches; return its
    summary dict (memoized per point identity)."""
    from repro.core.experiment import WorkloadResult

    scale = get_scale(scale)
    ckey = _point_cache_key(point, scale, seed)
    summary = _POINT_CACHE.get(ckey)
    if summary is not None:
        return summary
    db, trace_cache = _variant(scale, seed, point.lock_check_per_rescan)
    cfg = scale.machine_config(**point.machine)
    machine = NumaMachine(cfg, home_fn=_home_fn(db, point.placement))
    sink = {}
    arena = point.arena_size or scale.arena_size
    streams = [
        trace_cache.stream(point.qid, point.seed_base + i, i,
                           arena_size=arena, sink=sink)
        for i in range(point.n_procs)
    ]
    run = Interleaver(machine).run(streams)
    summary = summarize(WorkloadResult(point.qid, scale, machine, run, sink))
    _POINT_CACHE[ckey] = summary
    return summary


# -- process-pool execution ------------------------------------------------------

_WORKER_ARGS = None


def _worker_init(scale, seed):
    global _WORKER_ARGS
    _WORKER_ARGS = (scale, seed)


def _worker_run(point):
    scale, seed = _WORKER_ARGS
    return run_point(point, scale, seed=seed)


def run_sweep(points, scale="small", seed=42, jobs=1):
    """Run every sweep point; return ``{point.key: summary}`` in order.

    ``jobs=1`` runs in-process.  ``jobs>1`` fans the points out over a
    ``spawn`` process pool; each worker rebuilds the database and records
    the traces it needs exactly once, then replays its assigned points.
    Results are independent of ``jobs``.
    """
    points = list(points)
    scale = get_scale(scale)
    # Only memo misses go to the pool: a sweep whose points were already
    # simulated (e.g. fig9 right after fig8) answers from the parent's
    # memo without spawning workers.
    todo = [p for p in points
            if _point_cache_key(p, scale, seed) not in _POINT_CACHE]
    if jobs > 1 and len(todo) > 1:
        ctx = multiprocessing.get_context("spawn")
        jobs = min(jobs, len(todo))
        # Contiguous chunks keep one query's config points together
        # (sweeps are built query-major), so a worker usually records one
        # trace set and replays its whole chunk against it.
        chunksize = max(1, len(todo) // (jobs * 2))
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx,
                                 initializer=_worker_init,
                                 initargs=(scale, seed)) as pool:
            summaries = list(pool.map(_worker_run, todo,
                                      chunksize=chunksize))
        # Keep the parent's memo warm so a later sweep over the same
        # points (the misses/time figure pairs) is free.
        for p, s in zip(todo, summaries):
            _POINT_CACHE[_point_cache_key(p, scale, seed)] = s
    return {p.key: run_point(p, scale, seed=seed) for p in points}
