"""Parallel sweep driver: one trace recording, many machine simulations.

Sweep experiments (Figures 8-11, the ablation benchmarks) simulate the same
workload under many machine configurations.  Live execution costs
``O(configs x full-engine-execution)``; with the trace cache it is
``O(1 engine execution + configs x replay)``, and the replays are
independent, so they also parallelize over a process pool.

A sweep is a list of :class:`SweepPoint` specifications -- picklable, so
they can be shipped to ``spawn`` workers.  The parent records (or, with a
persistent trace store configured, loads) every trace a sweep needs
exactly once, encodes them with :mod:`repro.core.tracestore`, and ships
the bytes to workers through the pool initializer -- so a worker never
touches ``build_database``: it decodes its traces and replays them
array-directly (:meth:`~repro.memsim.interleave.Interleaver.run_traces`)
against address-arithmetic NUMA placement.  Results come back as
plain-dict summaries (:func:`summarize`), not live ``WorkloadResult``
objects, so nothing unpicklable crosses the process boundary.

With ``jobs=1`` (the default) everything runs in-process against the
shared per-scale caches; results are identical either way because database
generation, query parameters, and backend transaction ids are all
process-independent.

Parallel execution is *supervised*: every point is its own future, and the
supervisor recovers from each worker failure mode -- a crashed worker
(``BrokenProcessPool``: the pool is respawned), a hung worker (a
configurable per-point timeout, after which the pool is killed and
respawned), a raising worker (bounded retry with exponential backoff), and
a garbage result (summaries are validated before acceptance).  A point
that exhausts its worker retries degrades to in-process execution in the
parent; only if that also fails does the sweep raise -- one structured
:class:`~repro.core.errors.PointFailure` carrying the point key and the
original error, never a bare pool traceback.  With a checkpoint journal
(``checkpoint_dir=``, the ``--checkpoint-dir`` flag) every completed
point is durable, and an interrupted sweep resumes from the journal
instead of restarting.  All of this is deterministic to test: the
:mod:`repro.core.faults` harness injects crashes, hangs, raises, and
garbage at chosen points.
"""

import multiprocessing
import os
import time
import warnings
from concurrent.futures import (
    FIRST_COMPLETED, BrokenExecutor, CancelledError, ProcessPoolExecutor,
    wait as _futures_wait,
)
from dataclasses import dataclass, field
from typing import Optional

from repro.db.shmem import shared_home_fn
from repro.memsim.batch import default_kernel as _default_kernel
from repro.memsim.events import CLASS_NAMES, DataClass, N_CLASSES
from repro.memsim.interleave import Interleaver
from repro.memsim.numa import NumaMachine
from repro.obs import events as obs_events
from repro.obs.metrics import registry
from repro.obs.spans import span
from repro.tpcd.scales import get_scale


@dataclass(frozen=True)
class SweepPoint:
    """One simulation of a sweep: a workload under one machine setup.

    ``key`` identifies the point in the result dict.  ``machine`` holds
    :class:`~repro.memsim.numa.MachineConfig` overrides applied to the
    scale's baseline (e.g. ``{"l2_line": 128, "l1_line": 64}``).  The
    remaining fields select workload-side variants used by the ablation
    benchmarks: private-arena size, NUMA page placement (``"shared"``
    round-robin or ``"node0"`` single-home), and the engine's per-rescan
    lock revalidation.
    """

    key: object
    qid: str
    machine: dict = field(default_factory=dict)
    n_procs: int = 4
    seed_base: int = 0
    arena_size: Optional[int] = None
    placement: str = "shared"
    lock_check_per_rescan: bool = True


def summarize(result):
    """Reduce a :class:`WorkloadResult` to a picklable plain-dict summary.

    Carries everything the sweep-based experiments read: execution time,
    the Busy/MSync/SMem/PMem split, grouped and per-class miss counts for
    both cache levels, and per-processor time accounting.
    """
    stats = result.stats
    return {
        "exec_time": result.exec_time,
        "components": result.time_components(),
        "breakdown": result.breakdown(),
        "l1_grouped": stats.grouped("l1"),
        "l2_grouped": stats.grouped("l2"),
        "l1_by_class": {CLASS_NAMES[DataClass(c)]: sum(stats.l1_read_misses[c])
                        for c in range(N_CLASSES)},
        "l2_by_class": {CLASS_NAMES[DataClass(c)]: sum(stats.l2_read_misses[c])
                        for c in range(N_CLASSES)},
        # Coherence misses per class (the [cold, conflict, coherence]
        # triple's last slot): what the multi-tenant lock-line analyses
        # read.  Additive -- _SUMMARY_KEYS validation is a subset check,
        # so summaries journaled by older writers stay acceptable.
        "l2_cohe_by_class": {CLASS_NAMES[DataClass(c)]:
                             stats.l2_read_misses[c][2]
                             for c in range(N_CLASSES)},
        "l1_reads": stats.l1_reads,
        "l1_writes": stats.l1_writes,
        "cpu": [
            {"busy": s.busy, "msync": s.msync, "mem": s.mem,
             "finish_time": s.finish_time}
            for s in result.run.cpu_stats
        ],
    }


# -- per-process database / trace-cache store -----------------------------------

#: ``(scale_name, seed, lock_check_per_rescan) -> TraceCache`` (with a
#: lazily built database), one entry per variant per process.
_VARIANT_CACHE = {}

#: ``(scale_name, seed, point identity) -> summary``.  Sweep points are
#: deterministic, so experiments that sweep the same configurations (the
#: Figure 8/9 and Figure 10/11 pairs report misses and time from identical
#: simulations) share one run per point.  Treat cached summaries as
#: immutable: copy before editing.
_POINT_CACHE = {}

#: Bucket bounds (seconds) for the per-point latency histogram.
_POINT_SECONDS_BUCKETS = (0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
                          60.0, 300.0)


def point_memo_stats():
    """Point-memo observability: hits, misses, and resident summaries
    (registry counters ``sweep.point.memo_hits`` / ``memo_misses``)."""
    reg = registry()
    return {"hits": reg.value("sweep.point.memo_hits"),
            "misses": reg.value("sweep.point.memo_misses"),
            "cached": len(_POINT_CACHE)}


def _point_cache_key(point, scale, seed):
    # Key on the *resolved* machine configuration, not the raw overrides:
    # different sweeps reach the baseline through different knobs (figure 8
    # overrides the line sizes, figure 10 the cache sizes), and identical
    # resolved configurations are identical simulations.
    cfg = scale.machine_config(**point.machine)
    cfg_key = tuple(getattr(cfg, f) for f in cfg.__dataclass_fields__)
    return (scale.name, seed, point.qid, cfg_key, point.n_procs,
            point.seed_base, point.arena_size, point.placement,
            point.lock_check_per_rescan)


def _variant(scale, seed, lock_check_per_rescan):
    """The :class:`TraceCache` for one engine variant (lazy database)."""
    from repro.core.experiment import get_trace_dir, workload_trace_cache
    from repro.core.tracecache import TraceCache
    from repro.tpcd.dbgen import build_database

    if lock_check_per_rescan:
        return workload_trace_cache(scale, seed)
    key = (scale.name, seed, lock_check_per_rescan)
    if key not in _VARIANT_CACHE:
        def make_db():
            with span("dbgen", scale=scale.name, seed=seed,
                      variant="no_lock_check"):
                db = build_database(sf=scale.sf, seed=seed)
            db.lock_check_per_rescan = False
            return db

        _VARIANT_CACHE[key] = TraceCache(make_db, scale,
                                         trace_dir=get_trace_dir(),
                                         db_seed=seed,
                                         lock_check_per_rescan=False)
    return _VARIANT_CACHE[key]


def clear_variant_cache():
    """Drop the sweep driver's ablation-variant databases and traces, and
    the memoized point summaries."""
    _VARIANT_CACHE.clear()
    _POINT_CACHE.clear()


def _home_fn(placement):
    if placement == "shared":
        return shared_home_fn()
    if placement == "node0":
        return lambda addr: 0
    raise ValueError(f"unknown placement {placement!r}")


def _trace_keys(point, scale):
    """The per-processor trace identities one sweep point replays."""
    arena = point.arena_size or scale.arena_size
    return [(point.lock_check_per_rescan, point.qid, point.seed_base + i,
             i, arena)
            for i in range(point.n_procs)]


def _point_traces(point, scale, seed):
    """The ``n_procs`` :class:`QueryTrace` objects for one sweep point.

    In a pool worker the traces arrive pre-recorded as encoded bytes
    (decoded lazily, once per unique trace); everywhere else -- and for
    any trace the parent did not ship -- they come from the per-process
    variant caches, recording or store-loading on first use.
    """
    keys = _trace_keys(point, scale)
    if _SHIPPED is not None and all(k in _SHIPPED for k in keys):
        return [_shipped_trace(k) for k in keys]
    trace_cache = _variant(scale, seed, point.lock_check_per_rescan)
    arena = point.arena_size or scale.arena_size
    return [trace_cache.get(point.qid, point.seed_base + i, i,
                            arena_size=arena)
            for i in range(point.n_procs)]


def simulate_point(point, scale, traces):
    """Replay ``traces`` under ``point``'s machine; return the summary dict.

    The database-free core of :func:`run_point`, shared with the worker
    backend: a caller that already holds the recorded traces (the parent's
    variant caches, or a ``repro-sweep-worker`` loading them by store key
    from the spool) needs only address-arithmetic NUMA placement and the
    replay engine -- never a database object.
    """
    from repro.core.experiment import WorkloadResult

    scale = get_scale(scale)
    cfg = scale.machine_config(**point.machine)
    machine = NumaMachine(cfg, home_fn=_home_fn(point.placement))
    sink = {}
    with span("replay", qid=point.qid, n_traces=len(traces)):
        run = Interleaver(machine).run_traces(traces, sink=sink)
    return summarize(WorkloadResult(point.qid, scale, machine, run, sink))


def run_point(point, scale, seed=42):
    """Simulate one sweep point from the per-process caches; return its
    summary dict (memoized per point identity).

    Replay is array-direct (:meth:`Interleaver.run_traces`): the recorded
    columns drive the machine without generator resumptions or per-event
    tuples, and NUMA placement comes from pure address arithmetic -- so a
    replay-only point needs no database object at all.
    """
    scale = get_scale(scale)
    reg = registry()
    ckey = _point_cache_key(point, scale, seed)
    summary = _POINT_CACHE.get(ckey)
    if summary is not None:
        reg.counter("sweep.point.memo_hits").inc()
        return summary
    reg.counter("sweep.point.memo_misses").inc()
    t0 = time.perf_counter()
    with span("sweep-point", key=repr(point.key), qid=point.qid):
        traces = _point_traces(point, scale, seed)
        summary = simulate_point(point, scale, traces)
    reg.histogram("sweep.point.seconds", _POINT_SECONDS_BUCKETS).observe(
        time.perf_counter() - t0)
    _POINT_CACHE[ckey] = summary
    return summary


# -- process-pool execution ------------------------------------------------------

#: Process-wide defaults for the supervised executor, set by the
#: ``repro-experiments`` flags (via :class:`~repro.core.run.RunConfig` and
#: :func:`repro.core.run.configure_run`, or the legacy
#: :func:`configure_sweep`) so the figure modules need not thread
#: robustness knobs through their signatures.
_SWEEP_DEFAULTS = {
    "checkpoint_dir": None,   # --checkpoint-dir: journal completed points
    "point_timeout": None,    # --point-timeout: seconds before a point hangs
    "retries": 2,             # --retries: worker re-attempts per point
    "backoff": 0.05,          # base delay; doubles per attempt
}

#: ``supervisor_stats`` key -> registry counter name.
_SUP_METRICS = {
    "retries": "sweep.point.retries",
    "timeouts": "sweep.point.timeouts",
    "respawns": "sweep.pool.respawns",
    "fallbacks": "sweep.point.fallbacks",
    "garbage": "sweep.point.garbage",
    "resumed": "sweep.point.resumed",
    "requeued": "sweep.point.requeued",
}

#: Summary dicts must carry these keys to be accepted from a worker.
_SUMMARY_KEYS = frozenset({
    "exec_time", "components", "breakdown", "l1_grouped", "l2_grouped",
    "l1_by_class", "l2_by_class", "l1_reads", "l1_writes", "cpu",
})


def configure_sweep(checkpoint_dir=None, point_timeout=None, retries=None,
                    backoff=None):
    """Set process-wide defaults for :func:`run_sweep`'s supervisor.

    ``None`` leaves a setting unchanged; explicit ``run_sweep`` arguments
    still take precedence per call.  New code should build a
    :class:`~repro.core.run.RunConfig` and call
    :func:`~repro.core.run.configure_run` instead; both write the same
    process-wide store, so they can be mixed safely.
    """
    for name, value in (("checkpoint_dir", checkpoint_dir),
                        ("point_timeout", point_timeout),
                        ("retries", retries), ("backoff", backoff)):
        if value is not None:
            _SWEEP_DEFAULTS[name] = value


def supervisor_stats():
    """Recovery-path counters: retries, timeouts, pool respawns, in-process
    fallbacks, rejected garbage results, and checkpoint-resumed points
    (views over the ``sweep.*`` registry counters)."""
    reg = registry()
    return {key: reg.value(name) for key, name in _SUP_METRICS.items()}


def _sup_count(key):
    registry().counter(_SUP_METRICS[key]).inc()


def _valid_summary(summary):
    """A worker result is accepted only if it looks like :func:`summarize`
    output -- anything else (an injected garbage return, a half-pickled
    object) is retried like a failure."""
    return isinstance(summary, dict) and _SUMMARY_KEYS <= summary.keys()


_WORKER_ARGS = None

#: Traces shipped by the sweep parent: ``trace key -> encoded bytes``
#: (``None`` outside a pool worker), with lazily decoded instances beside
#: them.  Keeping the bytes and decoding on demand means a worker only
#: pays for the traces its assigned points actually replay.
_SHIPPED = None
_SHIPPED_DECODED = {}


def _shipped_trace(tkey):
    trace = _SHIPPED_DECODED.get(tkey)
    if trace is None:
        from repro.core.tracestore import decode_trace

        trace, _ = decode_trace(_SHIPPED[tkey])
        _SHIPPED_DECODED[tkey] = trace
    return trace


def _worker_init(scale, seed, shipped=None, strict_store=False,
                 kernel="auto"):
    global _WORKER_ARGS, _SHIPPED
    _WORKER_ARGS = (scale, seed)
    _SHIPPED = shipped
    if strict_store:
        from repro.core import tracestore

        tracestore.set_strict(True)
    if kernel != "auto":
        from repro.memsim.batch import set_default_kernel

        set_default_kernel(kernel)


def _worker_task(index, attempt, point):
    """One supervised task: fault-injection hook, then the simulation.

    ``index`` is the point's submission index and ``attempt`` its retry
    count -- the coordinates :mod:`repro.core.faults` keys injected
    crashes/hangs/garbage on, so every recovery path is deterministic to
    exercise.
    """
    from repro.core import faults

    garbage = faults.maybe_inject(index, attempt)
    if garbage is not None:
        return garbage
    scale, seed = _WORKER_ARGS
    return run_point(point, scale, seed=seed)


def _ship_traces(todo, scale, seed):
    """Record or load every trace ``todo`` needs; return encoded bytes.

    One engine execution (or one store load) per unique trace, all in the
    parent -- workers receive the result through the pool initializer and
    never build a database.
    """
    from repro.core.tracestore import encode_trace, store_key

    shipped = {}
    with span("encode", points=len(todo)):
        for point in todo:
            for tkey in _trace_keys(point, scale):
                if tkey in shipped:
                    continue
                lock_check, qid, qseed, node, arena = tkey
                trace_cache = _variant(scale, seed, lock_check)
                trace = trace_cache.get(qid, qseed, node, arena_size=arena)
                skey = store_key(scale.name, seed, qid, qseed, node, arena,
                                 lock_check)
                shipped[tkey] = encode_trace(skey, trace)
    return shipped


def _terminate_pool(pool):
    """Kill a pool's worker processes outright (hung or broken pool)."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except OSError:
            pass
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:
        pass  # a broken pool may refuse a clean shutdown; workers are dead


def _point_failure(point, attempts, exc, timeout=False):
    from repro.core.errors import PointFailure, PointTimeout

    cls = PointTimeout if timeout else PointFailure
    return cls(
        f"sweep point {point.key!r} (qid={point.qid}) failed after "
        f"{attempts} worker attempt(s) and an in-process retry: {exc}",
        point_key=point.key, qid=point.qid, attempts=attempts, cause=exc)


def _run_supervised(todo, scale, seed, config, journal):
    """Run ``todo`` on a supervised ``spawn`` pool; return summaries in
    ``todo`` order.

    ``config`` is the run's :class:`~repro.core.run.RunConfig`, passed
    whole: the supervisor reads ``jobs``, ``point_timeout``, ``retries``
    and ``backoff`` from it.  Each point is one future; at most ``jobs``
    are in flight, submitted in list order (sweeps are built query-major,
    so neighbouring points share a trace set and a worker's decoded-trace
    cache stays hot).  Worker failures are retried up to ``retries`` times
    with exponential backoff; a timeout or a dead worker kills and
    respawns the pool, re-queueing the collateral in-flight points.
    Points that exhaust their worker retries degrade to in-process
    execution in the parent.
    """
    from repro.core.errors import InvalidPointResult, PointTimeout

    point_timeout = config.point_timeout
    retries = config.retries
    backoff = config.backoff
    shipped = _ship_traces(todo, scale, seed)
    from repro.core.tracestore import get_strict

    ctx = multiprocessing.get_context("spawn")
    jobs = min(config.jobs, len(todo))
    n = len(todo)
    point_seconds = registry().histogram("sweep.point.seconds",
                                         _POINT_SECONDS_BUCKETS)
    results = [None] * n
    attempts = [0] * n
    last_error = [None] * n
    not_before = [0.0] * n
    pending = list(range(n))
    fallback = []
    inflight = {}
    pool = None
    tick = min(0.1, point_timeout / 5) if point_timeout else 0.5

    def record_checkpoint(i, summary):
        results[i] = summary
        if journal is not None:
            journal.append(_point_cache_key(todo[i], scale, seed), summary)

    def fail(i, exc, timed_out=False):
        """Charge a failed attempt; requeue with backoff or hand to the
        in-process fallback once the retry budget is spent."""
        last_error[i] = exc
        attempts[i] += 1
        if timed_out:
            _sup_count("timeouts")
            obs_events.emit("point.timeout", index=i,
                            key=repr(todo[i].key), attempts=attempts[i])
        if attempts[i] > retries:
            fallback.append(i)
            _sup_count("fallbacks")
            obs_events.emit("point.fallback", index=i,
                            key=repr(todo[i].key), attempts=attempts[i])
        else:
            _sup_count("retries")
            obs_events.emit("point.retry", index=i, key=repr(todo[i].key),
                            attempts=attempts[i],
                            error=type(exc).__name__)
            not_before[i] = time.monotonic() + backoff * (2 ** (attempts[i] - 1))
            pending.append(i)

    def respawn(exc=None):
        """Tear down the pool and requeue its in-flight points.

        With ``exc`` (pool breakage) every in-flight point is charged an
        attempt: the culprit is unknowable, and an uncharged requeue
        would retry a crash-on-attempt-N point at the same attempt
        forever.  Without (the timeout path, where the culprits are
        known and already charged), the collateral points retry free --
        a point that keeps hanging is charged when it times out itself.
        """
        nonlocal pool
        for i, _t0 in list(inflight.values()):
            if exc is None:
                pending.insert(0, i)
            else:
                fail(i, exc)
        inflight.clear()
        if pool is not None:
            with span("pool-respawn"):
                _terminate_pool(pool)
            pool = None
        _sup_count("respawns")
        obs_events.emit("pool.respawn",
                        cause=type(exc).__name__ if exc else "timeout")

    try:
        while pending or inflight:
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=jobs, mp_context=ctx,
                    initializer=_worker_init,
                    initargs=(scale, seed, shipped, get_strict(),
                              _default_kernel()))
            now = time.monotonic()
            ready = [i for i in pending if not_before[i] <= now]
            submit_broke = False
            while ready and len(inflight) < jobs:
                i = ready.pop(0)
                pending.remove(i)
                try:
                    fut = pool.submit(_worker_task, i, attempts[i], todo[i])
                except Exception as exc:
                    # submit also spawns worker processes, so a worker
                    # dying while we are still submitting surfaces here:
                    # usually as BrokenExecutor, but the manager thread
                    # tears the queues down concurrently, so mid-spawn it
                    # can be an OSError ("handle is closed") or ValueError
                    # from the half-pickled queue instead.  Same recovery
                    # either way.
                    fail(i, exc)
                    respawn(exc)
                    submit_broke = True
                    break
                inflight[fut] = (i, time.monotonic())
            if submit_broke:
                continue
            if not inflight:
                # Everything still pending is in its backoff embargo.
                time.sleep(max(0.0, min(not_before[i] for i in pending) - now))
                continue
            done, _ = _futures_wait(list(inflight), timeout=tick,
                                    return_when=FIRST_COMPLETED)
            broken = None
            for fut in done:
                i, t0 = inflight.pop(fut)
                try:
                    summary = fut.result()
                except (BrokenExecutor, CancelledError) as exc:
                    # A worker died mid-task; the culprit is unknowable, so
                    # every broken future is charged one attempt (bounded
                    # either way, and the fallback path keeps correctness).
                    # CancelledError (a BaseException) appears when the
                    # dying pool cancelled the future first.
                    broken = exc
                    fail(i, exc)
                except Exception as exc:
                    fail(i, exc)
                else:
                    if _valid_summary(summary):
                        elapsed = time.monotonic() - t0
                        point_seconds.observe(elapsed)
                        record_checkpoint(i, summary)
                        obs_events.emit("point.done", index=i,
                                        key=repr(todo[i].key),
                                        seconds=round(elapsed, 6),
                                        attempts=attempts[i] + 1)
                    else:
                        _sup_count("garbage")
                        obs_events.emit("point.garbage", index=i,
                                        key=repr(todo[i].key))
                        fail(i, InvalidPointResult(
                            f"worker returned a non-summary object "
                            f"{type(summary).__name__!r} for point "
                            f"{todo[i].key!r}", point_key=todo[i].key,
                            qid=todo[i].qid, attempts=attempts[i] + 1))
            if broken is not None:
                # The futures _futures_wait did not report this round are
                # broken too -- charge them through respawn, or a
                # crash-on-attempt-N point requeued uncharged would crash
                # at the same attempt indefinitely.
                respawn(broken)
                continue
            if point_timeout:
                now = time.monotonic()
                timed = [(fut, iv) for fut, iv in inflight.items()
                         if now - iv[1] > point_timeout]
                if timed:
                    for fut, (i, _t0) in timed:
                        del inflight[fut]
                        fail(i, PointTimeout(
                            f"sweep point {todo[i].key!r} exceeded the "
                            f"{point_timeout:.1f}s point timeout",
                            point_key=todo[i].key, qid=todo[i].qid,
                            attempts=attempts[i] + 1), timed_out=True)
                    respawn()
        pool.shutdown(wait=True)
        pool = None
    finally:
        if pool is not None:
            _terminate_pool(pool)

    # Graceful degradation: repeatedly failing points run in the parent,
    # where no pool can lose them (and injected worker faults cannot fire).
    for i in sorted(fallback):
        point = todo[i]
        try:
            summary = run_point(point, scale, seed=seed)
        except Exception as exc:
            worker_exc = last_error[i]
            raise _point_failure(
                point, attempts[i], exc,
                timeout=isinstance(worker_exc, PointTimeout)) from exc
        record_checkpoint(i, summary)
        obs_events.emit("point.done", index=i, key=repr(point.key),
                        attempts=attempts[i], fallback=True)
    return results


def _open_journal(config):
    """The resume store for one sweep's checkpoint directory.

    The workers backend needs the full lease ledger
    (:class:`~repro.core.ledger.LeaseLedger`); everything else keeps the
    plain checkpoint journal -- unless a ledger file already exists on
    disk, in which case it is honoured regardless of backend so a sweep
    interrupted under ``--backend workers`` resumes correctly from any
    backend.
    """
    from repro.core.checkpoint import CheckpointJournal
    from repro.core.ledger import LEDGER_NAME, LeaseLedger

    ledger_path = os.path.join(config.checkpoint_dir, LEDGER_NAME)
    if getattr(config, "backend", "auto") == "workers" \
            or os.path.exists(ledger_path):
        return LeaseLedger(config.checkpoint_dir,
                           lease_ttl=getattr(config, "lease_ttl", 30.0))
    return CheckpointJournal(config.checkpoint_dir)


def _requeue_stale(journal, points, scale, seed):
    """Reclaim stale leases on resume; count this sweep's requeued points.

    The ledger's durable abandon records make the requeue exactly-once: a
    second resume (or a concurrent driver) sees no stale lease for a point
    this call already reclaimed.  Points whose lease was reclaimed are
    simply absent from the completed set, so the normal todo computation
    re-runs them.
    """
    from repro.core.checkpoint import canonical_key

    reclaimed = set(journal.reclaim_stale())
    if not reclaimed:
        return 0
    mine = sum(1 for p in points
               if canonical_key(_point_cache_key(p, scale, seed))
               in reclaimed)
    if mine:
        registry().counter(_SUP_METRICS["requeued"]).inc(mine)
        obs_events.emit("points.requeued", count=mine,
                        reclaimed=len(reclaimed))
    return mine


#: Legacy ``run_sweep`` keyword arguments now carried by ``RunConfig``.
_LEGACY_SWEEP_KWARGS = ("checkpoint_dir", "point_timeout", "retries",
                        "backoff")
_LEGACY_WARNED = False


def _resolve_config(jobs, config, legacy):
    """The effective :class:`~repro.core.run.RunConfig` for one sweep.

    Precedence: explicit ``config`` argument, else the process-wide
    configuration; then deprecated loose kwargs (``checkpoint_dir`` etc.,
    which warn once per process), then an explicit ``jobs``.
    """
    global _LEGACY_WARNED
    from repro.core.run import current_run_config

    bad = set(legacy) - set(_LEGACY_SWEEP_KWARGS)
    if bad:
        raise TypeError(
            f"run_sweep() got unexpected keyword argument(s) {sorted(bad)}")
    if config is None:
        config = current_run_config()
    overrides = {k: v for k, v in legacy.items() if v is not None}
    if overrides:
        if not _LEGACY_WARNED:
            _LEGACY_WARNED = True
            warnings.warn(
                "passing checkpoint_dir/point_timeout/retries/backoff to "
                "run_sweep is deprecated; build a repro.core.RunConfig and "
                "pass it as config= (or set process defaults with "
                "configure_run)", DeprecationWarning, stacklevel=3)
        config = config.with_options(**overrides)
    if jobs is not None:
        config = config.with_options(jobs=jobs)
    return config


def run_sweep(points, scale="small", seed=42, jobs=None, config=None,
              **legacy):
    """Run every sweep point; return ``{point.key: summary}`` in order.

    ``config`` is a :class:`~repro.core.run.RunConfig` carrying the run's
    execution knobs (jobs, checkpoint directory, per-point timeout, retry
    budget, backoff); omitted, the process-wide configuration
    (:func:`repro.core.run.configure_run`, or the legacy
    :func:`configure_sweep` defaults) applies.  ``jobs`` overrides the
    config's worker count -- ``1`` runs in-process, ``>1`` fans the points
    out over a supervised ``spawn`` process pool: the parent prepares
    every needed trace once (recording, or loading from the persistent
    store when one is configured) and ships the encoded bytes to the
    workers, which replay without ever running the database engine.
    Results are independent of ``jobs`` -- including under worker crashes,
    hangs, and retries, which the supervisor absorbs (see
    :func:`_run_supervised`); a sweep either completes with correct
    results or raises one typed :class:`~repro.core.errors.SweepError`.

    ``config.backend`` selects the executor behind the same contract
    (:mod:`repro.core.backend`): ``auto`` picks the pool exactly as
    described above, ``workers`` fans out over lease-holding
    ``repro-sweep-worker`` subprocesses that fetch traces by store key
    and journal claim/heartbeat/complete transitions in a lease ledger
    (:mod:`repro.core.ledger`).

    A configured checkpoint directory journals every completed point
    (:mod:`repro.core.checkpoint`); a re-run loads the journal and
    re-simulates only unfinished points, bit-identically.

    The pre-``RunConfig`` keyword arguments (``checkpoint_dir``,
    ``point_timeout``, ``retries``, ``backoff``) still work through a
    deprecation shim that warns once per process.
    """
    points = list(points)
    scale = get_scale(scale)
    config = _resolve_config(jobs, config, legacy)

    journal = None
    if config.checkpoint_dir is not None:
        journal = _open_journal(config)
    try:
        if journal is not None and hasattr(journal, "reclaim_stale"):
            # Claimed-but-never-completed points from an interrupted run
            # are re-queued exactly once (durable abandon records).
            _requeue_stale(journal, points, scale, seed)
        if journal is not None and journal.entries:
            # Resume: journaled summaries seed the point memo, so completed
            # points never reach the pool (or the in-process loop) again.
            resumed = 0
            for p in points:
                ckey = _point_cache_key(p, scale, seed)
                if ckey not in _POINT_CACHE:
                    summary = journal.get(ckey)
                    if summary is not None:
                        _POINT_CACHE[ckey] = summary
                        _sup_count("resumed")
                        resumed += 1
            if resumed:
                obs_events.emit("points.resumed", count=resumed)
        # Only memo misses go to the pool: a sweep whose points were
        # already simulated (e.g. fig9 right after fig8) answers from the
        # parent's memo without spawning workers.
        todo = [p for p in points
                if _point_cache_key(p, scale, seed) not in _POINT_CACHE]
        obs_events.emit("sweep.start", total=len(todo), points=len(points),
                        jobs=config.jobs,
                        backend=getattr(config, "backend", "auto"))
        t0 = time.perf_counter()
        if todo:
            from repro.core.backend import resolve_backend

            backend = resolve_backend(config, len(todo))
            if backend is not None:
                summaries = backend.run(todo, scale, seed, config, journal)
                # Keep the parent's memo warm so a later sweep over the
                # same points (the misses/time figure pairs) is free.
                for p, s in zip(todo, summaries):
                    _POINT_CACHE[_point_cache_key(p, scale, seed)] = s
        out = {}
        for p in points:
            ckey = _point_cache_key(p, scale, seed)
            fresh = ckey not in _POINT_CACHE
            summary = run_point(p, scale, seed=seed)
            if fresh:
                if journal is not None:
                    journal.append(ckey, summary)
                obs_events.emit("point.done", key=repr(p.key))
            out[p.key] = summary
        obs_events.emit("sweep.end", points=len(points),
                        seconds=round(time.perf_counter() - t0, 6))
        return out
    finally:
        if journal is not None:
            journal.close()
