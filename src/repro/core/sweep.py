"""Parallel sweep driver: one trace recording, many machine simulations.

Sweep experiments (Figures 8-11, the ablation benchmarks) simulate the same
workload under many machine configurations.  Live execution costs
``O(configs x full-engine-execution)``; with the trace cache it is
``O(1 engine execution + configs x replay)``, and the replays are
independent, so they also parallelize over a process pool.

A sweep is a list of :class:`SweepPoint` specifications -- picklable, so
they can be shipped to ``spawn`` workers.  The parent records (or, with a
persistent trace store configured, loads) every trace a sweep needs
exactly once, encodes them with :mod:`repro.core.tracestore`, and ships
the bytes to workers through the pool initializer -- so a worker never
touches ``build_database``: it decodes its traces and replays them
array-directly (:meth:`~repro.memsim.interleave.Interleaver.run_traces`)
against address-arithmetic NUMA placement.  Results come back as
plain-dict summaries (:func:`summarize`), not live ``WorkloadResult``
objects, so nothing unpicklable crosses the process boundary.

With ``jobs=1`` (the default) everything runs in-process against the
shared per-scale caches; results are identical either way because database
generation, query parameters, and backend transaction ids are all
process-independent.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.db.shmem import shared_home_fn
from repro.memsim.events import CLASS_NAMES, DataClass, N_CLASSES
from repro.memsim.interleave import Interleaver
from repro.memsim.numa import NumaMachine
from repro.tpcd.scales import get_scale


@dataclass(frozen=True)
class SweepPoint:
    """One simulation of a sweep: a workload under one machine setup.

    ``key`` identifies the point in the result dict.  ``machine`` holds
    :class:`~repro.memsim.numa.MachineConfig` overrides applied to the
    scale's baseline (e.g. ``{"l2_line": 128, "l1_line": 64}``).  The
    remaining fields select workload-side variants used by the ablation
    benchmarks: private-arena size, NUMA page placement (``"shared"``
    round-robin or ``"node0"`` single-home), and the engine's per-rescan
    lock revalidation.
    """

    key: object
    qid: str
    machine: dict = field(default_factory=dict)
    n_procs: int = 4
    seed_base: int = 0
    arena_size: int = None
    placement: str = "shared"
    lock_check_per_rescan: bool = True


def summarize(result):
    """Reduce a :class:`WorkloadResult` to a picklable plain-dict summary.

    Carries everything the sweep-based experiments read: execution time,
    the Busy/MSync/SMem/PMem split, grouped and per-class miss counts for
    both cache levels, and per-processor time accounting.
    """
    stats = result.stats
    return {
        "exec_time": result.exec_time,
        "components": result.time_components(),
        "breakdown": result.breakdown(),
        "l1_grouped": stats.grouped("l1"),
        "l2_grouped": stats.grouped("l2"),
        "l1_by_class": {CLASS_NAMES[DataClass(c)]: sum(stats.l1_read_misses[c])
                        for c in range(N_CLASSES)},
        "l2_by_class": {CLASS_NAMES[DataClass(c)]: sum(stats.l2_read_misses[c])
                        for c in range(N_CLASSES)},
        "l1_reads": stats.l1_reads,
        "l1_writes": stats.l1_writes,
        "cpu": [
            {"busy": s.busy, "msync": s.msync, "mem": s.mem,
             "finish_time": s.finish_time}
            for s in result.run.cpu_stats
        ],
    }


# -- per-process database / trace-cache store -----------------------------------

#: ``(scale_name, seed, lock_check_per_rescan) -> TraceCache`` (with a
#: lazily built database), one entry per variant per process.
_VARIANT_CACHE = {}

#: ``(scale_name, seed, point identity) -> summary``.  Sweep points are
#: deterministic, so experiments that sweep the same configurations (the
#: Figure 8/9 and Figure 10/11 pairs report misses and time from identical
#: simulations) share one run per point.  Treat cached summaries as
#: immutable: copy before editing.
_POINT_CACHE = {}

#: Point-memo traffic counters for ``repro-experiments --time``.
_POINT_STATS = {"hits": 0, "misses": 0}


def point_memo_stats():
    """Point-memo observability: hits, misses, and resident summaries."""
    return dict(_POINT_STATS, cached=len(_POINT_CACHE))


def _point_cache_key(point, scale, seed):
    # Key on the *resolved* machine configuration, not the raw overrides:
    # different sweeps reach the baseline through different knobs (figure 8
    # overrides the line sizes, figure 10 the cache sizes), and identical
    # resolved configurations are identical simulations.
    cfg = scale.machine_config(**point.machine)
    cfg_key = tuple(getattr(cfg, f) for f in cfg.__dataclass_fields__)
    return (scale.name, seed, point.qid, cfg_key, point.n_procs,
            point.seed_base, point.arena_size, point.placement,
            point.lock_check_per_rescan)


def _variant(scale, seed, lock_check_per_rescan):
    """The :class:`TraceCache` for one engine variant (lazy database)."""
    from repro.core.experiment import get_trace_dir, workload_trace_cache
    from repro.core.tracecache import TraceCache
    from repro.tpcd.dbgen import build_database

    if lock_check_per_rescan:
        return workload_trace_cache(scale, seed)
    key = (scale.name, seed, lock_check_per_rescan)
    if key not in _VARIANT_CACHE:
        def make_db():
            db = build_database(sf=scale.sf, seed=seed)
            db.lock_check_per_rescan = False
            return db

        _VARIANT_CACHE[key] = TraceCache(make_db, scale,
                                         trace_dir=get_trace_dir(),
                                         db_seed=seed,
                                         lock_check_per_rescan=False)
    return _VARIANT_CACHE[key]


def clear_variant_cache():
    """Drop the sweep driver's ablation-variant databases and traces, and
    the memoized point summaries."""
    _VARIANT_CACHE.clear()
    _POINT_CACHE.clear()


def _home_fn(placement):
    if placement == "shared":
        return shared_home_fn()
    if placement == "node0":
        return lambda addr: 0
    raise ValueError(f"unknown placement {placement!r}")


def _trace_keys(point, scale):
    """The per-processor trace identities one sweep point replays."""
    arena = point.arena_size or scale.arena_size
    return [(point.lock_check_per_rescan, point.qid, point.seed_base + i,
             i, arena)
            for i in range(point.n_procs)]


def _point_traces(point, scale, seed):
    """The ``n_procs`` :class:`QueryTrace` objects for one sweep point.

    In a pool worker the traces arrive pre-recorded as encoded bytes
    (decoded lazily, once per unique trace); everywhere else -- and for
    any trace the parent did not ship -- they come from the per-process
    variant caches, recording or store-loading on first use.
    """
    keys = _trace_keys(point, scale)
    if _SHIPPED is not None and all(k in _SHIPPED for k in keys):
        return [_shipped_trace(k) for k in keys]
    trace_cache = _variant(scale, seed, point.lock_check_per_rescan)
    arena = point.arena_size or scale.arena_size
    return [trace_cache.get(point.qid, point.seed_base + i, i,
                            arena_size=arena)
            for i in range(point.n_procs)]


def run_point(point, scale, seed=42):
    """Simulate one sweep point from the per-process caches; return its
    summary dict (memoized per point identity).

    Replay is array-direct (:meth:`Interleaver.run_traces`): the recorded
    columns drive the machine without generator resumptions or per-event
    tuples, and NUMA placement comes from pure address arithmetic -- so a
    replay-only point needs no database object at all.
    """
    from repro.core.experiment import WorkloadResult

    scale = get_scale(scale)
    ckey = _point_cache_key(point, scale, seed)
    summary = _POINT_CACHE.get(ckey)
    if summary is not None:
        _POINT_STATS["hits"] += 1
        return summary
    _POINT_STATS["misses"] += 1
    traces = _point_traces(point, scale, seed)
    cfg = scale.machine_config(**point.machine)
    machine = NumaMachine(cfg, home_fn=_home_fn(point.placement))
    sink = {}
    run = Interleaver(machine).run_traces(traces, sink=sink)
    summary = summarize(WorkloadResult(point.qid, scale, machine, run, sink))
    _POINT_CACHE[ckey] = summary
    return summary


# -- process-pool execution ------------------------------------------------------

_WORKER_ARGS = None

#: Traces shipped by the sweep parent: ``trace key -> encoded bytes``
#: (``None`` outside a pool worker), with lazily decoded instances beside
#: them.  Keeping the bytes and decoding on demand means a worker only
#: pays for the traces its assigned points actually replay.
_SHIPPED = None
_SHIPPED_DECODED = {}


def _shipped_trace(tkey):
    trace = _SHIPPED_DECODED.get(tkey)
    if trace is None:
        from repro.core.tracestore import decode_trace

        trace, _ = decode_trace(_SHIPPED[tkey])
        _SHIPPED_DECODED[tkey] = trace
    return trace


def _worker_init(scale, seed, shipped=None):
    global _WORKER_ARGS, _SHIPPED
    _WORKER_ARGS = (scale, seed)
    _SHIPPED = shipped


def _worker_run(point):
    scale, seed = _WORKER_ARGS
    return run_point(point, scale, seed=seed)


def _ship_traces(todo, scale, seed):
    """Record or load every trace ``todo`` needs; return encoded bytes.

    One engine execution (or one store load) per unique trace, all in the
    parent -- workers receive the result through the pool initializer and
    never build a database.
    """
    from repro.core.tracestore import encode_trace, store_key

    shipped = {}
    for point in todo:
        for tkey in _trace_keys(point, scale):
            if tkey in shipped:
                continue
            lock_check, qid, qseed, node, arena = tkey
            trace_cache = _variant(scale, seed, lock_check)
            trace = trace_cache.get(qid, qseed, node, arena_size=arena)
            skey = store_key(scale.name, seed, qid, qseed, node, arena,
                             lock_check)
            shipped[tkey] = encode_trace(skey, trace)
    return shipped


def run_sweep(points, scale="small", seed=42, jobs=1):
    """Run every sweep point; return ``{point.key: summary}`` in order.

    ``jobs=1`` runs in-process.  ``jobs>1`` fans the points out over a
    ``spawn`` process pool: the parent prepares every needed trace once
    (recording, or loading from the persistent store when
    ``repro-experiments --trace-dir`` configured one) and ships the
    encoded bytes to the workers, which replay without ever running the
    database engine.  Results are independent of ``jobs``.
    """
    points = list(points)
    scale = get_scale(scale)
    # Only memo misses go to the pool: a sweep whose points were already
    # simulated (e.g. fig9 right after fig8) answers from the parent's
    # memo without spawning workers.
    todo = [p for p in points
            if _point_cache_key(p, scale, seed) not in _POINT_CACHE]
    if jobs > 1 and len(todo) > 1:
        shipped = _ship_traces(todo, scale, seed)
        ctx = multiprocessing.get_context("spawn")
        jobs = min(jobs, len(todo))
        # Contiguous chunks keep one query's config points together
        # (sweeps are built query-major), so a worker usually decodes one
        # trace set and replays its whole chunk against it.
        chunksize = max(1, len(todo) // (jobs * 2))
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx,
                                 initializer=_worker_init,
                                 initargs=(scale, seed, shipped)) as pool:
            summaries = list(pool.map(_worker_run, todo,
                                      chunksize=chunksize))
        # Keep the parent's memo warm so a later sweep over the same
        # points (the misses/time figure pairs) is free.
        for p, s in zip(todo, summaries):
            _POINT_CACHE[_point_cache_key(p, scale, seed)] = s
    return {p.key: run_point(p, scale, seed=seed) for p in points}
