"""Trace analysis: spatial and temporal locality per data structure.

Section 3 of the paper reasons qualitatively about the locality of each
software data structure (tuples have spatial locality; indices have
temporal locality in their upper levels; sequential scans reuse nothing
within a query).  This module turns a reference stream -- the same event
stream that drives the simulator -- into quantitative locality metrics, so
those claims become measurable:

* **spatial locality**: line utilization (bytes touched per distinct cache
  line) and the fraction of accesses that hit an adjacent-line
  neighbourhood;
* **temporal locality**: exact LRU reuse-distance histograms, computed with
  a Fenwick tree over last-access timestamps (O(log n) per access).

Reuse distances are measured in *distinct lines touched in between*, so a
distance below a cache's line capacity means the access would hit in a
fully-associative cache of that size.
"""

from repro.memsim.events import (
    CLASS_NAMES, DataClass, EV_LOCK_ACQ, EV_LOCK_REL, EV_READ, EV_WRITE,
    N_CLASSES,
)

#: Reuse-distance histogram bucket upper bounds (in distinct lines).
REUSE_BUCKETS = (8, 64, 512, 4096)


class _Fenwick:
    """Binary indexed tree over access timestamps."""

    __slots__ = ("tree", "size")

    def __init__(self, size):
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, pos, delta):
        pos += 1
        tree = self.tree
        while pos <= self.size:
            tree[pos] += delta
            pos += pos & (-pos)

    def prefix(self, pos):
        pos += 1
        total = 0
        tree = self.tree
        while pos > 0:
            total += tree[pos]
            pos -= pos & (-pos)
        return total


class ClassLocality:
    """Locality metrics for one data-structure class."""

    __slots__ = ("refs", "bytes", "lines_touched", "bytes_per_line",
                 "reuse_hist", "cold", "sequential_refs", "line_size")

    def __init__(self, line_size):
        self.line_size = line_size
        self.refs = 0
        self.bytes = 0
        self.lines_touched = set()
        self.bytes_per_line = {}
        self.reuse_hist = [0] * (len(REUSE_BUCKETS) + 1)
        self.cold = 0
        self.sequential_refs = 0

    @property
    def footprint(self):
        """Distinct bytes touched, rounded up to lines."""
        return len(self.lines_touched) * self.line_size

    @property
    def line_utilization(self):
        """Average fraction of each touched line that was actually read."""
        if not self.bytes_per_line:
            return 0.0
        used = sum(min(b, self.line_size) for b in self.bytes_per_line.values())
        return used / (len(self.bytes_per_line) * self.line_size)

    @property
    def sequential_fraction(self):
        """Fraction of line transitions that moved to an adjacent line."""
        return self.sequential_refs / self.refs if self.refs else 0.0

    def temporal_score(self, capacity_lines=64):
        """Fraction of line accesses that re-use a line within ``capacity``.

        Approximates the hit rate of a fully-associative cache with
        ``capacity_lines`` lines.
        """
        total = sum(self.reuse_hist) + self.cold
        if not total:
            return 0.0
        close = 0
        for bound, count in zip(REUSE_BUCKETS, self.reuse_hist):
            if bound <= capacity_lines:
                close += count
        return close / total

    def reuse_histogram(self):
        """Return ``{bucket_label: count}`` including the cold bucket."""
        labels = [f"<{b}" for b in REUSE_BUCKETS] + [f">={REUSE_BUCKETS[-1]}"]
        out = dict(zip(labels, self.reuse_hist))
        out["cold"] = self.cold
        return out


class LocalityReport:
    """Per-class locality metrics extracted from a reference stream."""

    def __init__(self, line_size=32):
        self.line_size = line_size
        self.classes = [ClassLocality(line_size) for _ in range(N_CLASSES)]
        self._last_seen = {}
        self._fenwick = None
        self._timestamps = 0
        self._events = []

    def per_class(self, cls):
        return self.classes[cls]

    def summary(self):
        """Return ``{class_name: metrics dict}`` for non-empty classes."""
        out = {}
        for c in range(N_CLASSES):
            cl = self.classes[c]
            if cl.refs == 0:
                continue
            out[CLASS_NAMES[DataClass(c)]] = {
                "refs": cl.refs,
                "bytes": cl.bytes,
                "footprint": cl.footprint,
                "line_utilization": round(cl.line_utilization, 3),
                "sequential_fraction": round(cl.sequential_fraction, 3),
                "temporal_score": round(cl.temporal_score(), 3),
                "reuse": cl.reuse_histogram(),
            }
        return out


def analyze(events, line_size=32, max_lines=1 << 22):
    """Analyze a reference stream; returns a :class:`LocalityReport`.

    ``events`` is any iterable of engine events; only reads and writes are
    considered.  Rows (lists) mixed into operator pipelines are ignored, so
    an operator's raw output can be passed directly.
    """
    report = LocalityReport(line_size)
    classes = report.classes
    shift = line_size.bit_length() - 1

    # Pass 1 happens on the fly: we time-stamp line accesses and compute
    # exact LRU stack distances with a Fenwick tree sized by access count.
    # Since the count is unknown up front, buffer (line, cls, prev_line).
    accesses = []
    last_line = {}
    for ev in events:
        if type(ev) is not tuple:
            continue
        kind = ev[0]
        if kind == EV_READ or kind == EV_WRITE:
            _, addr, size, cls = ev
        elif kind == EV_LOCK_ACQ or kind == EV_LOCK_REL:
            # Spinlock operations are read-modify-writes on the lock word.
            addr, size, cls = ev[2], 4, ev[3]
        else:
            continue
        cl = classes[cls]
        cl.refs += 1
        cl.bytes += size
        first = addr >> shift
        last = (addr + size - 1) >> shift
        prev = last_line.get(cls)
        # "Streaming" = staying on the previous line or moving a short
        # distance forward (within a tuple-stride neighbourhood).
        if prev is not None and prev <= first <= prev + 8:
            cl.sequential_refs += 1
        last_line[cls] = last
        for line in range(first, last + 1):
            cl.lines_touched.add(line)
            used = cl.bytes_per_line.get(line, 0)
            span = min(size, line_size)
            cl.bytes_per_line[line] = used + span
            accesses.append((line, cls))
            if len(accesses) > max_lines:
                raise MemoryError(
                    f"trace too long to analyze exactly (> {max_lines} line "
                    "accesses); analyze a shorter window"
                )

    n = len(accesses)
    fen = _Fenwick(n)
    last_pos = {}
    for t, (line, cls) in enumerate(accesses):
        cl = classes[cls]
        prev = last_pos.get(line)
        if prev is None:
            cl.cold += 1
        else:
            distance = fen.prefix(t - 1) - fen.prefix(prev)
            for i, bound in enumerate(REUSE_BUCKETS):
                if distance < bound:
                    cl.reuse_hist[i] += 1
                    break
            else:
                cl.reuse_hist[-1] += 1
            fen.add(prev, -1)
        fen.add(t, 1)
        last_pos[line] = t
    return report


def analyze_query(db, sql, backend=None, hints=None, line_size=32):
    """Run a query untraced-by-the-machine and analyze its reference stream."""
    backend = backend or db.backend(0)
    gen = db.execute(sql, backend, hints=hints)
    return analyze(_event_iter(gen), line_size=line_size)


def _event_iter(gen):
    try:
        while True:
            yield next(gen)
    except StopIteration:
        return
