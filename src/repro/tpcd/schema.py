"""TPC-D table schemas and the index set used for the paper's plans.

Column names follow the TPC-D standard prefixes, which keeps names
globally unique.  Character widths are the TPC-D fixed widths (average
width for the variable comment fields).

The index set reproduces the plans of the paper's Table 1: primary keys,
the foreign-key columns used as inner join paths, and ``c_mktsegment`` /
``n_name`` / ``r_name`` for the selective driver predicates.  Notably there
is *no* index on any date column -- that is what makes Q1/Q4/Q6/Q12/...
sequential-scan queries.
"""

from repro.db.datatypes import Schema, char, date, float8, int4

TABLE_SCHEMAS = {
    "region": Schema("region", [
        int4("r_regionkey"),
        char("r_name", 25),
        char("r_comment", 80),
    ]),
    "nation": Schema("nation", [
        int4("n_nationkey"),
        char("n_name", 25),
        int4("n_regionkey"),
        char("n_comment", 80),
    ]),
    "supplier": Schema("supplier", [
        int4("s_suppkey"),
        char("s_name", 25),
        char("s_address", 25),
        int4("s_nationkey"),
        char("s_phone", 15),
        float8("s_acctbal"),
        char("s_comment", 60),
    ]),
    "part": Schema("part", [
        int4("p_partkey"),
        char("p_name", 35),
        char("p_mfgr", 25),
        char("p_brand", 10),
        char("p_type", 25),
        int4("p_size"),
        char("p_container", 10),
        float8("p_retailprice"),
        char("p_comment", 14),
    ]),
    "partsupp": Schema("partsupp", [
        int4("ps_partkey"),
        int4("ps_suppkey"),
        int4("ps_availqty"),
        float8("ps_supplycost"),
        char("ps_comment", 120),
    ]),
    "customer": Schema("customer", [
        int4("c_custkey"),
        char("c_name", 25),
        char("c_address", 25),
        int4("c_nationkey"),
        char("c_phone", 15),
        float8("c_acctbal"),
        char("c_mktsegment", 10),
        char("c_comment", 70),
    ]),
    "orders": Schema("orders", [
        int4("o_orderkey"),
        int4("o_custkey"),
        char("o_orderstatus", 1),
        float8("o_totalprice"),
        date("o_orderdate"),
        char("o_orderpriority", 15),
        char("o_clerk", 15),
        int4("o_shippriority"),
        char("o_comment", 49),
    ]),
    "lineitem": Schema("lineitem", [
        int4("l_orderkey"),
        int4("l_partkey"),
        int4("l_suppkey"),
        int4("l_linenumber"),
        float8("l_quantity"),
        float8("l_extendedprice"),
        float8("l_discount"),
        float8("l_tax"),
        char("l_returnflag", 1),
        char("l_linestatus", 1),
        date("l_shipdate"),
        date("l_commitdate"),
        date("l_receiptdate"),
        char("l_shipinstruct", 25),
        char("l_shipmode", 10),
        char("l_comment", 44),
    ]),
}

#: (index name, table, key columns).  The set the paper "added" (section
#: 2.2.2): it determines which selects become Index Scans in Table 1.
INDEX_DEFS = [
    ("ix_r_regionkey", "region", ["r_regionkey"]),
    ("ix_r_name", "region", ["r_name"]),
    ("ix_n_nationkey", "nation", ["n_nationkey"]),
    ("ix_n_name", "nation", ["n_name"]),
    ("ix_n_regionkey", "nation", ["n_regionkey"]),
    ("ix_s_suppkey", "supplier", ["s_suppkey"]),
    ("ix_s_nationkey", "supplier", ["s_nationkey"]),
    ("ix_p_partkey", "part", ["p_partkey"]),
    ("ix_ps_pk_sk", "partsupp", ["ps_partkey", "ps_suppkey"]),
    ("ix_ps_suppkey", "partsupp", ["ps_suppkey"]),
    ("ix_c_custkey", "customer", ["c_custkey"]),
    ("ix_c_nationkey", "customer", ["c_nationkey"]),
    ("ix_c_mktsegment", "customer", ["c_mktsegment"]),
    ("ix_o_orderkey", "orders", ["o_orderkey"]),
    ("ix_o_custkey", "orders", ["o_custkey"]),
    ("ix_l_orderkey", "lineitem", ["l_orderkey"]),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

PART_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cream",
    "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral",
    "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey",
    "honeydew", "hot", "hotpink", "indian", "ivory", "khaki",
]

TYPE_SYLL_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLL_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLL_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINERS = [
    "SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
    "MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG",
]

SHIPINSTRUCT = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]

#: TPC-D SF-1 base cardinalities (lineitem is ~6M; per-order lines vary).
BASE_CARDINALITIES = {
    "supplier": 10000,
    "part": 200000,
    "partsupp": 800000,
    "customer": 150000,
    "orders": 1500000,
}
