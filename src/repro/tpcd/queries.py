"""The 17 read-only TPC-D queries, in the engine's mini-SQL.

As in the paper (section 3), the queries are coded "in the limited form of
SQL supported by the database system": single-block selects whose memory
access patterns match a full SQL implementation, even where the computed
result is simplified (the paper's own queries "do not compute exactly what
the Transaction Processing Performance Council proposes").

Every query is a template over TPC-D substitution parameters;
:func:`query_instance` draws parameters deterministically from a seed, so
the paper's setup -- the same query type with different parameters on each
processor -- is reproducible.

``TABLE1_OPERATORS`` records the operator sets of the paper's Table 1; the
test suite asserts our planner produces exactly those sets.  Two queries
carry join hints (see :mod:`repro.db.planner`): Q12's merge join and Q16's
hash join, where Postgres95's cost model differed from our heuristics.
"""

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict

from repro.db.datatypes import num_to_date
from repro.tpcd.schema import NATIONS, REGIONS, SEGMENTS, SHIPMODES, TYPE_SYLL_2

QUERY_IDS = [f"Q{i}" for i in range(1, 18)]
READ_ONLY_QUERIES = list(QUERY_IDS)

#: Operator sets from the paper's Table 1.
TABLE1_OPERATORS = {
    "Q1": {"SS", "Sort", "Group", "Aggr"},
    "Q2": {"IS", "NL", "Sort"},
    "Q3": {"IS", "NL", "Sort", "Group", "Aggr"},
    "Q4": {"SS", "Sort", "Group", "Aggr"},
    "Q5": {"IS", "NL", "Sort", "Group", "Aggr"},
    "Q6": {"SS", "Aggr"},
    "Q7": {"SS", "IS", "NL", "H"},
    "Q8": {"IS", "NL"},
    "Q9": {"SS", "IS", "NL", "H"},
    "Q10": {"IS", "NL", "Sort", "Group", "Aggr"},
    "Q11": {"IS", "NL", "Sort", "Group", "Aggr"},
    "Q12": {"SS", "IS", "M", "Sort", "Group"},
    "Q13": {"SS", "IS", "NL", "Sort", "Group", "Aggr"},
    "Q14": {"SS", "IS", "NL", "Aggr"},
    "Q15": {"SS", "Sort", "Group"},
    "Q16": {"SS", "H", "Sort", "Group", "Aggr"},
    "Q17": {"SS", "IS", "NL", "Aggr"},
}

#: The paper's query taxonomy (section 3.4): how each query's selects are
#: implemented determines its memory behaviour.
_CATEGORIES = {
    "sequential": {"Q1", "Q4", "Q6", "Q15", "Q16"},
    "index": {"Q2", "Q3", "Q5", "Q8", "Q10", "Q11"},
    "mixed": {"Q7", "Q9", "Q12", "Q13", "Q14", "Q17"},
}


def query_category(qid):
    """Return ``"sequential"``, ``"index"`` or ``"mixed"`` for a query."""
    for cat, ids in _CATEGORIES.items():
        if qid in ids:
            return cat
    raise KeyError(f"unknown query {qid!r}")


@dataclass
class QueryInstance:
    """A query template bound to concrete substitution parameters."""

    qid: str
    sql: str
    hints: Dict[str, str] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def category(self):
        return query_category(self.qid)


def _date(num):
    return num_to_date(num).isoformat()


def _rand_date(rng, lo="1993-01-01", hi="1997-01-01"):
    from repro.db.datatypes import date_to_num

    return rng.randrange(date_to_num(lo), date_to_num(hi))


def query_instance(qid, seed=0):
    """Instantiate query ``qid`` with parameters drawn from ``seed``.

    The seed is mixed with a process-independent hash (``hash()`` is
    randomized per interpreter) so the same ``(qid, seed)`` draws the same
    parameters in every run and in every sweep worker process.
    """
    rng = random.Random(zlib.crc32(f"{qid}/{seed}".encode()) & 0xFFFFFFFF)
    builder = _BUILDERS.get(qid)
    if builder is None:
        raise KeyError(f"unknown query {qid!r}")
    return builder(rng)


# -- individual query builders -----------------------------------------------------


def _q1(rng):
    delta = rng.randrange(60, 121)
    d = _date(_rand_date(rng, "1998-01-01", "1998-04-01") - delta)
    sql = (
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
        "SUM(l_extendedprice) AS sum_base_price, "
        "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
        "AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order "
        f"FROM lineitem WHERE l_shipdate <= DATE '{d}' "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    )
    return QueryInstance("Q1", sql, params={"date": d})


def _q2(rng):
    region = rng.choice(REGIONS)
    size = rng.randrange(1, 51)
    sql = (
        "SELECT s_acctbal, s_name, n_name, p_partkey "
        "FROM region, nation, supplier, partsupp, part "
        f"WHERE r_name = '{region}' AND n_regionkey = r_regionkey "
        "AND s_nationkey = n_nationkey AND ps_suppkey = s_suppkey "
        f"AND p_partkey = ps_partkey AND p_size = {size} "
        "ORDER BY s_acctbal DESC"
    )
    return QueryInstance("Q2", sql, params={"region": region, "size": size})


def _q3(rng):
    segment = rng.choice(SEGMENTS)
    d = _date(_rand_date(rng, "1995-03-01", "1995-04-01"))
    sql = (
        "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, "
        "o_orderdate, o_shippriority "
        "FROM customer, orders, lineitem "
        f"WHERE c_mktsegment = '{segment}' AND c_custkey = o_custkey "
        f"AND l_orderkey = o_orderkey AND o_orderdate < DATE '{d}' "
        f"AND l_shipdate > DATE '{d}' "
        "GROUP BY l_orderkey, o_orderdate, o_shippriority "
        "ORDER BY revenue DESC, o_orderdate"
    )
    return QueryInstance("Q3", sql, params={"segment": segment, "date": d})


def _q4(rng):
    lo = _rand_date(rng, "1993-01-01", "1997-10-01")
    sql = (
        "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders "
        f"WHERE o_orderdate >= DATE '{_date(lo)}' "
        f"AND o_orderdate < DATE '{_date(lo + 92)}' "
        "GROUP BY o_orderpriority ORDER BY o_orderpriority"
    )
    return QueryInstance("Q4", sql, params={"date": _date(lo)})


def _q5(rng):
    region = rng.choice(REGIONS)
    lo = _rand_date(rng, "1993-01-01", "1997-01-01")
    sql = (
        "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
        "FROM region, nation, customer, orders, lineitem "
        f"WHERE r_name = '{region}' AND n_regionkey = r_regionkey "
        "AND c_nationkey = n_nationkey AND o_custkey = c_custkey "
        f"AND l_orderkey = o_orderkey AND o_orderdate >= DATE '{_date(lo)}' "
        f"AND o_orderdate < DATE '{_date(lo + 365)}' "
        "GROUP BY n_name ORDER BY revenue DESC"
    )
    return QueryInstance("Q5", sql, params={"region": region})


def _q6(rng):
    lo = _rand_date(rng, "1993-01-01", "1997-01-01")
    disc = rng.randrange(2, 10) / 100.0
    qty = rng.choice([24, 25])
    sql = (
        "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
        f"WHERE l_shipdate >= DATE '{_date(lo)}' "
        f"AND l_shipdate < DATE '{_date(lo + 365)}' "
        f"AND l_discount BETWEEN {disc - 0.011:.3f} AND {disc + 0.011:.3f} "
        f"AND l_quantity < {qty}"
    )
    return QueryInstance("Q6", sql, params={"date": _date(lo), "discount": disc})


def _q7(rng):
    nation = rng.choice(NATIONS)[0]
    sql = (
        "SELECT s_nationkey, l_shipdate, l_extendedprice, l_discount "
        "FROM nation, supplier, lineitem, orders, customer "
        f"WHERE n_name = '{nation}' AND s_nationkey = n_nationkey "
        "AND l_suppkey = s_suppkey AND o_orderkey = l_orderkey "
        "AND c_custkey = o_custkey "
        "AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'"
    )
    return QueryInstance("Q7", sql, params={"nation": nation})


def _q8(rng):
    region = rng.choice(REGIONS)
    sql = (
        "SELECT o_orderdate, l_extendedprice, l_discount, p_type "
        "FROM region, nation, customer, orders, lineitem, part "
        f"WHERE r_name = '{region}' AND n_regionkey = r_regionkey "
        "AND c_nationkey = n_nationkey AND o_custkey = c_custkey "
        "AND l_orderkey = o_orderkey AND p_partkey = l_partkey "
        "AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'"
    )
    return QueryInstance("Q8", sql, params={"region": region})


def _q9(rng):
    color = rng.choice(["green", "blue", "khaki", "coral", "azure"])
    sql = (
        "SELECT n_name, o_orderdate, l_extendedprice, l_discount, "
        "ps_supplycost, l_quantity "
        "FROM part, lineitem, supplier, partsupp, orders, nation "
        f"WHERE p_name LIKE '%{color}%' AND l_partkey = p_partkey "
        "AND s_suppkey = l_suppkey AND ps_partkey = l_partkey "
        "AND ps_suppkey = l_suppkey AND o_orderkey = l_orderkey "
        "AND n_nationkey = s_nationkey"
    )
    return QueryInstance("Q9", sql, params={"color": color})


def _q10(rng):
    nation = rng.choice(NATIONS)[0]
    lo = _rand_date(rng, "1993-02-01", "1994-01-01")
    sql = (
        "SELECT c_custkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, "
        "c_acctbal, n_name "
        "FROM nation, customer, orders, lineitem "
        f"WHERE n_name = '{nation}' AND c_nationkey = n_nationkey "
        "AND o_custkey = c_custkey AND l_orderkey = o_orderkey "
        f"AND o_orderdate >= DATE '{_date(lo)}' "
        f"AND o_orderdate < DATE '{_date(lo + 92)}' AND l_returnflag = 'R' "
        "GROUP BY c_custkey, c_acctbal, n_name ORDER BY revenue DESC"
    )
    return QueryInstance("Q10", sql, params={"nation": nation})


def _q11(rng):
    nation = rng.choice(NATIONS)[0]
    sql = (
        "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value "
        "FROM nation, supplier, partsupp "
        f"WHERE n_name = '{nation}' AND s_nationkey = n_nationkey "
        "AND ps_suppkey = s_suppkey "
        "GROUP BY ps_partkey ORDER BY value DESC"
    )
    return QueryInstance("Q11", sql, params={"nation": nation})


def _q12(rng):
    modes = rng.sample(SHIPMODES, 2)
    lo = _rand_date(rng, "1993-01-01", "1997-01-01")
    sql = (
        "SELECT l_shipmode, o_orderpriority FROM lineitem, orders "
        "WHERE o_orderkey = l_orderkey "
        f"AND l_shipmode IN ('{modes[0]}', '{modes[1]}') "
        "AND l_commitdate < l_receiptdate "
        f"AND l_receiptdate >= DATE '{_date(lo)}' "
        f"AND l_receiptdate < DATE '{_date(lo + 365)}' "
        "GROUP BY l_shipmode, o_orderpriority ORDER BY l_shipmode"
    )
    return QueryInstance("Q12", sql, hints={"orders": "merge"},
                         params={"modes": modes})


def _q13(rng):
    word = rng.choice(["special", "pending", "express"])
    sql = (
        "SELECT c_custkey, COUNT(*) AS c_count FROM customer, orders "
        "WHERE o_custkey = c_custkey AND c_acctbal > 0 "
        f"AND o_comment LIKE '%{word}%' "
        "GROUP BY c_custkey ORDER BY c_count DESC"
    )
    return QueryInstance("Q13", sql, params={"word": word})


def _q14(rng):
    lo = _rand_date(rng, "1993-01-01", "1997-01-01")
    sql = (
        "SELECT SUM(l_extendedprice * l_discount) AS promo_revenue "
        "FROM lineitem, part WHERE l_partkey = p_partkey "
        f"AND l_shipdate >= DATE '{_date(lo)}' "
        f"AND l_shipdate < DATE '{_date(lo + 31)}'"
    )
    return QueryInstance("Q14", sql, params={"date": _date(lo)})


def _q15(rng):
    lo = _rand_date(rng, "1993-01-01", "1997-10-01")
    sql = (
        "SELECT l_suppkey FROM lineitem "
        f"WHERE l_shipdate >= DATE '{_date(lo)}' "
        f"AND l_shipdate < DATE '{_date(lo + 92)}' "
        "GROUP BY l_suppkey ORDER BY l_suppkey"
    )
    return QueryInstance("Q15", sql, params={"date": _date(lo)})


def _q16(rng):
    brand = f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}"
    syll = rng.choice(TYPE_SYLL_2)
    sizes = sorted(rng.sample(range(1, 51), 8))
    size_list = ", ".join(str(s) for s in sizes)
    sql = (
        "SELECT p_brand, p_type, p_size, COUNT(ps_suppkey) AS supplier_cnt "
        "FROM partsupp, part WHERE p_partkey = ps_partkey "
        f"AND p_brand <> '{brand}' AND NOT (p_type LIKE 'MEDIUM {syll}%') "
        f"AND p_size IN ({size_list}) "
        "GROUP BY p_brand, p_type, p_size ORDER BY supplier_cnt DESC"
    )
    return QueryInstance("Q16", sql, hints={"partsupp": "hash"},
                         params={"brand": brand, "sizes": sizes})


def _q17(rng):
    qty = rng.randrange(4, 11)
    sql = (
        "SELECT SUM(l_extendedprice) AS total_price, AVG(l_quantity) AS avg_qty "
        "FROM lineitem, part WHERE p_partkey = l_partkey "
        f"AND l_quantity < {qty}"
    )
    return QueryInstance("Q17", sql, params={"quantity": qty})


_BUILDERS = {
    "Q1": _q1, "Q2": _q2, "Q3": _q3, "Q4": _q4, "Q5": _q5, "Q6": _q6,
    "Q7": _q7, "Q8": _q8, "Q9": _q9, "Q10": _q10, "Q11": _q11, "Q12": _q12,
    "Q13": _q13, "Q14": _q14, "Q15": _q15, "Q16": _q16, "Q17": _q17,
}
