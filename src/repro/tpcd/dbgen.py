"""Deterministic TPC-D population generator (dbgen equivalent).

``populate(sf, seed)`` produces rows for all eight tables at scale factor
``sf`` (a fraction of the TPC-D SF-1 sizes; the paper used ``sf = 0.01``,
i.e. the standard data set scaled down 100x, about 20 MB).

Value distributions follow the TPC-D specification closely enough for the
queries' selectivities to come out right: 5 market segments, 7 ship modes,
order dates spread over 1992-1998, ship dates 1..121 days after the order,
discounts 0.00-0.10, and so on.
"""

import random

from repro.db.datatypes import date_to_num
from repro.tpcd.schema import (
    BASE_CARDINALITIES, CONTAINERS, NATIONS, PART_NAME_WORDS, PRIORITIES,
    REGIONS, SEGMENTS, SHIPINSTRUCT, SHIPMODES, TABLE_SCHEMAS, INDEX_DEFS,
    TYPE_SYLL_1, TYPE_SYLL_2, TYPE_SYLL_3,
)

START_DATE = date_to_num("1992-01-01")
END_DATE = date_to_num("1998-08-02")


def table_cardinalities(sf):
    """Row counts for every table at scale factor ``sf`` (lineitem approx)."""
    counts = {"region": 5, "nation": 25}
    for name, base in BASE_CARDINALITIES.items():
        counts[name] = max(int(base * sf), 20 if name != "supplier" else 5)
    counts["lineitem"] = counts["orders"] * 4  # expectation of 1..7 per order
    return counts


def _comment(rng, width):
    words = ("the", "of", "slyly", "furiously", "carefully", "quick", "pending",
             "final", "ironic", "express", "special", "regular", "bold")
    out = []
    size = 0
    while size < width - 8:
        w = rng.choice(words)
        out.append(w)
        size += len(w) + 1
    return " ".join(out)[:width]


def populate(sf=0.001, seed=42):
    """Generate all tables; returns ``{table_name: [rows]}``."""
    rng = random.Random(seed)
    counts = table_cardinalities(sf)
    data = {}

    data["region"] = [
        [i, REGIONS[i], _comment(rng, 40)] for i in range(5)
    ]
    data["nation"] = [
        [i, name, region, _comment(rng, 40)]
        for i, (name, region) in enumerate(NATIONS)
    ]

    n_supp = counts["supplier"]
    data["supplier"] = [
        [
            k,
            f"Supplier#{k:09d}",
            _comment(rng, 20),
            rng.randrange(25),
            f"{rng.randrange(10, 35)}-{rng.randrange(100, 999)}-{rng.randrange(100, 999)}",
            round(rng.uniform(-999.99, 9999.99), 2),
            _comment(rng, 40),
        ]
        for k in range(1, n_supp + 1)
    ]

    n_part = counts["part"]
    parts = []
    for k in range(1, n_part + 1):
        name = " ".join(rng.sample(PART_NAME_WORDS, 3))
        brand = f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}"
        ptype = (f"{rng.choice(TYPE_SYLL_1)} {rng.choice(TYPE_SYLL_2)} "
                 f"{rng.choice(TYPE_SYLL_3)}")
        parts.append([
            k, name, f"Manufacturer#{rng.randrange(1, 6)}", brand, ptype,
            rng.randrange(1, 51), rng.choice(CONTAINERS),
            round(900 + k / 10 % 200 + rng.uniform(0, 100), 2),
            _comment(rng, 14),
        ])
    data["part"] = parts

    partsupp = []
    per_part = max(counts["partsupp"] // max(n_part, 1), 1)
    for k in range(1, n_part + 1):
        for j in range(per_part):
            suppkey = ((k + (j * (n_supp // per_part + 1))) % n_supp) + 1
            partsupp.append([
                k, suppkey, rng.randrange(1, 10000),
                round(rng.uniform(1.0, 1000.0), 2), _comment(rng, 60),
            ])
    data["partsupp"] = partsupp

    n_cust = counts["customer"]
    data["customer"] = [
        [
            k,
            f"Customer#{k:09d}",
            _comment(rng, 20),
            rng.randrange(25),
            f"{rng.randrange(10, 35)}-{rng.randrange(100, 999)}-{rng.randrange(100, 999)}",
            round(rng.uniform(-999.99, 9999.99), 2),
            rng.choice(SEGMENTS),
            _comment(rng, 50),
        ]
        for k in range(1, n_cust + 1)
    ]

    n_orders = counts["orders"]
    orders = []
    lineitems = []
    for k in range(1, n_orders + 1):
        custkey = rng.randrange(1, n_cust + 1)
        orderdate = rng.randrange(START_DATE, END_DATE - 151)
        n_lines = rng.randrange(1, 8)
        total = 0.0
        status_counts = 0
        for ln in range(1, n_lines + 1):
            partkey = rng.randrange(1, n_part + 1)
            suppkey = rng.randrange(1, n_supp + 1)
            quantity = float(rng.randrange(1, 51))
            extended = round(quantity * (900 + partkey / 10 % 200), 2)
            discount = rng.randrange(0, 11) / 100.0
            tax = rng.randrange(0, 9) / 100.0
            shipdate = orderdate + rng.randrange(1, 122)
            commitdate = orderdate + rng.randrange(30, 91)
            receiptdate = shipdate + rng.randrange(1, 31)
            current = date_to_num("1995-06-17")
            if receiptdate <= current:
                returnflag = rng.choice(["R", "A"])
            else:
                returnflag = "N"
            linestatus = "F" if shipdate <= current else "O"
            status_counts += linestatus == "F"
            total += extended * (1 + tax) * (1 - discount)
            lineitems.append([
                k, partkey, suppkey, ln, quantity, extended, discount, tax,
                returnflag, linestatus, shipdate, commitdate, receiptdate,
                rng.choice(SHIPINSTRUCT), rng.choice(SHIPMODES),
                _comment(rng, 27),
            ])
        if status_counts == n_lines:
            orderstatus = "F"
        elif status_counts == 0:
            orderstatus = "O"
        else:
            orderstatus = "P"
        orders.append([
            k, custkey, orderstatus, round(total, 2), orderdate,
            rng.choice(PRIORITIES), f"Clerk#{rng.randrange(1, 1000):09d}",
            0, _comment(rng, 30),
        ])
    data["orders"] = orders
    data["lineitem"] = lineitems
    return data


def build_database(sf=0.001, seed=42, cost_model=None, with_indexes=True,
                   max_pages=None):
    """Create a :class:`~repro.db.engine.Database` populated at ``sf``.

    Returns the database with all eight tables loaded and the paper's index
    set built (unless ``with_indexes`` is false).
    """
    from repro.db.engine import Database

    data = populate(sf=sf, seed=seed)
    if max_pages is None:
        total_bytes = sum(
            len(rows) * TABLE_SCHEMAS[t].tuple_size for t, rows in data.items()
        )
        max_pages = max(total_bytes // 8192 * 3, 512)
    db = Database(cost_model=cost_model, max_pages=max_pages)
    for name, schema in TABLE_SCHEMAS.items():
        db.create_table(schema)
        db.load(name, data[name])
    if with_indexes:
        for ix_name, table, cols in INDEX_DEFS:
            db.create_index(ix_name, table, cols)
    return db
