"""TPC-D workload: schemas, population generator, and the 17 queries.

This package is the dbgen-equivalent the paper used (scaled down 100x) plus
the query set of its Table 1.  Data generation is deterministic given a
seed, so simulations are exactly reproducible.
"""

from repro.tpcd.schema import TABLE_SCHEMAS, INDEX_DEFS
from repro.tpcd.dbgen import populate, build_database, table_cardinalities
from repro.tpcd.scales import Scale, SCALES
from repro.tpcd.queries import (
    QUERY_IDS, READ_ONLY_QUERIES, TABLE1_OPERATORS, QueryInstance,
    query_instance, query_category,
)

__all__ = [
    "TABLE_SCHEMAS",
    "INDEX_DEFS",
    "populate",
    "build_database",
    "table_cardinalities",
    "Scale",
    "SCALES",
    "QUERY_IDS",
    "READ_ONLY_QUERIES",
    "TABLE1_OPERATORS",
    "QueryInstance",
    "query_instance",
    "query_category",
]
