"""TPC-D update functions UF1 (insert orders) and UF2 (delete orders).

The paper does not trace these -- Postgres95's relation-level locking makes
update queries serialize -- but TPC-D defines them, and the engine supports
them through the DML path (write datalocks, heap and index maintenance).

``uf1_statements`` inserts a batch of new orders and their lineitems;
``uf2_statements`` deletes an equal-sized batch of old orders.  Both are
expressed as plain SQL over the engine's DML grammar.
"""

import random

from repro.tpcd.dbgen import START_DATE, END_DATE
from repro.tpcd.schema import PRIORITIES, SHIPINSTRUCT, SHIPMODES


def _sql_value(v):
    if isinstance(v, str):
        escaped = v.replace("'", "''")
        return f"'{escaped}'"
    return repr(v)


def _values(rows):
    return ", ".join(
        "(" + ", ".join(_sql_value(v) for v in row) + ")" for row in rows
    )


def uf1_statements(db, batch=None, seed=0):
    """Build the UF1 INSERT statements for ``db``.

    Inserts ``batch`` new orders (default: 0.1% of the orders table, the
    TPC-D proportion) with 1-7 lineitems each.  Returns a list of SQL
    strings.
    """
    rng = random.Random(seed)
    orders = db.tables["orders"]
    lineitem_rows = []
    order_rows = []
    n_orders = len(orders.rows)
    n_cust = len(db.tables["customer"].rows)
    n_part = len(db.tables["part"].rows)
    n_supp = len(db.tables["supplier"].rows)
    batch = batch or max(n_orders // 1000, 1)
    next_key = n_orders + 1
    for i in range(batch):
        key = next_key + i
        orderdate = rng.randrange(START_DATE, END_DATE - 151)
        total = 0.0
        for ln in range(1, rng.randrange(1, 8) + 1):
            qty = float(rng.randrange(1, 51))
            price = round(qty * 1000, 2)
            total += price
            shipdate = orderdate + rng.randrange(1, 122)
            lineitem_rows.append([
                key, rng.randrange(1, n_part + 1), rng.randrange(1, n_supp + 1),
                ln, qty, price, rng.randrange(0, 11) / 100.0,
                rng.randrange(0, 9) / 100.0, "N", "O", shipdate,
                orderdate + rng.randrange(30, 91),
                shipdate + rng.randrange(1, 31),
                rng.choice(SHIPINSTRUCT), rng.choice(SHIPMODES), "new order",
            ])
        order_rows.append([
            key, rng.randrange(1, n_cust + 1), "O", round(total, 2),
            orderdate, rng.choice(PRIORITIES), "Clerk#000000001", 0,
            "uf1 insert",
        ])
    return [
        f"INSERT INTO orders VALUES {_values(order_rows)}",
        f"INSERT INTO lineitem VALUES {_values(lineitem_rows)}",
    ]


def uf2_statements(db, batch=None, seed=0):
    """Build the UF2 DELETE statements: drop a batch of old orders."""
    rng = random.Random(seed)
    orders = db.tables["orders"]
    live = orders.live_rids()
    batch = batch or max(len(live) // 1000, 1)
    key_idx = orders.schema.column_index("o_orderkey")
    keys = sorted(orders.rows[r][key_idx] for r in rng.sample(live, batch))
    out = []
    for key in keys:
        out.append(f"DELETE FROM lineitem WHERE l_orderkey = {key}")
        out.append(f"DELETE FROM orders WHERE o_orderkey = {key}")
    return out
