"""Scale presets: database size and cache geometry scale together.

The paper scaled the TPC-D data set down 100x and shrank the caches so that
they still overflow (section 4.2).  We apply the same argument a second
time for fast runs: ``SMALL`` and ``TINY`` shrink database and caches by a
further common factor, preserving the miss phenomenology; ``PAPER`` is the
paper's own sizing.
"""

from dataclasses import dataclass

from repro.memsim.numa import MachineConfig


@dataclass(frozen=True)
class Scale:
    """One consistent sizing of database, caches and private arena."""

    name: str
    sf: float                # fraction of TPC-D SF-1
    l1_size: int             # baseline primary cache
    l2_size: int             # baseline secondary cache
    arena_size: int          # per-backend private arena (palloc churn)
    huge_factor: int = 256   # cache multiplier for the Figure-12 setup

    def machine_config(self, **overrides):
        """Baseline :class:`MachineConfig` at this scale.

        Keyword overrides replace fields (e.g. ``l2_line=128``,
        ``prefetch_data=True``).
        """
        cfg = MachineConfig(l1_size=self.l1_size, l2_size=self.l2_size)
        return cfg.replace(**overrides) if overrides else cfg

    def huge_machine_config(self, **overrides):
        """The very large caches of the inter-query reuse experiment.

        The paper used 1-MB primary / 32-MB secondary caches (256x/256x the
        baseline) to find the upper bound on reuse.
        """
        cfg = MachineConfig(
            l1_size=self.l1_size * self.huge_factor,
            l2_size=self.l2_size * self.huge_factor,
        )
        return cfg.replace(**overrides) if overrides else cfg


SCALES = {
    "tiny": Scale("tiny", sf=1 / 5000, l1_size=512, l2_size=16 * 1024,
                  arena_size=8 * 1024),
    "small": Scale("small", sf=1 / 1000, l1_size=1024, l2_size=32 * 1024,
                   arena_size=16 * 1024),
    "medium": Scale("medium", sf=1 / 400, l1_size=2048, l2_size=64 * 1024,
                    arena_size=32 * 1024),
    "paper": Scale("paper", sf=1 / 100, l1_size=4 * 1024, l2_size=128 * 1024,
                   arena_size=64 * 1024),
}


def get_scale(name_or_scale):
    """Resolve a scale by name (or pass a :class:`Scale` through)."""
    if isinstance(name_or_scale, Scale):
        return name_or_scale
    try:
        return SCALES[name_or_scale]
    except KeyError:
        raise KeyError(
            f"unknown scale {name_or_scale!r}; choose from {sorted(SCALES)}"
        ) from None
