"""Statistics containers for the memory-system simulation.

Counters are organized the way the paper reports them: read misses per cache
level, split by the software data structure missed on (:class:`DataClass`)
and by miss type (cold / conflict / coherence), plus per-processor time
breakdowns (Busy / MSync / memory stall per data class).
"""

from repro.memsim.events import CLASS_NAMES, DataClass, METADATA_CLASSES, N_CLASSES

N_MISS_TYPES = 3


def _zero_grid():
    return [[0, 0, 0] for _ in range(N_CLASSES)]


class MachineStats:
    """Machine-wide access and miss counters."""

    __slots__ = (
        "l1_reads", "l1_writes", "l2_reads",
        "l1_read_misses", "l2_read_misses",
        "l1_write_misses", "l2_write_misses",
        "prefetches_issued", "prefetch_late_cycles",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        """Zero every counter (cache state is owned by the machine)."""
        self.l1_reads = 0
        self.l1_writes = 0
        self.l2_reads = 0
        self.l1_read_misses = _zero_grid()
        self.l2_read_misses = _zero_grid()
        self.l1_write_misses = 0
        self.l2_write_misses = 0
        self.prefetches_issued = 0
        self.prefetch_late_cycles = 0

    # -- aggregation helpers -------------------------------------------------

    def l1_misses_by_class(self):
        """Return ``{DataClass: total L1 read misses}``."""
        return {DataClass(c): sum(self.l1_read_misses[c]) for c in range(N_CLASSES)}

    def l2_misses_by_class(self):
        """Return ``{DataClass: total L2 read misses}``."""
        return {DataClass(c): sum(self.l2_read_misses[c]) for c in range(N_CLASSES)}

    def total_l1_read_misses(self):
        return sum(sum(row) for row in self.l1_read_misses)

    def total_l2_read_misses(self):
        return sum(sum(row) for row in self.l2_read_misses)

    def l1_miss_rate(self):
        """L1 read miss rate (read misses / reads)."""
        return self.total_l1_read_misses() / self.l1_reads if self.l1_reads else 0.0

    def l2_miss_rate(self):
        """Global L2 miss rate: L2 read misses / L1 reads, as in the paper's
        "global miss rates" for the secondary cache."""
        return self.total_l2_read_misses() / self.l1_reads if self.l1_reads else 0.0

    def grouped(self, level="l2"):
        """Collapse the per-class miss grid into the paper's four groups.

        Returns ``{group: [cold, conf, cohe]}`` with groups ``Priv``,
        ``Data``, ``Index`` and ``Metadata``.
        """
        grid = self.l2_read_misses if level == "l2" else self.l1_read_misses
        groups = {"Priv": [0, 0, 0], "Data": [0, 0, 0],
                  "Index": [0, 0, 0], "Metadata": [0, 0, 0]}
        for c in range(N_CLASSES):
            cls = DataClass(c)
            if cls in METADATA_CLASSES:
                key = "Metadata"
            else:
                key = CLASS_NAMES[cls]
            for t in range(N_MISS_TYPES):
                groups[key][t] += grid[c][t]
        return groups

    # -- serialization -------------------------------------------------------

    def as_dict(self):
        """Plain-dict view of every counter: one key per slot, miss grids
        as nested lists.  Round-trips exactly through :meth:`from_dict`
        (and through JSON -- everything is ints and lists), which is how
        the run report (:mod:`repro.obs.report`) embeds machine counters."""
        return {
            "l1_reads": self.l1_reads,
            "l1_writes": self.l1_writes,
            "l2_reads": self.l2_reads,
            "l1_read_misses": [list(row) for row in self.l1_read_misses],
            "l2_read_misses": [list(row) for row in self.l2_read_misses],
            "l1_write_misses": self.l1_write_misses,
            "l2_write_misses": self.l2_write_misses,
            "prefetches_issued": self.prefetches_issued,
            "prefetch_late_cycles": self.prefetch_late_cycles,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild stats from :meth:`as_dict` output (missing keys stay
        zero, unknown keys are ignored -- both directions of version skew
        are tolerated)."""
        out = cls()
        for name in out.__slots__:
            if name not in data:
                continue
            value = data[name]
            if name in ("l1_read_misses", "l2_read_misses"):
                value = [list(row) for row in value]
            setattr(out, name, value)
        return out


class CpuStats:
    """Per-processor time accounting (cycles)."""

    __slots__ = ("busy", "msync", "mem_by_class", "finish_time", "events")

    def __init__(self):
        self.reset()

    def reset(self):
        self.busy = 0
        self.msync = 0
        self.mem_by_class = [0] * N_CLASSES
        self.finish_time = 0
        self.events = 0

    @property
    def mem(self):
        """Total memory stall cycles."""
        return sum(self.mem_by_class)

    @property
    def pmem(self):
        """Memory stall cycles on private data (the paper's PMem)."""
        return self.mem_by_class[DataClass.PRIV]

    @property
    def smem(self):
        """Memory stall cycles on shared data (the paper's SMem)."""
        return self.mem - self.pmem

    @property
    def total(self):
        """Total execution cycles for this processor."""
        return self.busy + self.msync + self.mem

    def mem_grouped(self):
        """Memory stall grouped into Priv/Data/Index/Metadata."""
        groups = {"Priv": 0, "Data": 0, "Index": 0, "Metadata": 0}
        for c in range(N_CLASSES):
            cls = DataClass(c)
            key = "Metadata" if cls in METADATA_CLASSES else CLASS_NAMES[cls]
            groups[key] += self.mem_by_class[c]
        return groups

    # -- serialization -------------------------------------------------------

    def as_dict(self):
        """Plain-dict view: one key per slot.  Round-trips exactly through
        :meth:`from_dict` and through JSON (ints and a list of ints)."""
        return {
            "busy": self.busy,
            "msync": self.msync,
            "mem_by_class": list(self.mem_by_class),
            "finish_time": self.finish_time,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild stats from :meth:`as_dict` output (missing keys stay
        zero, unknown keys are ignored)."""
        out = cls()
        for name in out.__slots__:
            if name not in data:
                continue
            value = data[name]
            if name == "mem_by_class":
                value = list(value)
            setattr(out, name, value)
        return out


def merge_cpu_stats(stats_list):
    """Sum per-processor stats into one aggregate.

    Accepts :class:`CpuStats` instances, :meth:`CpuStats.as_dict` dicts
    (as found in a run report), or a mix.  An empty list returns a zeroed
    :class:`CpuStats` -- merging nothing is the identity, not an error.
    """
    out = CpuStats()
    for s in stats_list:
        if isinstance(s, dict):
            s = CpuStats.from_dict(s)
        out.busy += s.busy
        out.msync += s.msync
        out.events += s.events
        out.finish_time = max(out.finish_time, s.finish_time)
        for c in range(N_CLASSES):
            out.mem_by_class[c] += s.mem_by_class[c]
    return out
