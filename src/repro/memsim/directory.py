"""Full-map directory for invalidation-based cache coherence.

The directory tracks, per secondary-cache line, which nodes hold a copy and
which node (if any) holds it dirty.  It is the mechanism behind the 2-hop
and 3-hop remote transactions of the paper's NUMA latency model, and the
source of the coherence invalidations that Figure 7 classifies as ``Cohe``
misses.
"""


class Directory:
    """Per-line sharing state for an ``n_nodes``-node machine."""

    __slots__ = ("n_nodes", "_sharers", "_dirty")

    def __init__(self, n_nodes):
        self.n_nodes = n_nodes
        self._sharers = {}
        self._dirty = {}

    def sharers(self, line):
        """Return the set of nodes caching ``line`` (empty if uncached)."""
        return self._sharers.get(line, frozenset())

    def dirty_owner(self, line):
        """Return the node holding ``line`` dirty, or ``None``."""
        return self._dirty.get(line)

    def record_read(self, node, line):
        """Register a read fill by ``node``.

        Returns the node that supplied the line dirty (now downgraded to a
        sharer), or ``None`` when the line came from memory.
        """
        owner = self._dirty.pop(line, None)
        if owner == node:
            # Re-reading our own dirty line keeps it dirty.
            self._dirty[line] = node
            return None
        holders = self._sharers.setdefault(line, set())
        holders.add(node)
        return owner

    def record_write(self, node, line):
        """Register a write by ``node``; return the nodes to invalidate."""
        holders = self._sharers.setdefault(line, set())
        victims = [n for n in holders if n != node]
        holders.clear()
        holders.add(node)
        self._dirty[line] = node
        return victims

    def record_eviction(self, node, line):
        """Register that ``node`` dropped its copy of ``line``."""
        holders = self._sharers.get(line)
        if holders is not None:
            holders.discard(node)
            if not holders:
                del self._sharers[line]
        if self._dirty.get(line) == node:
            del self._dirty[line]

    def is_cached(self, line):
        """Return whether any node holds ``line``."""
        return bool(self._sharers.get(line))

    def check_invariants(self):
        """Verify single-writer/no-stale-owner invariants (for tests)."""
        for line, owner in self._dirty.items():
            holders = self._sharers.get(line, set())
            if holders != {owner}:
                raise AssertionError(
                    f"line {line:#x}: dirty owner {owner} but sharers {holders}"
                )
