"""Model of the 16-entry processor write buffer.

The paper's processors "stall on read misses and on write buffer overflow".
We model the buffer as a FIFO of pending stores that retire serially: a
store's completion time is the later of its issue time and the previous
store's completion, plus its own service latency.  When a store is issued
while the buffer is full, the processor stalls until the oldest entry
retires.
"""

from collections import deque


class WriteBuffer:
    """FIFO write buffer with bounded occupancy and serial retirement."""

    __slots__ = ("entries", "capacity", "_last_completion", "stall_cycles")

    def __init__(self, capacity=16):
        if capacity < 1:
            raise ValueError("write buffer needs at least one entry")
        self.capacity = capacity
        self.entries = deque()
        self._last_completion = 0
        self.stall_cycles = 0

    # repro: hot
    def issue(self, now, latency):
        """Issue a store at time ``now`` with service time ``latency``.

        Returns the number of cycles the processor stalls (zero unless the
        buffer was full).
        """
        self._drain(now)
        stall = 0
        if len(self.entries) >= self.capacity:
            # Processor waits for the oldest entry to retire.
            oldest = self.entries.popleft()
            if oldest > now:
                stall = oldest - now
        issue_time = now + stall
        completion = max(self._last_completion, issue_time) + latency
        self._last_completion = completion
        self.entries.append(completion)
        self.stall_cycles += stall
        return stall

    # repro: hot
    def _drain(self, now):
        entries = self.entries
        while entries and entries[0] <= now:
            entries.popleft()

    def pending(self, now):
        """Return the number of stores still in flight at time ``now``."""
        self._drain(now)
        return len(self.entries)

    def drain_time(self, now):
        """Return the time at which the buffer becomes empty."""
        return max(now, self._last_completion)

    def reset(self):
        """Empty the buffer (between workload phases)."""
        self.entries.clear()
        self._last_completion = 0
        self.stall_cycles = 0
