"""Batched replay kernel: vectorized trace preprocessing and selection.

The replay dispatch loop (:meth:`Interleaver.run_traces`) retires one
Python-level iteration per trace row.  Most rows of a DSS trace are
single-line reads and writes whose entire machine interaction is local to
the issuing node unless a miss or a store reaches the directory -- and
even then the interaction is a short, fixed shape.  The batched kernel
exploits that with two tiers, both planned here and both bit-identical to
scalar dispatch:

* **The inline tier** (the workhorse).  A per-trace preprocessing pass
  computes, vectorized with numpy, the primary-cache line tag of every
  single-line read/write row and stores it as one plain column beside
  the trace's event columns (-1 marks the rows the dispatch loop must
  handle through its scalar branches: line-crossing accesses and
  lock/sync events).  The dispatch loop then retires tagged rows with
  the machine's read/write hot paths *inlined* -- no method calls, no
  re-derivation of the line tag, no per-row attribute chases (the
  hierarchy's containers are bound to locals per dispatch window).  The
  tags stay ordinary machine-word ints on purpose: packing more fields
  per row was measured slower, because Python arithmetic on >2**30
  values allocates multi-digit ints in the hot loop.
* **The gather tier**.  Runs of single-CPU reads over lines that stay
  resident (plus busy/hit rows) change no cache, directory, or
  write-buffer state at all: a whole run prefix can be retired with one
  numpy gather over the machine's L1 tag mirror and two cumulative-array
  lookups.  DSS scan traces are too miss-dense for long hit runs (the
  paper's own observation: scans stream, caches barely help), so this
  tier engages only when a trace's plan actually carries qualifying runs
  of :data:`MIN_BATCH` rows or more -- then the mirror is built and
  maintained; otherwise it costs nothing.

Kernel selection (:func:`resolve_kernel`): ``horizon`` / ``batched`` /
``scalar`` / ``auto``, from an explicit argument, the process default set
by :class:`~repro.core.run.RunConfig`, or ``REPRO_KERNEL``.  The horizon
kernel (:mod:`repro.memsim.horizon`) layers a sharing classifier on top
of the batch plans and retires runs of non-interacting rows *across*
global-clock window cuts, replaying the cuts from recorded virtual
clocks; ``auto`` picks it whenever numpy is importable.  When numpy is
unavailable both numpy kernels degrade to the scalar path with a single
warning per process.  Machine gating (:func:`machine_batch_reason`):
prefetching machines fall back to scalar entirely (a primary-cache hit
may have to wait on a pending prefetch fill, which needs the scalar
pending-fill probe); a set-associative L1 only disables the gather tier
(LRU reordering makes hits stateful), not the inline tier.

Every dispatch boundary of the scalar engine is preserved: rows retire
one at a time in the same global-clock order (the gather tier cuts its
prefix at the first L1 miss and at the window's clock limit, exactly
where scalar dispatch would stop), so cycles, machine counters, and
per-CPU accounting are bit-identical -- asserted by ``tests/test_batch.py``
and by the trace-cache suite under ``REPRO_KERNEL=batched``.
"""

import os
import warnings

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Whether the optional ``perf`` extra (numpy) is importable.
HAVE_NUMPY = _np is not None

#: Recognized kernel names (``auto`` resolves to one of the other three).
KERNELS = ("auto", "horizon", "batched", "scalar")

#: Line-tag sentinel stored in the mirror's extra slot and in the plan's
#: ``lines`` entries for busy/hit rows: the gather-and-compare hit check
#: then reports those rows as hits with no extra mask.  Distinct from the
#: empty-set tag (-1) so an empty set never "hits" a busy row.
NONMEM_LINE = -2

#: Minimum row count for a run to qualify for the gather tier, and
#: minimum remaining rows for re-entering one after a miss or a
#: clock-limit cut.  Below these, row-at-a-time dispatch is cheaper than
#: a numpy round trip.
MIN_BATCH = 24
MIN_RESUME = 8

#: Plans kept per trace: one per distinct L1 geometry, evicted FIFO.  A
#: sweep replays each trace under several geometries but visits them
#: point by point, so a tiny memo bounds the packed columns' memory
#: without re-partitioning inside a point.
PLAN_MEMO = 2

#: Process-default kernel, set by :func:`repro.core.run.configure_run`.
_DEFAULT = "auto"

_WARNED_NO_NUMPY = False


def _check_kernel(kernel):
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown replay kernel {kernel!r}: expected one of {KERNELS}")
    return kernel


def set_default_kernel(kernel):
    """Set the process-default kernel (``RunConfig.kernel`` lands here)."""
    global _DEFAULT
    # repro: allow[MP001] process-local by design; workers apply RunConfig
    _DEFAULT = _check_kernel(kernel or "auto")


def default_kernel():
    """The process-default kernel name (``auto`` until configured)."""
    return _DEFAULT


def resolve_kernel(kernel=None):
    """Resolve a kernel request to ``'horizon'``/``'batched'``/``'scalar'``.

    Precedence: the explicit ``kernel`` argument, then the process default
    (:func:`set_default_kernel`, i.e. ``RunConfig.kernel``), then the
    ``REPRO_KERNEL`` environment variable; a still-unresolved ``auto``
    picks ``horizon`` whenever numpy is importable.  A ``horizon`` or
    ``batched`` request without numpy warns once per process and degrades
    to ``scalar``.
    """
    global _WARNED_NO_NUMPY
    if kernel is None or kernel == "auto":
        kernel = _DEFAULT
    if kernel == "auto":
        kernel = _check_kernel(os.environ.get("REPRO_KERNEL") or "auto")
    if kernel == "auto":
        kernel = "horizon" if HAVE_NUMPY else "scalar"
    _check_kernel(kernel)
    if kernel in ("batched", "horizon") and not HAVE_NUMPY:
        if not _WARNED_NO_NUMPY:
            # repro: allow[MP001] warn-once flag is per-process by design
            _WARNED_NO_NUMPY = True
            warnings.warn(
                f"the {kernel} replay kernel needs numpy (the 'perf' "
                "extra: pip install repro[perf]); falling back to the "
                "scalar kernel", RuntimeWarning, stacklevel=2)
        kernel = "scalar"
    return kernel


def machine_batch_reason(machine):
    """Why ``machine`` cannot run the batched kernel, or ``None`` if it can.

    Reasons (also the fallback metric suffixes): ``no_numpy`` (plans are
    built with numpy), ``prefetch`` (a primary-cache hit may still wait
    on a pending prefetch fill, which needs the scalar pending-fill
    probe on every hit).  A set-associative L1 is *not* a fallback
    reason: it only disables the gather tier (whose mirror requires
    stateless, direct-mapped hits; see
    :meth:`~repro.memsim.numa.NumaMachine._ensure_l1_mirror`), while the
    inline tier handles any associativity.  The horizon kernel shares
    these gates and adds one of its own in the dispatcher: a machine
    with residual directory state (``warm_machine``) falls back to
    batched, because the sharing classifier only covers lines the
    *current* trace set touches.
    """
    if not HAVE_NUMPY:
        return "no_numpy"
    if machine._prefetch_data:
        return "prefetch"
    return None


# -- L1 tag mirror ---------------------------------------------------------------


def make_l1_mirror(n_nodes, n_sets):
    """Per-node tag arrays mirroring a direct-mapped L1's contents.

    ``tags[s]`` is the line tag resident in set ``s`` (``-1`` when empty).
    Slot ``n_sets`` permanently holds :data:`NONMEM_LINE`, the always-hit
    sentinel that busy/hit plan rows index.  Returns ``None`` without
    numpy.
    """
    if not HAVE_NUMPY:
        return None
    mirror = []
    for _ in range(n_nodes):
        tags = _np.full(n_sets + 1, -1, dtype=_np.int64)
        tags[n_sets] = NONMEM_LINE
        mirror.append(tags)
    return mirror


# -- trace preprocessing ---------------------------------------------------------


class BatchPlan:
    """Precomputed batching metadata for one trace under one L1 geometry.

    ``mem_lines`` is the inline tier's per-row column: one plain-list
    integer per trace row holding the primary-cache line tag of a
    single-line read/write, or -1 for rows the dispatch loop must handle
    through its scalar branches.  ``mcost``/``mreads`` ride along from
    :func:`trace_base` (shift-independent, shared by every geometry's
    plan): the retire cost and ``l1_reads`` contribution of each
    read/write row, precomputed so the inline paths never re-derive them
    from size/inert/fused-hit columns.  ``run_starts``/``run_ends``
    are the gather tier's qualifying runs (length >= :data:`MIN_BATCH`)
    of batchable rows, as plain lists walked with a single forward
    cursor; ``sets``/``lines`` feed the mirror gather (busy/hit rows
    point at the sentinel slot and carry :data:`NONMEM_LINE`, so they
    auto-hit), and ``ccost``/``cl1r`` are whole-trace cumulative sums of
    per-row retire cost and ``l1_reads`` contribution, so any run prefix
    reduces to two array lookups.
    """

    __slots__ = ("mem_lines", "mcost", "mreads", "sets", "lines",
                 "run_starts", "run_ends", "ccost", "cl1r",
                 "batchable_rows", "n_rows")

    def __init__(self, mem_lines, mcost, mreads, sets, lines, run_starts,
                 run_ends, ccost, cl1r, batchable_rows, n_rows):
        self.mem_lines = mem_lines
        self.mcost = mcost
        self.mreads = mreads
        self.sets = sets
        self.lines = lines
        self.run_starts = run_starts
        self.run_ends = run_ends
        self.ccost = ccost
        self.cl1r = cl1r
        self.batchable_rows = batchable_rows
        self.n_rows = n_rows


def _np_column(arr, dtype):
    """Zero-copy numpy view over a stdlib ``array`` column."""
    if len(arr) == 0:
        return _np.empty(0, dtype=dtype)
    return _np.frombuffer(arr, dtype=dtype)


def trace_base(trace):
    """The shift-independent batching arrays for ``trace``, memoized on it.

    Returns ``(memread, memrw, nonmem, addr, xorspan, ccost, cl1r,
    mcost, mreads)``:

    * ``memread`` / ``memrw`` -- bool masks of EV_READ rows and of
      EV_READ-or-EV_WRITE rows;
    * ``nonmem`` -- bool mask of EV_BUSY / EV_HIT rows (batchable without
      touching memory);
    * ``addr`` -- the ``a`` column as int64 (byte address for memory
      rows, cycle or reference count for busy/hit rows);
    * ``xorspan`` -- ``addr ^ (addr + size - 1)``: an access stays within
      one line under line shift ``s`` iff ``xorspan >> s == 0`` (only
      meaningful on memory rows);
    * ``ccost`` -- cumulative retire cost per row, assuming the row hits:
      ``1 + inert`` for reads (the fused trailing busy/hit run rides
      along), the cycle count for busy/hit rows, 0 for rows the gather
      tier never touches;
    * ``cl1r`` -- cumulative ``l1_reads`` contribution per row: the word
      count plus fused-hit count for reads, the reference count for
      EV_HIT rows;
    * ``mcost`` / ``mreads`` -- plain-list per-row columns for the inline
      tier, shared by every geometry's plan: the retire cost (1 cycle
      plus fused busy cycles) and the ``l1_reads`` contribution (word
      count plus fused-hit count for reads, fused-hit count alone for
      writes) of each read/write row.  Kept as ordinary small ints so
      the dispatch loop's adds never touch numpy scalars or multi-digit
      Python ints.

    The word count follows the scalar hot paths exactly: one reference
    per 4-byte word, minimum one (``1 if size <= 4 else (size+3) >> 2``).
    """
    base = trace._batch_base
    if base is not None:
        return base
    kinds = _np_column(trace.kinds, _np.int8)
    addr = _np_column(trace.a, _np.int64)
    size = _np_column(trace.b, _np.int64)
    inert = _np_column(trace.d, _np.dtype("l"))
    hits = _np_column(trace.e, _np.dtype("l"))
    memread = kinds == 0
    memrw = memread | (kinds == 1)
    nonmem = (kinds == 2) | (kinds == 5)
    words = _np.maximum((size + 3) >> 2, 1)
    cost = _np.where(memread, 1 + inert, 0)
    cost = _np.where(nonmem, addr, cost)
    l1r = _np.where(memread, words + hits, 0)
    l1r = _np.where(kinds == 5, addr, l1r)
    ccost = _np.cumsum(cost, dtype=_np.int64)
    cl1r = _np.cumsum(l1r, dtype=_np.int64)
    xorspan = addr ^ (addr + size - 1)
    mcost = _np.where(memrw, 1 + inert, 0).tolist()
    mreads = (hits + _np.where(memread, words, 0)).tolist()
    base = (memread, memrw, nonmem, addr, xorspan, ccost, cl1r,
            mcost, mreads)
    trace._batch_base = base
    return base


def trace_plan(trace, l1_shift, n_sets):
    """The :class:`BatchPlan` for ``trace`` under one L1 geometry, memoized.

    ``None`` without numpy.  The ``mem_lines`` column tags every
    single-line (under ``l1_shift``) EV_READ/EV_WRITE row with its
    primary-cache line; everything else -- line-crossing accesses, lock
    events, busy/hit rows -- carries -1 and dispatches through the
    engine's scalar branches.  The gather tier's runs are maximal
    stretches of single-line reads plus busy/hit rows (every write, lock
    event, and line-crossing read is a boundary: writes move the write
    buffer and the directory, locks observe other processors' clocks,
    line-crossing reads probe multiple sets), kept only at
    :data:`MIN_BATCH` rows or more.
    """
    if not HAVE_NUMPY:
        return None
    key = (l1_shift, n_sets)
    plans = trace._batch_plans
    plan = plans.get(key)
    if plan is not None:
        return plan
    (memread, memrw, nonmem, addr, xorspan, ccost, cl1r,
     mcost, mreads) = trace_base(trace)
    span0 = (xorspan >> l1_shift) == 0
    line = addr >> l1_shift
    mem_lines = _np.where(memrw & span0, line, _np.int64(-1)).tolist()
    single = memread & span0
    batchable = single | nonmem
    n = len(batchable)
    flags = batchable.view(_np.int8)
    edges = _np.diff(flags, prepend=_np.int8(0), append=_np.int8(0))
    starts = _np.flatnonzero(edges == 1)
    stops = _np.flatnonzero(edges == -1)
    keep = (stops - starts) >= MIN_BATCH
    lines = _np.where(single, line, NONMEM_LINE)
    sets = _np.where(single, line & (n_sets - 1), n_sets)
    plan = BatchPlan(mem_lines, mcost, mreads, sets, lines,
                     starts[keep].tolist(), stops[keep].tolist(), ccost,
                     cl1r, int(batchable.sum()), n)
    if len(plans) >= PLAN_MEMO:
        plans.pop(next(iter(plans)))
    plans[key] = plan
    return plan


# -- observability ---------------------------------------------------------------


def kernel_stats():
    """Registry view of replay-kernel activity, for ``--time`` and tests.

    ``*_runs``/``*_seconds`` per kernel; ``batched_rows`` (rows retired
    by the gather tier), ``batched_dispatches`` (gather retire
    operations), ``inline_rows`` (rows retired by the inlined
    single-line read/write paths), ``scalar_rows`` (rows the batched
    engine dispatched through its scalar branches -- line-crossing
    accesses, busy/hit rows, lock events; contended-acquire retries are
    not rows and are not counted); ``fallbacks`` by reason (runs that
    asked for a numpy kernel but ran a lower tier).

    Horizon-tier extras: ``horizon_rows`` (rows retired ahead of the
    global clock), ``horizon_regions`` (retire-ahead passes),
    ``horizon_windows`` (window cuts replayed one at a time from virtual
    clocks), ``horizon_merges`` (all-virtual merge fast-forwards, each
    collapsing a whole span of such windows into one pass),
    ``horizon_guards`` (retire passes cut short by the dynamic
    eviction guard), and the classifier's coverage
    (``plan_rows``/``plan_boundary``/``ws_lines`` over built schedules).
    """
    from repro.obs.metrics import registry

    reg = registry()
    out = {
        "horizon_runs": reg.value("interleave.kernel.horizon.runs"),
        "horizon_seconds": reg.value("interleave.kernel.horizon.seconds"),
        "batched_runs": reg.value("interleave.kernel.batched.runs"),
        "batched_seconds": reg.value("interleave.kernel.batched.seconds"),
        "scalar_runs": reg.value("interleave.kernel.scalar.runs"),
        "scalar_seconds": reg.value("interleave.kernel.scalar.seconds"),
        "batched_rows": reg.value("interleave.batch.rows"),
        "batched_dispatches": reg.value("interleave.batch.dispatches"),
        "inline_rows": reg.value("interleave.batch.inline_rows"),
        "scalar_rows": reg.value("interleave.batch.scalar_rows"),
        "horizon_rows": reg.value("interleave.horizon.rows"),
        "horizon_regions": reg.value("interleave.horizon.regions"),
        "horizon_windows": reg.value("interleave.horizon.virtual_windows"),
        "horizon_merges": reg.value("interleave.horizon.merges"),
        "horizon_guards": reg.value("interleave.horizon.guard_stops"),
        "plan_rows": reg.value("interleave.horizon.plan_rows"),
        "plan_boundary": reg.value("interleave.horizon.plan_boundary"),
        "ws_lines": reg.value("interleave.horizon.ws_lines"),
        "fallbacks": {},
    }
    prefix = "interleave.kernel.fallback."
    for name, metric in reg.items(prefix[:-1]):
        out["fallbacks"][name[len(prefix):]] = metric.value
    return out
