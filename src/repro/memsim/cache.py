"""Set-associative cache model with cold/conflict/coherence miss taxonomy.

A cache is a set of small LRU ways holding line tags.  A *line tag* is the
memory address shifted right by ``line_shift``; callers compute it so that a
cache never needs to know about byte addresses in its hot path.

Miss classification follows the paper (Figure 7):

* **cold** -- the line was never in this cache before;
* **coherence** -- the line was here, and was removed by an invalidation
  caused by another processor's write;
* **conflict** -- everything else (replacement misses, which at fixed cache
  size also include what other taxonomies call capacity misses).
"""

MISS_COLD = 0
MISS_CONFLICT = 1
MISS_COHERENCE = 2

MISS_NAMES = {MISS_COLD: "Cold", MISS_CONFLICT: "Conf", MISS_COHERENCE: "Cohe"}


class Cache:
    """One level of a processor's cache hierarchy.

    Parameters
    ----------
    size:
        Capacity in bytes.
    line_size:
        Line size in bytes (power of two).
    assoc:
        Associativity; ``1`` models a direct-mapped cache.
    name:
        Label used in error messages and debugging output.
    """

    __slots__ = ("size", "line_size", "line_shift", "assoc", "n_sets",
                 "_set_mask", "_sets", "_seen", "_invalidated", "name")

    def __init__(self, size, line_size, assoc=1, name=""):
        if size % (line_size * assoc) != 0:
            raise ValueError(
                f"{name or 'cache'}: size {size} not divisible by "
                f"line_size*assoc {line_size * assoc}"
            )
        n_sets = size // (line_size * assoc)
        if n_sets & (n_sets - 1):
            raise ValueError(f"{name or 'cache'}: number of sets {n_sets} not a power of two")
        if line_size & (line_size - 1):
            raise ValueError(f"{name or 'cache'}: line size {line_size} not a power of two")
        self.size = size
        self.line_size = line_size
        self.line_shift = line_size.bit_length() - 1
        self.assoc = assoc
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        # Each set is a list of tags ordered most-recently-used first.
        self._sets = [[] for _ in range(n_sets)]
        self._seen = set()
        self._invalidated = set()
        self.name = name

    def line_of(self, addr):
        """Return the line tag covering byte address ``addr``."""
        return addr >> self.line_shift

    # repro: hot
    def lookup(self, line):
        """Probe the cache for ``line``; update LRU and return hit/miss."""
        ways = self._sets[line & self._set_mask]
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            return True
        return False

    def contains(self, line):
        """Return whether ``line`` is resident, without touching LRU state."""
        return line in self._sets[line & self._set_mask]

    # repro: hot
    def insert(self, line):
        """Fill ``line`` into the cache; return the evicted tag, if any."""
        ways = self._sets[line & self._set_mask]
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            return None
        ways.insert(0, line)
        self._seen.add(line)
        self._invalidated.discard(line)
        if len(ways) > self.assoc:
            return ways.pop()
        return None

    def invalidate(self, line, coherence=False):
        """Remove ``line`` if present.

        When ``coherence`` is true the removal is recorded so that the next
        miss on this line classifies as a coherence miss.  Returns whether
        the line was resident.
        """
        ways = self._sets[line & self._set_mask]
        if line in ways:
            ways.remove(line)
            if coherence:
                self._invalidated.add(line)
            return True
        return False

    def classify_miss(self, line):
        """Classify a miss on ``line`` (call before :meth:`insert`)."""
        if line not in self._seen:
            return MISS_COLD
        if line in self._invalidated:
            return MISS_COHERENCE
        return MISS_CONFLICT

    def resident_lines(self):
        """Return all resident line tags (test/diagnostic helper)."""
        return [line for ways in self._sets for line in ways]

    def flush(self):
        """Empty the cache, keeping the cold-miss history."""
        for ways in self._sets:
            ways.clear()
        self._invalidated.clear()

    def clear_history(self):
        """Forget the cold/coherence history (used for fresh workloads)."""
        self._seen.clear()
        self._invalidated.clear()
