"""Execution-driven memory-system simulator for a 4-node CC-NUMA machine.

This package models the architecture of the paper (HPCA 1997, section 4.3):
per-node direct-mapped primary caches and 2-way set-associative secondary
caches, a 16-entry write buffer, directory-based invalidation coherence, a
fixed-latency interconnect, and an optional sequential prefetcher for
database data.

The simulator consumes *reference streams*: each simulated processor is a
Python generator yielding typed events (reads, writes, busy cycles and
spinlock operations).  The interleaver advances the processor with the
smallest clock, which reproduces the interleaved execution that the paper
obtained from the Mint simulation package.
"""

from repro.memsim.events import (
    EV_BUSY,
    EV_HIT,
    EV_LOCK_ACQ,
    EV_LOCK_REL,
    EV_READ,
    EV_WRITE,
    CLASS_NAMES,
    DataClass,
    METADATA_CLASSES,
    N_CLASSES,
    busy,
    hit,
    lock_acquire,
    lock_release,
    read,
    write,
)
from repro.memsim.cache import Cache, MISS_COLD, MISS_CONFLICT, MISS_COHERENCE, MISS_NAMES
from repro.memsim.writebuffer import WriteBuffer
from repro.memsim.directory import Directory
from repro.memsim.numa import MachineConfig, NumaMachine
from repro.memsim.stats import MachineStats, CpuStats
from repro.memsim.interleave import Interleaver, RunResult

__all__ = [
    "EV_BUSY",
    "EV_HIT",
    "hit",
    "EV_LOCK_ACQ",
    "EV_LOCK_REL",
    "EV_READ",
    "EV_WRITE",
    "CLASS_NAMES",
    "DataClass",
    "METADATA_CLASSES",
    "N_CLASSES",
    "busy",
    "lock_acquire",
    "lock_release",
    "read",
    "write",
    "Cache",
    "MISS_COLD",
    "MISS_CONFLICT",
    "MISS_COHERENCE",
    "MISS_NAMES",
    "WriteBuffer",
    "Directory",
    "MachineConfig",
    "NumaMachine",
    "MachineStats",
    "CpuStats",
    "Interleaver",
    "RunResult",
]
