"""The 4-node CC-NUMA machine of the paper's section 4.3.

Each node has a direct-mapped primary cache, a 2-way set-associative
secondary cache (the L1 line is half the L2 line), and a 16-entry write
buffer.  A full-map directory provides invalidation coherence; latencies
follow the paper's round-trip numbers: L2 hit 16, local memory 80, 2-hop
remote 249, 3-hop remote 351 cycles.  All contention is modeled except the
interconnect, which delivers at a fixed delay -- the paper makes the same
simplification.

An optional hardware prefetcher (section 6 of the paper) issues fetches for
the next 4 primary-cache lines on every access to database data.
"""

from dataclasses import dataclass

from repro.memsim.cache import Cache
from repro.memsim.directory import Directory
from repro.memsim.events import DataClass
from repro.memsim.stats import MachineStats
from repro.memsim.writebuffer import WriteBuffer

PAGE_SHIFT = 13  # 8-Kbyte buffer blocks / NUMA pages


def default_home(addr):
    """Round-robin 8-KB pages over 4 nodes (shared-data placement)."""
    return (addr >> PAGE_SHIFT) & 3


@dataclass
class MachineConfig:
    """Architecture parameters (defaults are the paper's *baseline*)."""

    n_nodes: int = 4
    l1_size: int = 4 * 1024
    l1_line: int = 32
    l1_assoc: int = 1
    l2_size: int = 128 * 1024
    l2_line: int = 64
    l2_assoc: int = 2
    wb_entries: int = 16
    lat_l2: int = 16        # L1 miss satisfied by the secondary cache
    lat_local: int = 80     # satisfied by local memory
    lat_2hop: int = 249     # remote, clean (2-hop transaction)
    lat_3hop: int = 351     # remote, dirty in a third node (3-hop)
    wb_retire: int = 8      # L2 write-hit occupancy in the write buffer
    # Transfer time grows with the line: extra cycles per 32-byte chunk of
    # primary line beyond the first (L2->L1) and per 64-byte chunk of
    # secondary line beyond the first (memory/remote->L2).
    transfer_l2: int = 8
    transfer_local: int = 30
    transfer_remote: int = 52
    prefetch_data: bool = False
    prefetch_degree: int = 4
    prefetch_drop_threshold: int = 120  # port backlog beyond which the
                                        # prefetcher drops the rest of a burst

    def __post_init__(self):
        if self.l1_line * 2 != self.l2_line:
            raise ValueError(
                "the paper fixes the primary line at half the secondary line: "
                f"got L1={self.l1_line} L2={self.l2_line}"
            )
        if self.l1_size % (self.l1_line * self.l1_assoc) != 0:
            raise ValueError("L1 geometry does not divide evenly")
        if self.l2_size % (self.l2_line * self.l2_assoc) != 0:
            raise ValueError("L2 geometry does not divide evenly")

    def with_lines(self, l2_line):
        """Return a copy with ``l2_line``-byte secondary lines (L1 = half)."""
        return self.replace(l1_line=l2_line // 2, l2_line=l2_line)

    def with_cache_sizes(self, l1_size, l2_size):
        """Return a copy with the given cache capacities."""
        return self.replace(l1_size=l1_size, l2_size=l2_size)

    def replace(self, **kwargs):
        """Return a copy with the given fields replaced."""
        values = {f: getattr(self, f) for f in self.__dataclass_fields__}
        values.update(kwargs)
        return MachineConfig(**values)


class NumaMachine:
    """Simulates the memory hierarchy; consumes one reference at a time.

    The machine is time-agnostic about instruction execution: callers pass
    the current cycle count ``now`` and get back the number of stall cycles
    the reference costs beyond the 1-cycle pipelined access.
    """

    def __init__(self, config=None, home_fn=None):
        self.config = config or MachineConfig()
        cfg = self.config
        self.home_fn = home_fn or default_home
        self.l1 = [Cache(cfg.l1_size, cfg.l1_line, cfg.l1_assoc, f"L1.{i}")
                   for i in range(cfg.n_nodes)]
        self.l2 = [Cache(cfg.l2_size, cfg.l2_line, cfg.l2_assoc, f"L2.{i}")
                   for i in range(cfg.n_nodes)]
        self.wb = [WriteBuffer(cfg.wb_entries) for _ in range(cfg.n_nodes)]
        self.directory = Directory(cfg.n_nodes)
        self.stats = MachineStats()
        self._l1_shift = self.l1[0].line_shift
        self._l2_shift = self.l2[0].line_shift
        self._ratio_shift = self._l2_shift - self._l1_shift
        self._pending_fill = {}
        # Hot-path aliases: read()/write() inline the cache probe and the
        # config lookups, so hit-path accesses cost one attribute chase
        # instead of several (the simulator spends most of its time there).
        self._l1_sets = [c._sets for c in self.l1]
        self._l1_mask = self.l1[0]._set_mask
        self._l1_nsets = self.l1[0].n_sets
        # Numpy tag mirror of the (direct-mapped) L1s, for the batched
        # replay kernel's vectorized hit checks.  Built lazily by
        # _ensure_l1_mirror on the first batched run -- purely scalar
        # machines never pay for its maintenance -- and kept exact at
        # every L1 content change below once it exists.
        self._l1_tags = None
        self._l2_sets = [c._sets for c in self.l2]
        self._l2_mask = self.l2[0]._set_mask
        self._wb_retire = cfg.wb_retire
        self._prefetch_data = cfg.prefetch_data
        # Per-node memory-port availability: prefetch fills occupy the port
        # and delay demand misses behind them (the "cache contention" cost
        # of section 6 of the paper).
        self._port_free = [0] * cfg.n_nodes
        # Line-size-dependent latencies: a miss on a longer line takes
        # longer to satisfy ("each miss takes longer, but there are many
        # fewer misses" -- paper section 5.2.1).
        l1_chunks = cfg.l1_line // 32 - 1
        l2_chunks = max(cfg.l2_line // 64, 1) - 1
        self.lat_l2 = cfg.lat_l2 + l1_chunks * cfg.transfer_l2
        self.lat_local = cfg.lat_local + l2_chunks * cfg.transfer_local
        self.lat_2hop = cfg.lat_2hop + l2_chunks * cfg.transfer_remote
        self.lat_3hop = cfg.lat_3hop + l2_chunks * cfg.transfer_remote

    # -- demand accesses -----------------------------------------------------

    # repro: hot
    def read(self, node, addr, size, cls, now):
        """Perform a load; return stall cycles beyond the pipelined cycle.

        A load of ``size`` bytes counts as one reference per 4-byte word
        (the paper's machines are 32-bit-word RISC processors; a tuple copy
        is a run of word loads), but the cache is probed once per line.
        """
        stats = self.stats
        shift = self._l1_shift
        first = addr >> shift
        last = (addr + size - 1) >> shift
        if first == last:
            # Hot path: the access stays within one primary line.  The L1
            # and L2 probes (and their MRU updates) are inlined from
            # Cache.lookup, and the L1 miss bookkeeping from Cache.insert
            # and classify_miss -- this path carries most of a simulation.
            stats.l1_reads += 1 if size <= 4 else (size + 3) >> 2
            ways = self._l1_sets[node][first & self._l1_mask]
            if first in ways:
                if ways[0] != first:
                    ways.remove(first)
                    ways.insert(0, first)
                pending = self._pending_fill
                if pending:
                    fill = pending.pop((node, first), None)
                    if fill is not None and fill > now:
                        # Prefetch arrived late: wait out the remainder.
                        stats.prefetch_late_cycles += fill - now
                        return fill - now
                return 0
            l1 = self.l1[node]
            stats.l1_read_misses[cls][
                0 if first not in l1._seen
                else 2 if first in l1._invalidated else 1
            ] += 1
            line2 = first >> self._ratio_shift
            stats.l2_reads += 1
            ways2 = self._l2_sets[node][line2 & self._l2_mask]
            if line2 in ways2:
                if ways2[0] != line2:
                    ways2.remove(line2)
                    ways2.insert(0, line2)
                latency = self.lat_l2
            else:
                stats.l2_read_misses[cls][
                    self.l2[node].classify_miss(line2)] += 1
                latency = self._l2_miss_fill(node, line2)
                if latency > self.lat_l2:
                    # Demand fill from beyond the L2 queues behind
                    # in-flight prefetches on this node's memory port.
                    wait = self._port_free[node] - now
                    if wait > 0:
                        latency += wait
                    self._port_free[node] = now + latency
            # L1 fill (write-through level: replacement never writes back).
            ways.insert(0, first)
            l1._seen.add(first)
            l1._invalidated.discard(first)
            if len(ways) > l1.assoc:
                ways.pop()
            mtags = self._l1_tags
            if mtags is not None:
                mtags[node][first & self._l1_mask] = first
            if self._prefetch_data and cls == DataClass.DATA:
                self._issue_prefetches(node, first, now + latency)
            return latency
        words = (size + 3) >> 2
        lines = last - first + 1
        if words > lines:
            stats.l1_reads += words - lines
        read_line = self._read_line
        stall = read_line(node, first, cls, now)
        while first < last:
            first += 1
            stall += read_line(node, first, cls, now + stall)
        return stall

    # repro: hot
    def write(self, node, addr, size, cls, now):
        """Perform a store; return stall cycles (write-buffer overflow)."""
        shift = self._l1_shift
        first = addr >> shift
        last = (addr + size - 1) >> shift
        if first == last:
            # Hot path: the store stays within one primary line.  The body
            # of _write_line is inlined here (like the read() hot path) --
            # stores are the second most frequent machine call on replay.
            stats = self.stats
            stats.l1_writes += 1 if size <= 4 else (size + 3) >> 2
            line2 = first >> self._ratio_shift
            ways = self._l1_sets[node][first & self._l1_mask]
            if first in ways and ways[0] != first:
                ways.remove(first)
                ways.insert(0, first)
            directory = self.directory
            ways2 = self._l2_sets[node][line2 & self._l2_mask]
            if line2 in ways2:
                if ways2[0] != line2:
                    ways2.remove(line2)
                    ways2.insert(0, line2)
                if directory._dirty.get(line2) == node:
                    retire = self._wb_retire
                else:
                    # Upgrade: ask the home directory, invalidate others.
                    home = self.home_fn(line2 << self._l2_shift)
                    retire = self.lat_local if home == node else self.lat_2hop
                    self._invalidate_others(node, line2)
            else:
                stats.l2_write_misses += 1
                home = self.home_fn(line2 << self._l2_shift)
                owner = directory._dirty.get(line2)
                if owner is not None and owner != node:
                    retire = self.lat_2hop if home == node else self.lat_3hop
                else:
                    retire = self.lat_local if home == node else self.lat_2hop
                self._invalidate_others(node, line2)
                # L2 fill, inlined from Cache.insert (probe above missed).
                l2 = self.l2[node]
                ways2.insert(0, line2)
                l2._seen.add(line2)
                l2._invalidated.discard(line2)
                if len(ways2) > l2.assoc:
                    self._evict_l2(node, ways2.pop())
            # Write-buffer issue (inlined from WriteBuffer.issue).
            wb = self.wb[node]
            entries = wb.entries
            while entries and entries[0] <= now:
                entries.popleft()
            stall = 0
            if len(entries) >= wb.capacity:
                oldest = entries.popleft()
                if oldest > now:
                    stall = oldest - now
                wb.stall_cycles += stall
            completion = wb._last_completion
            issue_time = now + stall
            if issue_time > completion:
                completion = issue_time
            completion += retire
            wb._last_completion = completion
            entries.append(completion)
            return stall
        words = (size + 3) >> 2
        lines = last - first + 1
        if words > lines:
            self.stats.l1_writes += words - lines
        write_line = self._write_line
        stall = write_line(node, first, cls, now)
        while first < last:
            first += 1
            stall += write_line(node, first, cls, now + stall)
        return stall

    # -- internals -----------------------------------------------------------

    # repro: hot
    def _read_line(self, node, line1, cls, now):
        stats = self.stats
        stats.l1_reads += 1
        # L1 probe inlined from Cache.lookup (multi-line accesses land here
        # once per primary line, so this path is hot under small lines).
        ways = self._l1_sets[node][line1 & self._l1_mask]
        if line1 in ways:
            if ways[0] != line1:
                ways.remove(line1)
                ways.insert(0, line1)
            pending = self._pending_fill
            if pending:
                fill = pending.pop((node, line1), None)
                if fill is not None and fill > now:
                    # Prefetch arrived late: wait out the remainder.
                    stats.prefetch_late_cycles += fill - now
                    return fill - now
            return 0
        return self._read_miss(node, line1, cls, now)

    # repro: hot
    def _read_miss(self, node, line1, cls, now):
        # Same inlining as the read() hot path (Cache.lookup/insert and
        # classify_miss): multi-line accesses miss here once per line, and
        # small-line configurations make that the dominant miss path.
        stats = self.stats
        l1 = self.l1[node]
        stats.l1_read_misses[cls][
            0 if line1 not in l1._seen
            else 2 if line1 in l1._invalidated else 1
        ] += 1
        line2 = line1 >> self._ratio_shift
        stats.l2_reads += 1
        ways2 = self._l2_sets[node][line2 & self._l2_mask]
        if line2 in ways2:
            if ways2[0] != line2:
                ways2.remove(line2)
                ways2.insert(0, line2)
            latency = self.lat_l2
        else:
            stats.l2_read_misses[cls][self.l2[node].classify_miss(line2)] += 1
            latency = self._l2_miss_fill(node, line2)
            if latency > self.lat_l2:
                # Demand fill from beyond the L2 queues behind in-flight
                # prefetches on this node's memory port.
                wait = self._port_free[node] - now
                if wait > 0:
                    latency += wait
                self._port_free[node] = now + latency
        ways = l1._sets[line1 & self._l1_mask]
        ways.insert(0, line1)
        l1._seen.add(line1)
        l1._invalidated.discard(line1)
        if len(ways) > l1.assoc:
            ways.pop()
        mtags = self._l1_tags
        if mtags is not None:
            mtags[node][line1 & self._l1_mask] = line1
        if self._prefetch_data and cls == DataClass.DATA:
            self._issue_prefetches(node, line1, now + latency)
        return latency

    def _l2_read(self, node, line2, cls, count):
        """Look up / fill ``line2`` in node's L2; return access latency."""
        stats = self.stats
        stats.l2_reads += 1
        ways = self._l2_sets[node][line2 & self._l2_mask]
        if line2 in ways:
            if ways[0] != line2:
                ways.remove(line2)
                ways.insert(0, line2)
            return self.lat_l2
        if count:
            stats.l2_read_misses[cls][self.l2[node].classify_miss(line2)] += 1
        return self._l2_miss_fill(node, line2)

    def _l2_miss_fill(self, node, line2):
        """Service an L2 read miss: directory transaction plus the fill."""
        directory = self.directory
        home = self.home_fn(line2 << self._l2_shift)
        owner = directory._dirty.get(line2)
        if owner is not None and owner != node:
            latency = self.lat_2hop if home == node else self.lat_3hop
        else:
            latency = self.lat_local if home == node else self.lat_2hop
        # Directory read fill, inlined from Directory.record_read.
        if owner is not None and owner != node:
            del directory._dirty[line2]
        holders = directory._sharers.setdefault(line2, set())
        holders.add(node)
        # L2 fill, inlined from Cache.insert: every caller probed the set
        # already, so the line is known to be absent.
        l2 = self.l2[node]
        ways2 = self._l2_sets[node][line2 & self._l2_mask]
        ways2.insert(0, line2)
        l2._seen.add(line2)
        l2._invalidated.discard(line2)
        if len(ways2) > l2.assoc:
            self._evict_l2(node, ways2.pop())
        return latency

    # repro: hot
    def _write_line(self, node, line1, cls, now):
        stats = self.stats
        stats.l1_writes += 1
        line2 = line1 >> self._ratio_shift
        # Write-through L1: update MRU if present, no allocation on write
        # miss (probe inlined from Cache.lookup).
        ways = self._l1_sets[node][line1 & self._l1_mask]
        if line1 in ways and ways[0] != line1:
            ways.remove(line1)
            ways.insert(0, line1)
        directory = self.directory
        ways2 = self._l2_sets[node][line2 & self._l2_mask]
        if line2 in ways2:
            if ways2[0] != line2:
                ways2.remove(line2)
                ways2.insert(0, line2)
            if directory._dirty.get(line2) == node:
                retire = self._wb_retire
            else:
                # Upgrade: ask the home directory, invalidate other copies.
                home = self.home_fn(line2 << self._l2_shift)
                retire = self.lat_local if home == node else self.lat_2hop
                self._invalidate_others(node, line2)
        else:
            stats.l2_write_misses += 1
            home = self.home_fn(line2 << self._l2_shift)
            owner = directory._dirty.get(line2)
            if owner is not None and owner != node:
                retire = self.lat_2hop if home == node else self.lat_3hop
            else:
                retire = self.lat_local if home == node else self.lat_2hop
            self._invalidate_others(node, line2)
            # L2 fill, inlined from Cache.insert (probe above missed).
            l2 = self.l2[node]
            ways2.insert(0, line2)
            l2._seen.add(line2)
            l2._invalidated.discard(line2)
            if len(ways2) > l2.assoc:
                self._evict_l2(node, ways2.pop())
        # Write-buffer issue, inlined from WriteBuffer.issue: drain retired
        # stores, stall if full, retire serially after the previous store.
        wb = self.wb[node]
        entries = wb.entries
        while entries and entries[0] <= now:
            entries.popleft()
        stall = 0
        if len(entries) >= wb.capacity:
            # Processor waits for the oldest entry to retire.
            oldest = entries.popleft()
            if oldest > now:
                stall = oldest - now
            wb.stall_cycles += stall
        completion = wb._last_completion
        issue_time = now + stall
        if issue_time > completion:
            completion = issue_time
        completion += retire
        wb._last_completion = completion
        entries.append(completion)
        return stall

    def _invalidate_others(self, node, line2):
        # Directory write, inlined from Directory.record_write, with a fast
        # path for the common no-other-sharer case (no victims to visit).
        directory = self.directory
        holders = directory._sharers.get(line2)
        if holders is None:
            directory._sharers[line2] = {node}
            directory._dirty[line2] = node
            return
        victims = [n for n in holders if n != node]
        holders.clear()
        holders.add(node)
        directory._dirty[line2] = node
        if not victims:
            return
        ratio = 1 << self._ratio_shift
        base = line2 << self._ratio_shift
        mirror = self._l1_tags
        mask = self._l1_mask
        for victim in victims:
            self.l2[victim].invalidate(line2, coherence=True)
            vl1 = self.l1[victim]
            for i in range(ratio):
                # Clear the mirror slot only when the line was actually
                # resident: the set may hold a different line.
                if vl1.invalidate(base + i, coherence=True) \
                        and mirror is not None:
                    mirror[victim][(base + i) & mask] = -1

    def _evict_l2(self, node, line2):
        """Handle an L2 replacement: keep L1 inclusive, tell the directory."""
        # Inlined from Directory.record_eviction.
        directory = self.directory
        holders = directory._sharers.get(line2)
        if holders is not None:
            holders.discard(node)
            if not holders:
                del directory._sharers[line2]
        if directory._dirty.get(line2) == node:
            del directory._dirty[line2]
        base = line2 << self._ratio_shift
        sets = self._l1_sets[node]
        mask = self._l1_mask
        mirror = self._l1_tags
        # Replacement (non-coherence) invalidation, inlined from
        # Cache.invalidate: drop the line, keep the miss history.
        for line1 in range(base, base + (1 << self._ratio_shift)):
            ways = sets[line1 & mask]
            if line1 in ways:
                ways.remove(line1)
                if mirror is not None:
                    mirror[node][line1 & mask] = -1

    def _l1_fill(self, node, line1):
        # L1 is write-through, so replacement never writes back.
        self.l1[node].insert(line1)
        mirror = self._l1_tags
        if mirror is not None:
            mirror[node][line1 & self._l1_mask] = line1

    def _ensure_l1_mirror(self):
        """Build or resync the batched kernel's L1 tag mirror.

        Returns the per-node numpy tag arrays (see
        :func:`repro.memsim.batch.make_l1_mirror`), or ``None`` when the
        machine cannot mirror (no numpy, or a set-associative L1, whose
        hits reorder LRU state).  Built lazily on first use so purely
        scalar runs never pay for its maintenance, and resynced from the
        authoritative ``_l1_sets`` on every call: the batched engine
        calls this once per run, and the incremental updates at the
        fill/invalidate sites keep the mirror exact within the run.
        """
        from repro.memsim.batch import make_l1_mirror

        mirror = self._l1_tags
        if mirror is None:
            if self.config.l1_assoc != 1:
                return None
            mirror = make_l1_mirror(self.config.n_nodes, self._l1_nsets)
            if mirror is None:
                return None
            self._l1_tags = mirror
        n_sets = self._l1_nsets
        for node, sets in enumerate(self._l1_sets):
            tags = mirror[node]
            tags[:n_sets] = -1
            for idx, ways in enumerate(sets):
                if ways:
                    tags[idx] = ways[0]
        return mirror

    # -- prefetching -----------------------------------------------------------

    def _issue_prefetches(self, node, line1, now):
        """Fetch the next N primary lines of database data (section 6)."""
        l1 = self.l1[node]
        pending = self._pending_fill
        for i in range(1, self.config.prefetch_degree + 1):
            pline = line1 + i
            if l1.contains(pline) or (node, pline) in pending:
                continue
            if self._port_free[node] > now + self.config.prefetch_drop_threshold:
                # The memory port is backed up: the prefetcher drops the
                # rest of the burst rather than queueing it (so effective
                # lookahead shrinks when misses are frequent -- the reason
                # prefetching only removes part of the Data stall time).
                break
            self.stats.prefetches_issued += 1
            line2 = pline >> self._ratio_shift
            latency = self._l2_read(node, line2, DataClass.DATA, count=False)
            self._l1_fill(node, pline)
            if latency > self.lat_l2:
                # Unpipelined fills: each occupies the port for its full
                # latency, so a burst takes about a tuple's worth of
                # processing time to drain.
                start = max(now, self._port_free[node])
                fill = start + latency
                # Pipelined transfers free the port at half the fill time.
                self._port_free[node] = start + latency // 2
            else:
                fill = now + latency
            pending[(node, pline)] = fill

    def is_pristine(self):
        """Whether the machine has never been touched (or was rebuilt).

        True iff the directory holds no sharer sets and no dirty owners
        -- which, by the registration and inclusion invariants
        (:meth:`check_invariants`), implies every cache is empty.  The
        horizon kernel requires this: its sharing classifier only covers
        lines the current trace set touches, so residual directory state
        from an earlier run could change a retired row's latency or a
        neighbour's miss path.  Per-node residue (write-buffer timing,
        port availability, miss history) is deterministic per CPU and
        does not matter.  O(1): two dict emptiness checks.
        """
        directory = self.directory
        return not directory._sharers and not directory._dirty

    # -- sanitizer ---------------------------------------------------------------

    def check_invariants(self):
        """Read-only sweep of the hierarchy's structural invariants.

        Raises :class:`~repro.memsim.sanitize.SanitizerError` on the first
        violation; called from the replay engines at stream boundaries
        when ``REPRO_SANITIZE=1``.  Checks, per node: L1 contents are a
        subset of L2 contents (inclusion, maintained by :meth:`_evict_l2`),
        every L2-resident line is registered as a sharer at the directory,
        and the write buffer's completion times are FIFO (nondecreasing).
        Directory-side: a dirty line has exactly its owner as sharer.
        """
        from repro.memsim.sanitize import SanitizerError

        shift = self._ratio_shift
        sharers = self.directory._sharers
        for node in range(self.config.n_nodes):
            l2_resident = set()
            for ways2 in self._l2_sets[node]:
                l2_resident.update(ways2)
            for ways in self._l1_sets[node]:
                for line1 in ways:
                    if (line1 >> shift) not in l2_resident:
                        raise SanitizerError(
                            f"inclusion violated: node {node} holds L1 line "
                            f"{line1:#x} whose L2 line {line1 >> shift:#x} "
                            "is not resident")
            for line2 in sorted(l2_resident):
                if node not in sharers.get(line2, ()):
                    raise SanitizerError(
                        f"directory lost node {node} for resident L2 line "
                        f"{line2:#x}: sharers={sorted(sharers.get(line2, ()))}")
            prev = None
            for completion in self.wb[node].entries:
                if prev is not None and completion < prev:
                    raise SanitizerError(
                        f"write buffer of node {node} is out of FIFO order: "
                        f"{completion} after {prev}")
                prev = completion
        for line2, owner in self.directory._dirty.items():
            holders = sharers.get(line2, set())
            if holders != {owner}:
                raise SanitizerError(
                    f"dirty line {line2:#x} owned by node {owner} has "
                    f"sharers {sorted(holders)} (must be exactly the owner)")
        mirror = self._l1_tags
        if mirror is not None:
            for node in range(self.config.n_nodes):
                tags = mirror[node]
                for idx, ways in enumerate(self._l1_sets[node]):
                    expect = ways[0] if ways else -1
                    if tags[idx] != expect:
                        raise SanitizerError(
                            f"L1 tag mirror stale at node {node} set {idx}: "
                            f"mirror holds {int(tags[idx])}, cache holds "
                            f"{expect}")

    # -- workload-phase control -------------------------------------------------

    def reset_stats(self):
        """Zero counters but keep cache and directory contents (warm start)."""
        self.stats.reset()
        self._pending_fill.clear()
        for wb in self.wb:
            wb.reset()

    def drain_time(self, node, now):
        """Time at which node's write buffer empties (for final accounting)."""
        return self.wb[node].drain_time(now)
