"""Global-clock interleaver: the Mint-equivalent execution driver.

Each simulated processor is a generator of events (see
:mod:`repro.memsim.events`).  The interleaver always advances the processor
with the smallest clock, so shared-memory interactions (coherence,
spinlocks) happen in a consistent global time order, as they would under an
execution-driven simulator.

Spinlocks are modeled as test-and-test-and-set: a waiting processor spins
on its cached copy of the lock word, re-reading it every ``spin_interval``
cycles; the release store invalidates the waiters' copies, so lock handoff
produces exactly the coherence misses on lock words that the paper observes
(the ``LockSLock`` bars of Figure 7).  All cycles spent acquiring,
spinning on, or releasing metalocks are accounted as *MSync* time.
"""

from repro.memsim.stats import CpuStats, merge_cpu_stats

#: Internal marker meaning "this stream raised StopIteration"; it can sit in
#: a ``pending`` slot when the busy-merge look-ahead hits the end of a stream.
_EXHAUSTED = object()


class LockProtocolError(RuntimeError):
    """A stream acquired or released a spinlock it must not."""


class RunResult:
    """Outcome of one interleaved multi-processor run."""

    def __init__(self, machine, cpu_stats):
        self.machine = machine
        self.cpu_stats = cpu_stats
        self.total = merge_cpu_stats(cpu_stats)

    @property
    def exec_time(self):
        """Wall-clock cycles: the last processor's finish time."""
        return max(s.finish_time for s in self.cpu_stats)

    def breakdown(self):
        """Return the Figure 6-(a) breakdown as fractions of total cycles."""
        t = self.total
        denom = t.total or 1
        return {"Busy": t.busy / denom, "MSync": t.msync / denom, "Mem": t.mem / denom}

    def mem_breakdown(self):
        """Return the Figure 6-(b) decomposition of memory stall time."""
        groups = self.total.mem_grouped()
        denom = sum(groups.values()) or 1
        return {k: v / denom for k, v in groups.items()}

    def time_components(self):
        """Absolute cycles: Busy, MSync, SMem, PMem (Figures 9 and 11)."""
        t = self.total
        return {"Busy": t.busy, "MSync": t.msync, "SMem": t.smem, "PMem": t.pmem}


class Interleaver:
    """Drives N event streams through one :class:`NumaMachine`."""

    def __init__(self, machine, spin_interval=30):
        self.machine = machine
        self.spin_interval = spin_interval

    def run(self, streams, reset_stats=False):
        """Interleave ``streams`` (one per processor) to completion.

        ``streams`` may be shorter than the machine's node count; stream *i*
        runs on node *i*.  When ``reset_stats`` is true, machine counters are
        zeroed first while cache contents are kept (warm-start experiments).
        """
        machine = self.machine
        if len(streams) > machine.config.n_nodes:
            raise ValueError(
                f"{len(streams)} streams but only {machine.config.n_nodes} nodes"
            )
        if reset_stats:
            machine.reset_stats()

        n = len(streams)
        clocks = [0] * n
        cpu_stats = [CpuStats() for _ in range(n)]
        pending = [None] * n
        alive = list(range(n))
        lock_holder = {}
        spin_interval = self.spin_interval
        mread = machine.read
        mwrite = machine.write
        mstats = machine.stats
        drain_time = machine.drain_time
        exhausted = _EXHAUSTED
        INF = float("inf")

        while alive:
            # Pick the earliest processor (``alive`` stays sorted, so ties
            # resolve to the lowest index exactly as ``min`` does) and the
            # earliest *other* clock.  While this processor stays strictly
            # below that limit it remains the unique argmin, so its events
            # dispatch in a tight inner loop with no rescan per event.
            k = len(alive)
            if k == 1:
                cpu = alive[0]
                limit = INF
            elif k == 2:
                c0, c1 = alive
                if clocks[c0] <= clocks[c1]:
                    cpu, limit = c0, clocks[c1]
                else:
                    cpu, limit = c1, clocks[c0]
            else:
                # One pass for both the argmin and the runner-up clock
                # (ties keep the earlier index, matching ``min``).
                ait = iter(alive)
                cpu = next(ait)
                best = clocks[cpu]
                limit = INF
                for i in ait:
                    ci = clocks[i]
                    if ci < best:
                        cpu, limit, best = i, best, ci
                    elif ci < limit:
                        limit = ci

            next_ev = streams[cpu].__next__
            stats = cpu_stats[cpu]
            mem_by_class = stats.mem_by_class
            now = clocks[cpu]

            while True:
                ev = pending[cpu]
                if ev is None:
                    try:
                        ev = next_ev()
                    except StopIteration:
                        ev = exhausted
                else:
                    pending[cpu] = None
                if ev is exhausted:
                    alive.remove(cpu)
                    now = drain_time(cpu, now)
                    clocks[cpu] = now
                    stats.finish_time = now
                    break

                kind = ev[0]
                stats.events += 1

                if kind == 0:  # EV_READ
                    stall = mread(cpu, ev[1], ev[2], ev[3], now)
                    mem_by_class[ev[3]] += stall
                    if len(ev) == 4:
                        stats.busy += 1
                        now += 1 + stall
                    else:
                        # Fused replay row: the reference plus its trailing
                        # busy/hit run ((cycles, hit count) in ev[4:6]).
                        inert = ev[4]
                        stats.busy += 1 + inert
                        now += 1 + stall + inert
                        if ev[5]:
                            mstats.l1_reads += ev[5]
                elif kind == 1:  # EV_WRITE
                    stall = mwrite(cpu, ev[1], ev[2], ev[3], now)
                    mem_by_class[ev[3]] += stall
                    if len(ev) == 4:
                        stats.busy += 1
                        now += 1 + stall
                    else:
                        inert = ev[4]
                        stats.busy += 1 + inert
                        now += 1 + stall + inert
                        if ev[5]:
                            mstats.l1_reads += ev[5]
                elif kind == 2:  # EV_BUSY
                    # Batched merge: absorb the whole run of busy events in
                    # one dispatch (they never touch the machine), parking
                    # the first non-busy event -- or the end-of-stream
                    # marker -- in the pending slot.
                    cycles = ev[1]
                    while True:
                        try:
                            nxt = next_ev()
                        except StopIteration:
                            pending[cpu] = exhausted
                            break
                        if nxt[0] == 2:
                            cycles += nxt[1]
                            stats.events += 1
                        else:
                            pending[cpu] = nxt
                            break
                    stats.busy += cycles
                    now += cycles
                elif kind == 5:  # EV_HIT: always-hit stack/static references
                    count = ev[1]
                    stats.busy += count
                    mstats.l1_reads += count
                    now += count
                elif kind == 3:  # EV_LOCK_ACQ
                    lock_id, addr, cls = ev[1], ev[2], ev[3]
                    holder = lock_holder.get(lock_id)
                    if holder == cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} re-acquired spinlock {lock_id!r}"
                        )
                    if holder is None:
                        # Test-and-set: read-modify-write on the lock word.
                        cost = 2
                        cost += mread(cpu, addr, 4, cls, now)
                        cost += mwrite(cpu, addr, 4, cls, now + cost)
                        stats.msync += cost
                        now += cost
                        lock_holder[lock_id] = cpu
                    else:
                        # Spin on the cached copy and retry later.  The new
                        # clock is never below the holder's, so the retry
                        # always leaves the inner loop and rescans.
                        wait = spin_interval
                        holder_clock = clocks[holder]
                        if holder_clock > now + wait:
                            wait = holder_clock - now
                        wait += mread(cpu, addr, 4, cls, now)
                        stats.msync += wait
                        now += wait
                        pending[cpu] = ev
                elif kind == 4:  # EV_LOCK_REL
                    lock_id, addr, cls = ev[1], ev[2], ev[3]
                    if lock_holder.get(lock_id) != cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} released spinlock {lock_id!r} "
                            "it does not hold"
                        )
                    del lock_holder[lock_id]
                    cost = 1 + mwrite(cpu, addr, 4, cls, now)
                    stats.msync += cost
                    now += cost
                else:
                    raise ValueError(f"unknown event kind {kind!r}")

                if now >= limit:
                    clocks[cpu] = now
                    break

        return RunResult(machine, cpu_stats)
