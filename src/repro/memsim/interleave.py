"""Global-clock interleaver: the Mint-equivalent execution driver.

Each simulated processor is a generator of events (see
:mod:`repro.memsim.events`).  The interleaver always advances the processor
with the smallest clock, so shared-memory interactions (coherence,
spinlocks) happen in a consistent global time order, as they would under an
execution-driven simulator.

Spinlocks are modeled as test-and-test-and-set: a waiting processor spins
on its cached copy of the lock word, re-reading it every ``spin_interval``
cycles; the release store invalidates the waiters' copies, so lock handoff
produces exactly the coherence misses on lock words that the paper observes
(the ``LockSLock`` bars of Figure 7).  All cycles spent acquiring,
spinning on, or releasing metalocks are accounted as *MSync* time.
"""

from bisect import bisect_left
from time import perf_counter

from repro.memsim.batch import (
    MIN_RESUME as _MIN_RESUME,
    machine_batch_reason as _batch_reason,
    resolve_kernel as _resolve_kernel,
)
from repro.memsim.horizon import (
    HORIZON_MIN as _HORIZON_MIN,
    horizon_schedule as _horizon_schedule,
)
from repro.memsim.sanitize import (
    ENABLED as _sanitize,
    check_monotonic as _check_monotonic,
)
from repro.memsim.stats import CpuStats, merge_cpu_stats
from repro.obs import enabled as _obs_enabled
from repro.obs.metrics import registry as _registry

#: Internal marker meaning "this stream raised StopIteration"; it can sit in
#: a ``pending`` slot when the busy-merge look-ahead hits the end of a stream.
_EXHAUSTED = object()


def _note_run(mode, cpu_stats, elapsed):
    """Record one interleaved run's event volume and dispatch rate.

    Called only when the observability layer is on (``repro.obs.enable``):
    the dispatch loops themselves are never instrumented -- one clock read
    at run start and one summary here keep the hot path untouched.
    """
    reg = _registry()
    events = sum(s.events for s in cpu_stats)
    reg.counter(f"interleave.{mode}.runs").inc()
    reg.counter(f"interleave.{mode}.events").inc(events)
    if elapsed > 0:
        reg.gauge(f"interleave.{mode}.events_per_s").set(
            round(events / elapsed, 1))


class LockProtocolError(RuntimeError):
    """A stream acquired or released a spinlock it must not."""


class RunResult:
    """Outcome of one interleaved multi-processor run."""

    def __init__(self, machine, cpu_stats):
        self.machine = machine
        self.cpu_stats = cpu_stats
        self.total = merge_cpu_stats(cpu_stats)

    @property
    def exec_time(self):
        """Wall-clock cycles: the last processor's finish time."""
        return max(s.finish_time for s in self.cpu_stats)

    def breakdown(self):
        """Return the Figure 6-(a) breakdown as fractions of total cycles."""
        t = self.total
        denom = t.total or 1
        return {"Busy": t.busy / denom, "MSync": t.msync / denom, "Mem": t.mem / denom}

    def mem_breakdown(self):
        """Return the Figure 6-(b) decomposition of memory stall time."""
        groups = self.total.mem_grouped()
        denom = sum(groups.values()) or 1
        return {k: v / denom for k, v in groups.items()}

    def time_components(self):
        """Absolute cycles: Busy, MSync, SMem, PMem (Figures 9 and 11)."""
        t = self.total
        return {"Busy": t.busy, "MSync": t.msync, "SMem": t.smem, "PMem": t.pmem}


class Interleaver:
    """Drives N event streams through one :class:`NumaMachine`."""

    def __init__(self, machine, spin_interval=30):
        self.machine = machine
        self.spin_interval = spin_interval

    def run(self, streams, reset_stats=False):
        """Interleave ``streams`` (one per processor) to completion.

        ``streams`` may be shorter than the machine's node count; stream *i*
        runs on node *i*.  When ``reset_stats`` is true, machine counters are
        zeroed first while cache contents are kept (warm-start experiments).
        """
        machine = self.machine
        if len(streams) > machine.config.n_nodes:
            raise ValueError(
                f"{len(streams)} streams but only {machine.config.n_nodes} nodes"
            )
        if reset_stats:
            machine.reset_stats()
        t0 = perf_counter() if _obs_enabled() else None

        n = len(streams)
        clocks = [0] * n
        cpu_stats = [CpuStats() for _ in range(n)]
        pending = [None] * n
        alive = list(range(n))
        lock_holder = {}
        spin_interval = self.spin_interval
        mread = machine.read
        mwrite = machine.write
        mstats = machine.stats
        drain_time = machine.drain_time
        exhausted = _EXHAUSTED
        # Int sentinel (not float inf): every per-event "now >= limit"
        # check stays an int-int comparison.
        INF = 1 << 62

        while alive:
            # Pick the earliest processor (``alive`` stays sorted, so ties
            # resolve to the lowest index exactly as ``min`` does) and the
            # earliest *other* clock.  While this processor stays strictly
            # below that limit it remains the unique argmin, so its events
            # dispatch in a tight inner loop with no rescan per event.
            k = len(alive)
            if k == 1:
                cpu = alive[0]
                limit = INF
            elif k == 2:
                c0, c1 = alive
                if clocks[c0] <= clocks[c1]:
                    cpu, limit = c0, clocks[c1]
                else:
                    cpu, limit = c1, clocks[c0]
            else:
                # One pass for both the argmin and the runner-up clock
                # (ties keep the earlier index, matching ``min``).
                ait = iter(alive)
                cpu = next(ait)
                best = clocks[cpu]
                limit = INF
                for i in ait:
                    ci = clocks[i]
                    if ci < best:
                        cpu, limit, best = i, best, ci
                    elif ci < limit:
                        limit = ci

            next_ev = streams[cpu].__next__
            stats = cpu_stats[cpu]
            mem_by_class = stats.mem_by_class
            now = clocks[cpu]

            while True:
                ev = pending[cpu]
                if ev is None:
                    try:
                        ev = next_ev()
                    except StopIteration:
                        ev = exhausted
                else:
                    pending[cpu] = None
                if ev is exhausted:
                    alive.remove(cpu)
                    now = drain_time(cpu, now)
                    clocks[cpu] = now
                    stats.finish_time = now
                    if _sanitize:
                        machine.check_invariants()
                    break

                kind = ev[0]
                stats.events += 1

                if kind == 0:  # EV_READ
                    stall = mread(cpu, ev[1], ev[2], ev[3], now)
                    mem_by_class[ev[3]] += stall
                    if len(ev) == 4:
                        stats.busy += 1
                        now += 1 + stall
                    else:
                        # Fused replay row: the reference plus its trailing
                        # busy/hit run ((cycles, hit count) in ev[4:6]).
                        inert = ev[4]
                        stats.busy += 1 + inert
                        now += 1 + stall + inert
                        if ev[5]:
                            mstats.l1_reads += ev[5]
                elif kind == 1:  # EV_WRITE
                    stall = mwrite(cpu, ev[1], ev[2], ev[3], now)
                    mem_by_class[ev[3]] += stall
                    if len(ev) == 4:
                        stats.busy += 1
                        now += 1 + stall
                    else:
                        inert = ev[4]
                        stats.busy += 1 + inert
                        now += 1 + stall + inert
                        if ev[5]:
                            mstats.l1_reads += ev[5]
                elif kind == 2:  # EV_BUSY
                    # Batched merge: absorb the whole run of busy events in
                    # one dispatch (they never touch the machine), parking
                    # the first non-busy event -- or the end-of-stream
                    # marker -- in the pending slot.
                    cycles = ev[1]
                    while True:
                        try:
                            nxt = next_ev()
                        except StopIteration:
                            pending[cpu] = exhausted
                            break
                        if nxt[0] == 2:
                            cycles += nxt[1]
                            stats.events += 1
                        else:
                            pending[cpu] = nxt
                            break
                    stats.busy += cycles
                    now += cycles
                elif kind == 5:  # EV_HIT: always-hit stack/static references
                    count = ev[1]
                    stats.busy += count
                    mstats.l1_reads += count
                    now += count
                elif kind == 3:  # EV_LOCK_ACQ
                    lock_id, addr, cls = ev[1], ev[2], ev[3]
                    holder = lock_holder.get(lock_id)
                    if holder == cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} re-acquired spinlock {lock_id!r}"
                        )
                    if holder is None:
                        # Test-and-set: read-modify-write on the lock word.
                        cost = 2
                        cost += mread(cpu, addr, 4, cls, now)
                        cost += mwrite(cpu, addr, 4, cls, now + cost)
                        stats.msync += cost
                        now += cost
                        lock_holder[lock_id] = cpu
                    else:
                        # Spin on the cached copy and retry later.  The new
                        # clock is never below the holder's, so the retry
                        # always leaves the inner loop and rescans.
                        wait = spin_interval
                        holder_clock = clocks[holder]
                        if holder_clock > now + wait:
                            wait = holder_clock - now
                        wait += mread(cpu, addr, 4, cls, now)
                        stats.msync += wait
                        now += wait
                        pending[cpu] = ev
                elif kind == 4:  # EV_LOCK_REL
                    lock_id, addr, cls = ev[1], ev[2], ev[3]
                    if lock_holder.get(lock_id) != cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} released spinlock {lock_id!r} "
                            "it does not hold"
                        )
                    del lock_holder[lock_id]
                    cost = 1 + mwrite(cpu, addr, 4, cls, now)
                    stats.msync += cost
                    now += cost
                else:
                    raise ValueError(f"unknown event kind {kind!r}")

                if now >= limit:
                    clocks[cpu] = now
                    break

        if t0 is not None:
            _note_run("run", cpu_stats, perf_counter() - t0)
        return RunResult(machine, cpu_stats)

    def run_traces(self, traces, sink=None, reset_stats=False, kernel=None):
        """Replay recorded traces array-directly: no generators, no tuples.

        ``traces`` holds one :class:`~repro.core.tracecache.QueryTrace` per
        processor (trace *i* runs on node *i*).  Instead of resuming a
        ``replay()`` generator and unpacking an event tuple per step, each
        processor keeps an index cursor into its trace's columnar arrays
        and events dispatch straight from the columns -- the replay
        equivalent of :meth:`run`, and bit-identical to it on replay
        streams: same cycles, same machine counters, same per-CPU
        accounting (``tests/test_tracecache.py`` asserts this for all 17
        queries).  A contended lock acquire retries by *not* advancing the
        cursor, mirroring the ``pending``-slot redispatch of :meth:`run`.

        ``kernel`` picks the dispatch engine: ``"scalar"`` (the pure-Python
        reference loop), ``"batched"`` (plan-driven inlined dispatch plus
        vectorized retirement of non-interacting runs; see
        :mod:`repro.memsim.batch`), ``"horizon"`` (the batched tiers plus
        the sharing-aware scheduler of :mod:`repro.memsim.horizon`, which
        retires classified-private regions *across* global-clock window
        cuts and replays the cuts from virtual clocks), or
        ``None``/``"auto"`` to follow ``RunConfig.kernel`` /
        ``REPRO_KERNEL`` and default to horizon when numpy is available.
        A request the machine cannot serve falls back down the tier chain
        -- horizon needs a pristine machine (its classifier only covers
        lines the current trace set touches) and degrades to batched on a
        warm one; prefetching machines and numpy-less processes degrade
        to scalar -- counting the reason under
        ``interleave.kernel.fallback.*``.  All engines are bit-identical
        by construction and by test.

        When ``sink`` is given, ``sink[i]`` is set to trace *i*'s recorded
        result rows as its stream completes, like ``replay(sink=...)``.
        """
        kernel = _resolve_kernel(kernel)
        if kernel == "horizon":
            reason = _batch_reason(self.machine)
            if reason is None and not self.machine.is_pristine():
                reason = "warm_machine"
            if reason is None:
                return self._run_traces_horizon(traces, sink, reset_stats)
            _registry().counter("interleave.kernel.fallback." + reason).inc()
            kernel = "batched" if reason == "warm_machine" else "scalar"
        if kernel == "batched":
            reason = _batch_reason(self.machine)
            if reason is None:
                return self._run_traces_batched(traces, sink, reset_stats)
            _registry().counter("interleave.kernel.fallback." + reason).inc()
        return self._run_traces_scalar(traces, sink, reset_stats)

    def _run_traces_scalar(self, traces, sink, reset_stats):
        """The scalar ``run_traces`` engine: one dispatch per trace row.

        This is the reference oracle the batched kernel is checked
        against; its dispatch semantics define bit-identity.
        """
        machine = self.machine
        if len(traces) > machine.config.n_nodes:
            raise ValueError(
                f"{len(traces)} traces but only {machine.config.n_nodes} nodes"
            )
        if reset_stats:
            machine.reset_stats()
        t0 = perf_counter()

        n = len(traces)
        clocks = [0] * n
        cpu_stats = [CpuStats() for _ in range(n)]
        cursors = [0] * n
        ends = [len(t) for t in traces]
        # Plain-list column views (memoized on each trace): lists index
        # noticeably faster than ``array`` objects because they skip the
        # per-access int boxing, and a sweep replays the same trace dozens
        # of times, so the conversion is paid once per trace, not per run.
        columns = [t.columns() for t in traces]
        kinds_col = [c[0] for c in columns]
        a_col = [c[1] for c in columns]
        b_col = [c[2] for c in columns]
        c_col = [c[3] for c in columns]
        d_col = [c[4] for c in columns]
        e_col = [c[5] for c in columns]
        lock_tables = [t.lock_ids for t in traces]
        alive = list(range(n))
        lock_holder = {}
        spin_interval = self.spin_interval
        mread = machine.read
        mwrite = machine.write
        mstats = machine.stats
        drain_time = machine.drain_time
        # Fused L1 read-hit fast path: a single-line load that hits the
        # primary cache touches nothing but the L1 set and the read
        # counter, so the dispatch loop probes it inline and only calls
        # machine.read for misses and line-crossing accesses.  Disabled
        # when prefetching is on -- then even a hit must check the
        # pending-fill table, which stays machine.read's job.
        l1_shift = machine._l1_shift
        l1_mask = machine._l1_mask
        l1_sets = machine._l1_sets
        fuse_hits = not machine._prefetch_data
        # Int sentinel (not float inf): every per-event "now >= limit"
        # check stays an int-int comparison.
        INF = 1 << 62

        # repro: hot -- the replay dispatch loop; see rules_hot.py.
        while alive:
            # Identical argmin/limit selection to :meth:`run`: the chosen
            # processor dispatches in a tight loop while it stays strictly
            # the earliest clock.
            k = len(alive)
            if k == 1:
                cpu = alive[0]
                limit = INF
            elif k == 2:
                c0, c1 = alive
                if clocks[c0] <= clocks[c1]:
                    cpu, limit = c0, clocks[c1]
                else:
                    cpu, limit = c1, clocks[c0]
            else:
                ait = iter(alive)
                cpu = next(ait)
                best = clocks[cpu]
                limit = INF
                for i in ait:
                    ci = clocks[i]
                    if ci < best:
                        cpu, limit, best = i, best, ci
                    elif ci < limit:
                        limit = ci

            tk = kinds_col[cpu]
            ta = a_col[cpu]
            tb = b_col[cpu]
            tc = c_col[cpu]
            td = d_col[cpu]
            te = e_col[cpu]
            lock_ids = lock_tables[cpu]
            cpu_l1 = l1_sets[cpu]
            pos = cursors[cpu]
            end = ends[cpu]
            stats = cpu_stats[cpu]
            mem_by_class = stats.mem_by_class
            now = clocks[cpu]
            # Stats deltas accumulate in locals and flush when the
            # dispatch run ends; nothing inside the run reads them.
            # Dispatched events are the cursor advance plus lock retries
            # (the only dispatch that leaves the cursor in place), so the
            # loop body never counts them one by one.
            start_pos = pos
            retry_acc = busy_acc = msync_acc = l1_acc = 0

            while True:
                if pos >= end:
                    alive.remove(cpu)
                    now = drain_time(cpu, now)
                    clocks[cpu] = now
                    stats.finish_time = now
                    if sink is not None:
                        sink[cpu] = traces[cpu].rows
                    # Cold by the HOT lint's sanitizer-gate exemption: the
                    # sweep runs once per finished stream, not per event.
                    if _sanitize:
                        machine.check_invariants()
                    break

                kind = tk[pos]

                if kind == 0:  # EV_READ (+ fused trailing busy/hit run)
                    addr = ta[pos]
                    size = tb[pos]
                    stall = -1
                    if fuse_hits:
                        first = addr >> l1_shift
                        if first == (addr + size - 1) >> l1_shift:
                            ways = cpu_l1[first & l1_mask]
                            if first in ways:
                                if ways[0] != first:
                                    ways.remove(first)
                                    ways.insert(0, first)
                                l1_acc += 1 if size <= 4 else (size + 3) >> 2
                                stall = 0
                    if stall < 0:
                        stall = mread(cpu, addr, size, tc[pos], now)
                        if stall:
                            mem_by_class[tc[pos]] += stall
                    inert = td[pos]
                    busy_acc += 1 + inert
                    now += 1 + stall + inert
                    l1_acc += te[pos]
                    pos += 1
                elif kind == 1:  # EV_WRITE (+ fused trailing busy/hit run)
                    cls = tc[pos]
                    stall = mwrite(cpu, ta[pos], tb[pos], cls, now)
                    inert = td[pos]
                    busy_acc += 1 + inert
                    if stall:
                        mem_by_class[cls] += stall
                        now += 1 + stall + inert
                    else:
                        now += 1 + inert
                    l1_acc += te[pos]
                    pos += 1
                elif kind == 2:  # EV_BUSY (already coalesced at record time)
                    cycles = ta[pos]
                    busy_acc += cycles
                    now += cycles
                    pos += 1
                elif kind == 5:  # EV_HIT: always-hit stack/static references
                    count = ta[pos]
                    busy_acc += count
                    l1_acc += count
                    now += count
                    pos += 1
                elif kind == 3:  # EV_LOCK_ACQ
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    holder = lock_holder.get(lock_id)
                    if holder == cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} re-acquired spinlock {lock_id!r}"
                        )
                    if holder is None:
                        cost = 2
                        cost += mread(cpu, addr, 4, cls, now)
                        cost += mwrite(cpu, addr, 4, cls, now + cost)
                        msync_acc += cost
                        now += cost
                        lock_holder[lock_id] = cpu
                        pos += 1
                    else:
                        # Spin and retry: the cursor stays on this event,
                        # so the next dispatch re-attempts the acquire --
                        # and the new clock is never below the holder's,
                        # so the retry always rescans first.
                        wait = spin_interval
                        holder_clock = clocks[holder]
                        if holder_clock > now + wait:
                            wait = holder_clock - now
                        wait += mread(cpu, addr, 4, cls, now)
                        msync_acc += wait
                        now += wait
                        retry_acc += 1
                else:  # EV_LOCK_REL (kind == 4)
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    if lock_holder.get(lock_id) != cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} released spinlock {lock_id!r} "
                            "it does not hold"
                        )
                    del lock_holder[lock_id]
                    cost = 1 + mwrite(cpu, addr, 4, cls, now)
                    msync_acc += cost
                    now += cost
                    pos += 1

                if now >= limit:
                    clocks[cpu] = now
                    cursors[cpu] = pos
                    break

            stats.events += (pos - start_pos) + retry_acc
            stats.busy += busy_acc
            stats.msync += msync_acc
            if l1_acc:
                mstats.l1_reads += l1_acc

        elapsed = perf_counter() - t0
        reg = _registry()
        reg.counter("interleave.kernel.scalar.runs").inc()
        reg.counter("interleave.kernel.scalar.seconds").inc(elapsed)
        if _obs_enabled():
            _note_run("run_traces", cpu_stats, elapsed)
        return RunResult(machine, cpu_stats)

    def _run_traces_batched(self, traces, sink, reset_stats):
        """The batched ``run_traces`` engine: plan-driven inlined dispatch.

        Identical window selection, per-event costs, and accounting to
        :meth:`_run_traces_scalar`, restructured around the per-trace
        :class:`~repro.memsim.batch.BatchPlan` in two tiers:

        * Rows the plan tagged (single-line reads and writes; the vast
          majority of a DSS trace) retire through copies of the machine's
          read/write hot paths inlined into the dispatch loop.  The
          plan's ``mem_lines`` column hands the loop the precomputed
          primary-line tag, so the per-row method call, address
          decomposition, and attribute chases of scalar dispatch all
          disappear; counter updates accumulate in locals and flush at
          window boundaries.  Every machine-state transition -- cache
          fills, LRU moves, directory transactions, write-buffer issue --
          happens one row at a time in the same global order at the same
          cycle as under scalar dispatch.
        * Qualifying *runs* (single-CPU reads over resident lines plus
          busy/hit rows, >= ``MIN_BATCH`` long) retire in bulk: one
          gather of the machine's L1 tag mirror answers every hit check
          at once, cut at the first miss and at the window's clock limit
          -- exactly where scalar dispatch would stop.  The mirror is
          built only when some plan actually carries runs, so miss-dense
          traces never pay for its maintenance.

        Rows the plan marked slow (line-crossing accesses, lock events,
        busy/hit rows) dispatch through branches copied verbatim from
        the scalar engine.  Bit-identity is asserted
        by ``tests/test_batch.py`` and the trace-cache suite under
        ``REPRO_KERNEL=batched``.
        """
        machine = self.machine
        if len(traces) > machine.config.n_nodes:
            raise ValueError(
                f"{len(traces)} traces but only {machine.config.n_nodes} nodes"
            )
        l1_shift = machine._l1_shift
        plans = [t.batch_plan(l1_shift, machine._l1_nsets) for t in traces]
        if any(p is None for p in plans):
            _registry().counter("interleave.kernel.fallback.no_numpy").inc()
            return self._run_traces_scalar(traces, sink, reset_stats)
        # The gather tier engages only when a plan actually carries
        # qualifying runs *and* the L1 can be mirrored (direct-mapped);
        # otherwise neither the mirror nor the run walk costs anything.
        gather = any(p.run_starts for p in plans)
        if gather:
            gather = machine._ensure_l1_mirror() is not None
        if reset_stats:
            machine.reset_stats()
        t0 = perf_counter()

        n = len(traces)
        clocks = [0] * n
        cpu_stats = [CpuStats() for _ in range(n)]
        cursors = [0] * n
        ends = [len(t) for t in traces]
        total_rows = sum(ends)
        INF = 1 << 62
        if gather:
            run_starts = [p.run_starts[0] if p.run_starts else INF
                          for p in plans]
            run_ends = [p.run_ends[0] if p.run_ends else INF for p in plans]
        else:
            run_starts = [INF] * n
            run_ends = [INF] * n
        run_idx = [0] * n
        min_resume = _MIN_RESUME
        batched_rows = 0
        batched_disp = 0
        scalar_rows = 0
        alive = list(range(n))
        lock_holder = {}
        spin_interval = self.spin_interval
        mread = machine.read
        mwrite = machine.write
        drain_time = machine.drain_time
        # Aliases for the inlined read/write hot paths, bound after the
        # stats reset (which replaces the counter containers).  Every
        # aliased container is mutated in place by the machine's own
        # helpers, so the aliases never go stale mid-run.
        mstats = machine.stats
        l1rm = mstats.l1_read_misses
        l2rm = mstats.l2_read_misses
        l1_sets = machine._l1_sets
        l2_sets = machine._l2_sets
        seen1_col = [c._seen for c in machine.l1]
        inv1_col = [c._invalidated for c in machine.l1]
        seen2_col = [c._seen for c in machine.l2]
        inv2_col = [c._invalidated for c in machine.l2]
        l1_assoc = machine.l1[0].assoc
        l2_assoc = machine.l2[0].assoc
        wbs = machine.wb
        wb_cap = wbs[0].capacity
        dirty = machine.directory._dirty
        dirty_get = dirty.get
        sharers = machine.directory._sharers
        port_free = machine._port_free
        home_fn = machine.home_fn
        mtags = machine._l1_tags
        inval_others = machine._invalidate_others
        evict_l2 = machine._evict_l2
        l1_mask = machine._l1_mask
        l2_mask = machine._l2_mask
        ratio_shift = machine._ratio_shift
        l2_shift = machine._l2_shift
        lat_l2 = machine.lat_l2
        lat_local = machine.lat_local
        lat_2hop = machine.lat_2hop
        lat_3hop = machine.lat_3hop
        wb_retire = machine._wb_retire

        # Per-CPU dispatch context, one tuple per processor.  The global
        # clock hands out short windows (a couple of rows on average), so
        # per-window rebinding dominates unless every loop-invariant
        # binding lands in the frame with a single sequence unpack.
        ctxs = []
        for i in range(n):
            t = traces[i]
            p = plans[i]
            cols = t.columns()
            wb_i = machine.wb[i]
            if gather:
                g = (p.sets, p.lines, p.ccost, p.cl1r, p.run_starts,
                     p.run_ends, len(p.run_starts))
            else:
                g = (None, None, None, None, None, None, 0)
            ctxs.append((
                cols[0], cols[1], cols[2], cols[3], cols[4], cols[5],
                p.mem_lines, p.mcost, p.mreads, t.lock_ids,
                l1_sets[i], l2_sets[i], seen1_col[i], inv1_col[i],
                seen2_col[i], inv2_col[i], wb_i, wb_i.entries,
                wb_i.entries.popleft, wb_i.entries.append,
                mtags[i] if mtags is not None else None,
                ends[i], cpu_stats[i], cpu_stats[i].mem_by_class) + g)

        # repro: hot -- the batched replay dispatch loop; see rules_hot.py.
        while alive:
            # Identical argmin/limit selection to :meth:`run`: the chosen
            # processor dispatches in a tight loop while it stays strictly
            # the earliest clock.
            k = len(alive)
            if k == 1:
                cpu = alive[0]
                limit = INF
            elif k == 2:
                c0, c1 = alive
                if clocks[c0] <= clocks[c1]:
                    cpu, limit = c0, clocks[c1]
                else:
                    cpu, limit = c1, clocks[c0]
            else:
                ait = iter(alive)
                cpu = next(ait)
                best = clocks[cpu]
                limit = INF
                for i in ait:
                    ci = clocks[i]
                    if ci < best:
                        cpu, limit, best = i, best, ci
                    elif ci < limit:
                        limit = ci

            (tk, ta, tb, tc, td, te, pl, pmc, pmr, lock_ids,
             cpu_l1, cpu_l2, seen1, inv1, seen2, inv2, wb, wb_entries,
             wb_pop, wb_app, tags1, end, stats, mem_by_class,
             psets, plines, pccost, pcl1r, prs, pre, n_runs) = ctxs[cpu]
            ri = run_idx[cpu]
            nxt_start = run_starts[cpu]
            nxt_end = run_ends[cpu]
            pos = cursors[cpu]
            now = clocks[cpu]
            start_pos = pos
            retry_acc = busy_acc = msync_acc = 0
            l1_acc = l1w_acc = l2r_acc = l2wm_acc = 0

            while True:
                if pos >= end:
                    alive.remove(cpu)
                    now = drain_time(cpu, now)
                    clocks[cpu] = now
                    stats.finish_time = now
                    if sink is not None:
                        sink[cpu] = traces[cpu].rows
                    # Cold by the HOT lint's sanitizer-gate exemption: the
                    # sweep runs once per finished stream, not per event.
                    if _sanitize:
                        machine.check_invariants()
                    break

                if pos >= nxt_start:
                    if nxt_end - pos >= min_resume:
                        # Gather tier: one mirror gather answers every hit
                        # check of the run remainder, then the prefix is
                        # cut at the first miss and at the clock limit --
                        # exactly where scalar dispatch would leave the
                        # fused-hit fast path or the window.
                        hitv = tags1[psets[pos:nxt_end]] == plines[pos:nxt_end]
                        nhit = int(hitv.argmin())
                        if hitv[nhit]:
                            nhit = nxt_end - pos
                        if nhit:
                            if pos:
                                prev_c = int(pccost[pos - 1])
                                prev_r = int(pcl1r[pos - 1])
                            else:
                                prev_c = prev_r = 0
                            if limit != INF:
                                ncut = int(pccost[pos:nxt_end].searchsorted(
                                    limit - now + prev_c)) + 1
                                if ncut < nhit:
                                    nhit = ncut
                            last = pos + nhit - 1
                            delta = int(pccost[last]) - prev_c
                            busy_acc += delta
                            now += delta
                            l1_acc += int(pcl1r[last]) - prev_r
                            pos = last + 1
                            batched_rows += nhit
                            batched_disp += 1
                            if now >= limit:
                                clocks[cpu] = now
                                cursors[cpu] = pos
                                run_idx[cpu] = ri
                                run_starts[cpu] = nxt_start
                                run_ends[cpu] = nxt_end
                                break
                            continue
                        # First row of the remainder misses: dispatch it
                        # through the inline tier below, then re-enter.
                    elif pos >= nxt_end:
                        ri += 1
                        if ri < n_runs:
                            nxt_start = prs[ri]
                            nxt_end = pre[ri]
                        else:
                            nxt_start = nxt_end = INF

                kind = tk[pos]

                if kind == 0:  # EV_READ (+ fused trailing busy/hit run)
                    line1 = pl[pos]
                    if line1 >= 0:
                        # Inline tier: NumaMachine.read's single-line hot
                        # path with the plan's precomputed line tag, word
                        # count (pmr: words + fused hits), and retire cost
                        # (pmc: 1 + fused busy cycles).
                        l1_acc += pmr[pos]
                        ways = cpu_l1[line1 & l1_mask]
                        if line1 in ways:
                            if ways[0] != line1:
                                ways.remove(line1)
                                ways.insert(0, line1)
                            cost = pmc[pos]
                            busy_acc += cost
                            now += cost
                        else:
                            cls = tc[pos]
                            l1rm[cls][
                                0 if line1 not in seen1
                                else 2 if line1 in inv1 else 1
                            ] += 1
                            line2 = line1 >> ratio_shift
                            l2r_acc += 1
                            ways2 = cpu_l2[line2 & l2_mask]
                            if line2 in ways2:
                                if ways2[0] != line2:
                                    ways2.remove(line2)
                                    ways2.insert(0, line2)
                                stall = lat_l2
                            else:
                                l2rm[cls][
                                    0 if line2 not in seen2
                                    else 2 if line2 in inv2 else 1
                                ] += 1
                                home = home_fn(line2 << l2_shift)
                                owner = dirty_get(line2)
                                if owner is not None and owner != cpu:
                                    stall = lat_2hop if home == cpu \
                                        else lat_3hop
                                    del dirty[line2]
                                else:
                                    stall = lat_local if home == cpu \
                                        else lat_2hop
                                holders = sharers.get(line2)
                                if holders is None:
                                    # repro: allow[HOT001] only on L2 miss
                                    sharers[line2] = {cpu}
                                else:
                                    holders.add(cpu)
                                ways2.insert(0, line2)
                                seen2.add(line2)
                                inv2.discard(line2)
                                if len(ways2) > l2_assoc:
                                    evict_l2(cpu, ways2.pop())
                                if stall > lat_l2:
                                    # Demand fill from beyond the L2 queues
                                    # behind in-flight fills on this node's
                                    # memory port.
                                    wait = port_free[cpu] - now
                                    if wait > 0:
                                        stall += wait
                                    port_free[cpu] = now + stall
                            ways.insert(0, line1)
                            seen1.add(line1)
                            inv1.discard(line1)
                            if len(ways) > l1_assoc:
                                ways.pop()
                            if tags1 is not None:
                                tags1[line1 & l1_mask] = line1
                            mem_by_class[cls] += stall
                            cost = pmc[pos]
                            busy_acc += cost
                            now += cost + stall
                        pos += 1
                    else:
                        # Line-crossing load: NumaMachine.read's multi-line
                        # path with _read_line inlined per primary line
                        # (tuple copies average ~2-4 lines; the per-line
                        # method call was the next-hottest cost after the
                        # single-line paths moved inline).
                        scalar_rows += 1
                        addr = ta[pos]
                        size = tb[pos]
                        cls = tc[pos]
                        first = addr >> l1_shift
                        last = (addr + size - 1) >> l1_shift
                        nlines = last - first + 1
                        words = (size + 3) >> 2
                        if words > nlines:
                            l1_acc += words - nlines
                        stall = 0
                        while True:
                            l1_acc += 1
                            ways = cpu_l1[first & l1_mask]
                            if first in ways:
                                if ways[0] != first:
                                    ways.remove(first)
                                    ways.insert(0, first)
                            else:
                                l1rm[cls][
                                    0 if first not in seen1
                                    else 2 if first in inv1 else 1
                                ] += 1
                                line2 = first >> ratio_shift
                                l2r_acc += 1
                                ways2 = cpu_l2[line2 & l2_mask]
                                if line2 in ways2:
                                    if ways2[0] != line2:
                                        ways2.remove(line2)
                                        ways2.insert(0, line2)
                                    lat = lat_l2
                                else:
                                    l2rm[cls][
                                        0 if line2 not in seen2
                                        else 2 if line2 in inv2 else 1
                                    ] += 1
                                    home = home_fn(line2 << l2_shift)
                                    owner = dirty_get(line2)
                                    if owner is not None and owner != cpu:
                                        lat = lat_2hop if home == cpu \
                                            else lat_3hop
                                        del dirty[line2]
                                    else:
                                        lat = lat_local if home == cpu \
                                            else lat_2hop
                                    holders = sharers.get(line2)
                                    if holders is None:
                                        # repro: allow[HOT001] only on L2 miss
                                        sharers[line2] = {cpu}
                                    else:
                                        holders.add(cpu)
                                    ways2.insert(0, line2)
                                    seen2.add(line2)
                                    inv2.discard(line2)
                                    if len(ways2) > l2_assoc:
                                        evict_l2(cpu, ways2.pop())
                                    if lat > lat_l2:
                                        # Fill queues behind in-flight fills
                                        # on this node's memory port.
                                        now_l = now + stall
                                        wait = port_free[cpu] - now_l
                                        if wait > 0:
                                            lat += wait
                                        port_free[cpu] = now_l + lat
                                ways.insert(0, first)
                                seen1.add(first)
                                inv1.discard(first)
                                if len(ways) > l1_assoc:
                                    ways.pop()
                                if tags1 is not None:
                                    tags1[first & l1_mask] = first
                                stall += lat
                            if first >= last:
                                break
                            first += 1
                        if stall:
                            mem_by_class[cls] += stall
                        inert = td[pos]
                        busy_acc += 1 + inert
                        now += 1 + stall + inert
                        l1_acc += te[pos]
                        pos += 1
                elif kind == 1:  # EV_WRITE (+ fused trailing busy/hit run)
                    line1 = pl[pos]
                    if line1 >= 0:
                        # Inline tier: NumaMachine.write's single-line hot
                        # path, including the write-buffer issue.
                        size = tb[pos]
                        l1w_acc += 1 if size <= 4 else (size + 3) >> 2
                        line2 = line1 >> ratio_shift
                        ways = cpu_l1[line1 & l1_mask]
                        if line1 in ways and ways[0] != line1:
                            ways.remove(line1)
                            ways.insert(0, line1)
                        ways2 = cpu_l2[line2 & l2_mask]
                        if line2 in ways2:
                            if ways2[0] != line2:
                                ways2.remove(line2)
                                ways2.insert(0, line2)
                            if dirty_get(line2) == cpu:
                                retire = wb_retire
                            else:
                                # Upgrade: ask the home directory,
                                # invalidate other copies.
                                home = home_fn(line2 << l2_shift)
                                retire = lat_local if home == cpu \
                                    else lat_2hop
                                inval_others(cpu, line2)
                        else:
                            l2wm_acc += 1
                            home = home_fn(line2 << l2_shift)
                            owner = dirty_get(line2)
                            if owner is not None and owner != cpu:
                                retire = lat_2hop if home == cpu \
                                    else lat_3hop
                            else:
                                retire = lat_local if home == cpu \
                                    else lat_2hop
                            inval_others(cpu, line2)
                            ways2.insert(0, line2)
                            seen2.add(line2)
                            inv2.discard(line2)
                            if len(ways2) > l2_assoc:
                                evict_l2(cpu, ways2.pop())
                        # Write-buffer issue (inlined WriteBuffer.issue);
                        # wb state stays on the object because lock rows
                        # reach it through machine.write mid-window.
                        while wb_entries and wb_entries[0] <= now:
                            wb_pop()
                        stall = 0
                        if len(wb_entries) >= wb_cap:
                            oldest = wb_pop()
                            if oldest > now:
                                stall = oldest - now
                                wb.stall_cycles += stall
                        completion = wb._last_completion
                        issue_time = now + stall
                        if issue_time > completion:
                            completion = issue_time
                        completion += retire
                        wb._last_completion = completion
                        wb_app(completion)
                        cost = pmc[pos]
                        busy_acc += cost
                        if stall:
                            mem_by_class[tc[pos]] += stall
                            now += cost + stall
                        else:
                            now += cost
                        l1_acc += pmr[pos]
                        pos += 1
                    else:
                        # Line-crossing store: NumaMachine.write's
                        # multi-line path with _write_line inlined per
                        # primary line (tuple stores average ~4 lines).
                        scalar_rows += 1
                        addr = ta[pos]
                        size = tb[pos]
                        cls = tc[pos]
                        first = addr >> l1_shift
                        last = (addr + size - 1) >> l1_shift
                        nlines = last - first + 1
                        words = (size + 3) >> 2
                        if words > nlines:
                            l1w_acc += words - nlines
                        stall = 0
                        while True:
                            l1w_acc += 1
                            now_l = now + stall
                            ways = cpu_l1[first & l1_mask]
                            if first in ways and ways[0] != first:
                                ways.remove(first)
                                ways.insert(0, first)
                            line2 = first >> ratio_shift
                            ways2 = cpu_l2[line2 & l2_mask]
                            if line2 in ways2:
                                if ways2[0] != line2:
                                    ways2.remove(line2)
                                    ways2.insert(0, line2)
                                if dirty_get(line2) == cpu:
                                    retire = wb_retire
                                else:
                                    # Upgrade: ask the home directory,
                                    # invalidate other copies.
                                    home = home_fn(line2 << l2_shift)
                                    retire = lat_local if home == cpu \
                                        else lat_2hop
                                    inval_others(cpu, line2)
                            else:
                                l2wm_acc += 1
                                home = home_fn(line2 << l2_shift)
                                owner = dirty_get(line2)
                                if owner is not None and owner != cpu:
                                    retire = lat_2hop if home == cpu \
                                        else lat_3hop
                                else:
                                    retire = lat_local if home == cpu \
                                        else lat_2hop
                                inval_others(cpu, line2)
                                ways2.insert(0, line2)
                                seen2.add(line2)
                                inv2.discard(line2)
                                if len(ways2) > l2_assoc:
                                    evict_l2(cpu, ways2.pop())
                            # Write-buffer issue at this line's clock.
                            while wb_entries and wb_entries[0] <= now_l:
                                wb_pop()
                            wstall = 0
                            if len(wb_entries) >= wb_cap:
                                oldest = wb_pop()
                                if oldest > now_l:
                                    wstall = oldest - now_l
                                    wb.stall_cycles += wstall
                            completion = wb._last_completion
                            issue_time = now_l + wstall
                            if issue_time > completion:
                                completion = issue_time
                            completion += retire
                            wb._last_completion = completion
                            wb_app(completion)
                            stall += wstall
                            if first >= last:
                                break
                            first += 1
                        inert = td[pos]
                        busy_acc += 1 + inert
                        if stall:
                            mem_by_class[cls] += stall
                            now += 1 + stall + inert
                        else:
                            now += 1 + inert
                        l1_acc += te[pos]
                        pos += 1
                elif kind == 2:  # EV_BUSY (already coalesced at record time)
                    scalar_rows += 1
                    cycles = ta[pos]
                    busy_acc += cycles
                    now += cycles
                    pos += 1
                elif kind == 5:  # EV_HIT: always-hit stack/static references
                    scalar_rows += 1
                    count = ta[pos]
                    busy_acc += count
                    l1_acc += count
                    now += count
                    pos += 1
                elif kind == 3:  # EV_LOCK_ACQ
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    holder = lock_holder.get(lock_id)
                    if holder == cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} re-acquired spinlock {lock_id!r}"
                        )
                    if holder is None:
                        scalar_rows += 1
                        cost = 2
                        cost += mread(cpu, addr, 4, cls, now)
                        cost += mwrite(cpu, addr, 4, cls, now + cost)
                        msync_acc += cost
                        now += cost
                        lock_holder[lock_id] = cpu
                        pos += 1
                    else:
                        # Spin and retry: the cursor stays on this event,
                        # so the next dispatch re-attempts the acquire --
                        # and the new clock is never below the holder's,
                        # so the retry always rescans first.
                        wait = spin_interval
                        holder_clock = clocks[holder]
                        if holder_clock > now + wait:
                            wait = holder_clock - now
                        wait += mread(cpu, addr, 4, cls, now)
                        msync_acc += wait
                        now += wait
                        retry_acc += 1
                else:  # EV_LOCK_REL (kind == 4)
                    scalar_rows += 1
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    if lock_holder.get(lock_id) != cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} released spinlock {lock_id!r} "
                            "it does not hold"
                        )
                    del lock_holder[lock_id]
                    cost = 1 + mwrite(cpu, addr, 4, cls, now)
                    msync_acc += cost
                    now += cost
                    pos += 1

                if now >= limit:
                    clocks[cpu] = now
                    cursors[cpu] = pos
                    run_idx[cpu] = ri
                    run_starts[cpu] = nxt_start
                    run_ends[cpu] = nxt_end
                    break

            stats.events += (pos - start_pos) + retry_acc
            stats.busy += busy_acc
            stats.msync += msync_acc
            if l1_acc:
                mstats.l1_reads += l1_acc
            if l1w_acc:
                mstats.l1_writes += l1w_acc
            if l2r_acc:
                mstats.l2_reads += l2r_acc
            if l2wm_acc:
                mstats.l2_write_misses += l2wm_acc

        elapsed = perf_counter() - t0
        reg = _registry()
        reg.counter("interleave.kernel.batched.runs").inc()
        reg.counter("interleave.kernel.batched.seconds").inc(elapsed)
        reg.counter("interleave.batch.rows").inc(batched_rows)
        reg.counter("interleave.batch.dispatches").inc(batched_disp)
        reg.counter("interleave.batch.inline_rows").inc(
            total_rows - batched_rows - scalar_rows)
        reg.counter("interleave.batch.scalar_rows").inc(scalar_rows)
        if _obs_enabled():
            _note_run("run_traces", cpu_stats, elapsed)
        return RunResult(machine, cpu_stats)

    def _run_traces_horizon(self, traces, sink, reset_stats):
        """The horizon ``run_traces`` engine: sharing-aware retire-ahead.

        Everything the batched engine does (plan-driven inlined dispatch,
        vectorized gather runs), plus the :mod:`repro.memsim.horizon`
        schedule: rows whose spans touch no write-shared L2 line cannot
        interact with another processor, so whenever the next interaction
        horizon (boundary row) is at least ``HORIZON_MIN`` rows away, the
        engine retires the whole region in one pass -- ignoring the
        global-clock window limit -- and records each row's completion
        time in a **virtual clock** list.  Later windows that would have
        re-dispatched this processor replay from the virtual clock with a
        single bisect (no context unpack, no per-row work) until it
        drains, reproducing scalar dispatch's clock-flush trajectory
        exactly: window selection, spin-wait observations of other
        processors' clocks, finish order, and every machine counter come
        out bit-identical, which ``tests/test_batch.py`` asserts under
        ``REPRO_KERNEL=horizon``.

        The static classification cannot see eviction order, so the pass
        carries a dynamic guard: before any fill it probes the victim L1
        set (reads only; the write-through L1 never allocates on stores)
        and, when the L2 line is absent, the victim L2 set, for a
        resident write-shared line -- evicting one early would reorder
        it against another processor's coherence traffic -- and stops
        the pass at the first unsafe fill
        (``interleave.horizon.guard_stops``).  A guard hit on the very
        first row of a pass dispatches that row anyway: the pass enters
        at the processor's true clock, so the first row's dispatch time
        *is* the scalar one, and the pass always makes progress.

        The caller guarantees a pristine machine
        (:meth:`NumaMachine.is_pristine`): residue from an earlier
        replay could make a line the classifier never saw observable by
        another processor, which is exactly the interaction the
        schedule rules out.
        """
        machine = self.machine
        if len(traces) > machine.config.n_nodes:
            raise ValueError(
                f"{len(traces)} traces but only {machine.config.n_nodes} nodes"
            )
        l1_shift = machine._l1_shift
        plans = [t.batch_plan(l1_shift, machine._l1_nsets) for t in traces]
        sched = _horizon_schedule(traces, machine._l2_shift)
        if sched is None or any(p is None for p in plans):
            _registry().counter("interleave.kernel.fallback.no_numpy").inc()
            return self._run_traces_scalar(traces, sink, reset_stats)
        ws_set = sched.ws
        gather = any(p.run_starts for p in plans)
        if gather:
            gather = machine._ensure_l1_mirror() is not None
        if reset_stats:
            machine.reset_stats()
        t0 = perf_counter()

        n = len(traces)
        clocks = [0] * n
        cpu_stats = [CpuStats() for _ in range(n)]
        cursors = [0] * n
        ends = [len(t) for t in traces]
        total_rows = sum(ends)
        INF = 1 << 62
        if gather:
            run_starts = [p.run_starts[0] if p.run_starts else INF
                          for p in plans]
            run_ends = [p.run_ends[0] if p.run_ends else INF for p in plans]
        else:
            run_starts = [INF] * n
            run_ends = [INF] * n
        run_idx = [0] * n
        min_resume = _MIN_RESUME
        hz_min = _HORIZON_MIN
        # Virtual clocks: vts[cpu] is the completion-time list of rows
        # retired past the current window cut (None when the processor
        # is live), vjs[cpu] the replay cursor into it.
        vts = [None] * n
        vjs = [0] * n
        n_virtual = 0
        hz_rows = 0
        hz_regions = 0
        hz_guard = 0
        hz_vwin = 0
        hz_ff = 0
        batched_rows = 0
        batched_disp = 0
        scalar_rows = 0
        alive = list(range(n))
        lock_holder = {}
        spin_interval = self.spin_interval
        mread = machine.read
        mwrite = machine.write
        drain_time = machine.drain_time
        # Aliases for the inlined read/write hot paths, bound after the
        # stats reset (which replaces the counter containers), exactly as
        # in the batched engine.
        mstats = machine.stats
        l1rm = mstats.l1_read_misses
        l2rm = mstats.l2_read_misses
        l1_sets = machine._l1_sets
        l2_sets = machine._l2_sets
        seen1_col = [c._seen for c in machine.l1]
        inv1_col = [c._invalidated for c in machine.l1]
        seen2_col = [c._seen for c in machine.l2]
        inv2_col = [c._invalidated for c in machine.l2]
        l1_assoc = machine.l1[0].assoc
        l2_assoc = machine.l2[0].assoc
        wbs = machine.wb
        wb_cap = wbs[0].capacity
        dirty = machine.directory._dirty
        dirty_get = dirty.get
        sharers = machine.directory._sharers
        port_free = machine._port_free
        home_fn = machine.home_fn
        mtags = machine._l1_tags
        inval_others = machine._invalidate_others
        evict_l2 = machine._evict_l2
        l1_mask = machine._l1_mask
        l2_mask = machine._l2_mask
        ratio_shift = machine._ratio_shift
        l2_shift = machine._l2_shift
        lat_l2 = machine.lat_l2
        lat_local = machine.lat_local
        lat_2hop = machine.lat_2hop
        lat_3hop = machine.lat_3hop
        wb_retire = machine._wb_retire

        # Per-CPU dispatch context: the batched engine's tuple plus the
        # horizon plan's next-boundary array.
        ctxs = []
        for i in range(n):
            t = traces[i]
            p = plans[i]
            cols = t.columns()
            wb_i = machine.wb[i]
            if gather:
                g = (p.sets, p.lines, p.ccost, p.cl1r, p.run_starts,
                     p.run_ends, len(p.run_starts))
            else:
                g = (None, None, None, None, None, None, 0)
            ctxs.append((
                cols[0], cols[1], cols[2], cols[3], cols[4], cols[5],
                p.mem_lines, p.mcost, p.mreads, t.lock_ids,
                l1_sets[i], l2_sets[i], seen1_col[i], inv1_col[i],
                seen2_col[i], inv2_col[i], wb_i, wb_i.entries,
                wb_i.entries.popleft, wb_i.entries.append,
                mtags[i] if mtags is not None else None,
                ends[i], cpu_stats[i], cpu_stats[i].mem_by_class)
                + g + (sched.plans[i].stops,))

        # repro: hot -- the horizon replay dispatch loop; see rules_hot.py.
        while alive:
            k = len(alive)
            if n_virtual == k and k > 1:
                # Merge fast-forward: every live processor is replaying
                # from a virtual clock, so no machine state can change
                # until one of them drains -- and the whole window-by-
                # window argmin/bisect merge up to that drain is already
                # determined by the recorded completions.  The drainer
                # is the processor with the smallest final completion
                # (lowest index on ties, matching the argmin); every
                # other clock lands on its first completion >= the
                # drainer's last one, consuming an exactly-equal
                # completion only when its index precedes the drainer's
                # (the argmin would have selected it first).  Clocks
                # already past that point never get selected in between
                # and stay put.  One pass here replaces up to thousands
                # of per-window virtual hops.
                cpu = alive[0]
                M = vts[cpu][-1]
                for c in alive:
                    last = vts[c][-1]
                    if last < M:
                        cpu, M = c, last
                limit = INF
                for d in alive:
                    if d == cpu:
                        continue
                    cd = clocks[d]
                    if cd < M or (cd == M and d < cpu):
                        vt_d = vts[d]
                        j = bisect_left(vt_d, M, vjs[d])
                        if vt_d[j] == M and d < cpu:
                            j += 1
                        cd = vt_d[j]
                        clocks[d] = cd
                        vjs[d] = j + 1
                    if cd < limit:
                        limit = cd
                # The drainer resumes real dispatch below, exactly as
                # the stepped exhaustion path would.
                vt = vts[cpu]
                vts[cpu] = None
                n_virtual -= 1
                hz_ff += 1
            else:
                # Identical argmin/limit selection to :meth:`run`.
                if k == 1:
                    cpu = alive[0]
                    limit = INF
                elif k == 2:
                    c0, c1 = alive
                    if clocks[c0] <= clocks[c1]:
                        cpu, limit = c0, clocks[c1]
                    else:
                        cpu, limit = c1, clocks[c0]
                else:
                    ait = iter(alive)
                    cpu = next(ait)
                    best = clocks[cpu]
                    limit = INF
                    for i in ait:
                        ci = clocks[i]
                        if ci < best:
                            cpu, limit, best = i, best, ci
                        elif ci < limit:
                            limit = ci

                vt = vts[cpu]
                if vt is not None:
                    # Virtual replay: this processor's next rows are
                    # already retired, so advance its clock to the first
                    # completion at or past the limit -- exactly where
                    # scalar dispatch would flush this window -- without
                    # touching its context.  This skip (and the merge
                    # fast-forward above, its all-virtual batch form) is
                    # where the horizon tier's speedup lives.
                    j = bisect_left(vt, limit, vjs[cpu])
                    if j < len(vt):
                        clocks[cpu] = vt[j]
                        vjs[cpu] = j + 1
                        hz_vwin += 1
                        continue
                    # Drained mid-window: resume real dispatch at the
                    # last retired completion, still inside this window.
                    vts[cpu] = None
                    n_virtual -= 1

            (tk, ta, tb, tc, td, te, pl, pmc, pmr, lock_ids,
             cpu_l1, cpu_l2, seen1, inv1, seen2, inv2, wb, wb_entries,
             wb_pop, wb_app, tags1, end, stats, mem_by_class,
             psets, plines, pccost, pcl1r, prs, pre, n_runs,
             hstops) = ctxs[cpu]
            ri = run_idx[cpu]
            nxt_start = run_starts[cpu]
            nxt_end = run_ends[cpu]
            pos = cursors[cpu]
            now = clocks[cpu] if vt is None else vt[-1]
            start_pos = pos
            retry_acc = busy_acc = msync_acc = 0
            l1_acc = l1w_acc = l2r_acc = l2wm_acc = 0

            while True:
                if pos >= end:
                    alive.remove(cpu)
                    now = drain_time(cpu, now)
                    clocks[cpu] = now
                    stats.finish_time = now
                    if sink is not None:
                        sink[cpu] = traces[cpu].rows
                    # Cold by the HOT lint's sanitizer-gate exemption: the
                    # sweep runs once per finished stream, not per event.
                    if _sanitize:
                        machine.check_invariants()
                    break

                hstop = hstops[pos]
                if hstop - pos >= hz_min:
                    # Retire-ahead pass: every row in [pos, hstop) spans
                    # only non-write-shared lines, so run the region to
                    # completion now -- no window limit -- recording
                    # per-row completion times for the virtual replay.
                    # repro: allow[HOT001] one virtual clock per region
                    vt = []
                    vt_append = vt.append
                    rstart = pos
                    while pos < hstop:
                        if pos >= nxt_start:
                            if nxt_end - pos >= min_resume:
                                # Gather sub-tier: as in the batched
                                # engine, but cut at the horizon instead
                                # of the clock limit, and with the
                                # per-row completions kept (cumulative
                                # cost rebased to this pass's clock).
                                hi = nxt_end if nxt_end < hstop else hstop
                                hitv = tags1[psets[pos:hi]] == \
                                    plines[pos:hi]
                                nhit = int(hitv.argmin())
                                if hitv[nhit]:
                                    nhit = hi - pos
                                if nhit:
                                    if pos:
                                        prev_c = int(pccost[pos - 1])
                                        prev_r = int(pcl1r[pos - 1])
                                    else:
                                        prev_c = prev_r = 0
                                    last = pos + nhit - 1
                                    vt += (pccost[pos:last + 1]
                                           + (now - prev_c)).tolist()
                                    delta = int(pccost[last]) - prev_c
                                    busy_acc += delta
                                    now += delta
                                    l1_acc += int(pcl1r[last]) - prev_r
                                    pos = last + 1
                                    batched_rows += nhit
                                    batched_disp += 1
                                    continue
                                # First row of the remainder misses:
                                # dispatch it inline below, then re-enter.
                            elif pos >= nxt_end:
                                ri += 1
                                if ri < n_runs:
                                    nxt_start = prs[ri]
                                    nxt_end = pre[ri]
                                else:
                                    nxt_start = nxt_end = INF

                        kind = tk[pos]
                        if kind == 0:  # EV_READ (+ fused busy/hit run)
                            line1 = pl[pos]
                            if line1 >= 0:
                                ways = cpu_l1[line1 & l1_mask]
                                if line1 in ways:
                                    if ways[0] != line1:
                                        ways.remove(line1)
                                        ways.insert(0, line1)
                                    l1_acc += pmr[pos]
                                    cost = pmc[pos]
                                    busy_acc += cost
                                    now += cost
                                else:
                                    # Eviction guard, probed before any
                                    # state change: a set below its
                                    # associativity evicts nothing, and
                                    # a full set free of write-shared
                                    # residents holds exactly what the
                                    # oracle's copy holds (only other
                                    # processors' invalidations can
                                    # shrink it, and those touch only
                                    # write-shared lines), so its LRU
                                    # victim matches too.  Any resident
                                    # write-shared line, though, may be
                                    # invalidated mid-region -- which
                                    # flips the oracle set's fullness
                                    # and victim -- so it trips.
                                    line2 = line1 >> ratio_shift
                                    ways2 = cpu_l2[line2 & l2_mask]
                                    safe = True
                                    if len(ways) == l1_assoc:
                                        for w in ways:
                                            if (w >> ratio_shift) in ws_set:
                                                safe = False
                                                break
                                    if safe and line2 not in ways2 \
                                            and len(ways2) == l2_assoc:
                                        for w in ways2:
                                            if w in ws_set:
                                                safe = False
                                                break
                                    # Rows starting before the window
                                    # limit dispatch inside the current
                                    # window -- ahead of every other
                                    # processor's next operation -- so
                                    # their evictions stay ordered and
                                    # need no trip.
                                    if not safe and now >= limit:
                                        hz_guard += 1
                                        if vt:
                                            break
                                    l1_acc += pmr[pos]
                                    cls = tc[pos]
                                    l1rm[cls][
                                        0 if line1 not in seen1
                                        else 2 if line1 in inv1 else 1
                                    ] += 1
                                    l2r_acc += 1
                                    if line2 in ways2:
                                        if ways2[0] != line2:
                                            ways2.remove(line2)
                                            ways2.insert(0, line2)
                                        stall = lat_l2
                                    else:
                                        l2rm[cls][
                                            0 if line2 not in seen2
                                            else 2 if line2 in inv2 else 1
                                        ] += 1
                                        home = home_fn(line2 << l2_shift)
                                        owner = dirty_get(line2)
                                        if owner is not None and owner != cpu:
                                            stall = lat_2hop if home == cpu \
                                                else lat_3hop
                                            del dirty[line2]
                                        else:
                                            stall = lat_local if home == cpu \
                                                else lat_2hop
                                        holders = sharers.get(line2)
                                        if holders is None:
                                            # repro: allow[HOT001] only on L2 miss
                                            sharers[line2] = {cpu}
                                        else:
                                            holders.add(cpu)
                                        ways2.insert(0, line2)
                                        seen2.add(line2)
                                        inv2.discard(line2)
                                        if len(ways2) > l2_assoc:
                                            evict_l2(cpu, ways2.pop())
                                        if stall > lat_l2:
                                            wait = port_free[cpu] - now
                                            if wait > 0:
                                                stall += wait
                                            port_free[cpu] = now + stall
                                    ways.insert(0, line1)
                                    seen1.add(line1)
                                    inv1.discard(line1)
                                    if len(ways) > l1_assoc:
                                        ways.pop()
                                    if tags1 is not None:
                                        tags1[line1 & l1_mask] = line1
                                    mem_by_class[cls] += stall
                                    cost = pmc[pos]
                                    busy_acc += cost
                                    now += cost + stall
                                vt_append(now)
                                pos += 1
                            else:
                                # Line-crossing load: pre-check every
                                # victim set the span can touch, then the
                                # batched engine's inlined per-line walk.
                                # A non-wrapping span fills each set at
                                # most once, so a set below its
                                # associativity is skipped (it evicts
                                # nothing); a wrapping span's own fills
                                # can fill a set before a later fill
                                # hits it again, so every resident is
                                # scanned regardless.
                                addr = ta[pos]
                                size = tb[pos]
                                first = addr >> l1_shift
                                last = (addr + size - 1) >> l1_shift
                                safe = True
                                scan = first
                                wrap = last - first > l1_mask
                                while scan <= last:
                                    wl = cpu_l1[scan & l1_mask]
                                    if wrap or len(wl) == l1_assoc:
                                        for w in wl:
                                            if (w >> ratio_shift) in ws_set:
                                                safe = False
                                                break
                                        if not safe:
                                            break
                                    scan += 1
                                if safe:
                                    scan2 = first >> ratio_shift
                                    last2 = last >> ratio_shift
                                    wrap2 = last2 - scan2 > l2_mask
                                    while scan2 <= last2:
                                        w2s = cpu_l2[scan2 & l2_mask]
                                        if scan2 not in w2s \
                                                and (wrap2 or
                                                     len(w2s) == l2_assoc):
                                            for w in w2s:
                                                if w in ws_set:
                                                    safe = False
                                                    break
                                            if not safe:
                                                break
                                        scan2 += 1
                                if not safe and now >= limit:
                                    hz_guard += 1
                                    if vt:
                                        break
                                scalar_rows += 1
                                cls = tc[pos]
                                nlines = last - first + 1
                                words = (size + 3) >> 2
                                if words > nlines:
                                    l1_acc += words - nlines
                                stall = 0
                                while True:
                                    l1_acc += 1
                                    ways = cpu_l1[first & l1_mask]
                                    if first in ways:
                                        if ways[0] != first:
                                            ways.remove(first)
                                            ways.insert(0, first)
                                    else:
                                        l1rm[cls][
                                            0 if first not in seen1
                                            else 2 if first in inv1 else 1
                                        ] += 1
                                        line2 = first >> ratio_shift
                                        l2r_acc += 1
                                        ways2 = cpu_l2[line2 & l2_mask]
                                        if line2 in ways2:
                                            if ways2[0] != line2:
                                                ways2.remove(line2)
                                                ways2.insert(0, line2)
                                            lat = lat_l2
                                        else:
                                            l2rm[cls][
                                                0 if line2 not in seen2
                                                else 2 if line2 in inv2
                                                else 1
                                            ] += 1
                                            home = home_fn(line2 << l2_shift)
                                            owner = dirty_get(line2)
                                            if owner is not None \
                                                    and owner != cpu:
                                                lat = lat_2hop if home == cpu \
                                                    else lat_3hop
                                                del dirty[line2]
                                            else:
                                                lat = lat_local \
                                                    if home == cpu \
                                                    else lat_2hop
                                            holders = sharers.get(line2)
                                            if holders is None:
                                                # repro: allow[HOT001] only on L2 miss
                                                sharers[line2] = {cpu}
                                            else:
                                                holders.add(cpu)
                                            ways2.insert(0, line2)
                                            seen2.add(line2)
                                            inv2.discard(line2)
                                            if len(ways2) > l2_assoc:
                                                evict_l2(cpu, ways2.pop())
                                            if lat > lat_l2:
                                                now_l = now + stall
                                                wait = port_free[cpu] - now_l
                                                if wait > 0:
                                                    lat += wait
                                                port_free[cpu] = now_l + lat
                                        ways.insert(0, first)
                                        seen1.add(first)
                                        inv1.discard(first)
                                        if len(ways) > l1_assoc:
                                            ways.pop()
                                        if tags1 is not None:
                                            tags1[first & l1_mask] = first
                                        stall += lat
                                    if first >= last:
                                        break
                                    first += 1
                                if stall:
                                    mem_by_class[cls] += stall
                                inert = td[pos]
                                busy_acc += 1 + inert
                                now += 1 + stall + inert
                                l1_acc += te[pos]
                                vt_append(now)
                                pos += 1
                        elif kind == 1:  # EV_WRITE (+ fused busy/hit run)
                            line1 = pl[pos]
                            if line1 >= 0:
                                # Guard only the L2 fill: the
                                # write-through L1 never allocates on
                                # stores, an L2 hit evicts nothing, and
                                # a set below its associativity evicts
                                # nothing on this one fill either.
                                line2 = line1 >> ratio_shift
                                ways2 = cpu_l2[line2 & l2_mask]
                                l2_hit = line2 in ways2
                                if not l2_hit and len(ways2) == l2_assoc:
                                    safe = True
                                    for w in ways2:
                                        if w in ws_set:
                                            safe = False
                                            break
                                    if not safe and now >= limit:
                                        hz_guard += 1
                                        if vt:
                                            break
                                size = tb[pos]
                                l1w_acc += 1 if size <= 4 \
                                    else (size + 3) >> 2
                                ways = cpu_l1[line1 & l1_mask]
                                if line1 in ways and ways[0] != line1:
                                    ways.remove(line1)
                                    ways.insert(0, line1)
                                if l2_hit:
                                    if ways2[0] != line2:
                                        ways2.remove(line2)
                                        ways2.insert(0, line2)
                                    if dirty_get(line2) == cpu:
                                        retire = wb_retire
                                    else:
                                        home = home_fn(line2 << l2_shift)
                                        retire = lat_local if home == cpu \
                                            else lat_2hop
                                        inval_others(cpu, line2)
                                else:
                                    l2wm_acc += 1
                                    home = home_fn(line2 << l2_shift)
                                    owner = dirty_get(line2)
                                    if owner is not None and owner != cpu:
                                        retire = lat_2hop if home == cpu \
                                            else lat_3hop
                                    else:
                                        retire = lat_local if home == cpu \
                                            else lat_2hop
                                    inval_others(cpu, line2)
                                    ways2.insert(0, line2)
                                    seen2.add(line2)
                                    inv2.discard(line2)
                                    if len(ways2) > l2_assoc:
                                        evict_l2(cpu, ways2.pop())
                                while wb_entries and wb_entries[0] <= now:
                                    wb_pop()
                                stall = 0
                                if len(wb_entries) >= wb_cap:
                                    oldest = wb_pop()
                                    if oldest > now:
                                        stall = oldest - now
                                        wb.stall_cycles += stall
                                completion = wb._last_completion
                                issue_time = now + stall
                                if issue_time > completion:
                                    completion = issue_time
                                completion += retire
                                wb._last_completion = completion
                                wb_app(completion)
                                cost = pmc[pos]
                                busy_acc += cost
                                if stall:
                                    mem_by_class[tc[pos]] += stall
                                    now += cost + stall
                                else:
                                    now += cost
                                l1_acc += pmr[pos]
                                vt_append(now)
                                pos += 1
                            else:
                                # Line-crossing store: pre-check the L2
                                # victim sets of every absent line, then
                                # the batched engine's per-line walk.
                                # Sets below their associativity are
                                # skipped on non-wrapping spans, as for
                                # loads (the write-through L1 never
                                # fills on stores, so only L2 needs a
                                # guard).
                                addr = ta[pos]
                                size = tb[pos]
                                first = addr >> l1_shift
                                last = (addr + size - 1) >> l1_shift
                                safe = True
                                scan2 = first >> ratio_shift
                                last2 = last >> ratio_shift
                                wrap2 = last2 - scan2 > l2_mask
                                while scan2 <= last2:
                                    w2s = cpu_l2[scan2 & l2_mask]
                                    if scan2 not in w2s \
                                            and (wrap2 or
                                                 len(w2s) == l2_assoc):
                                        for w in w2s:
                                            if w in ws_set:
                                                safe = False
                                                break
                                        if not safe:
                                            break
                                    scan2 += 1
                                if not safe and now >= limit:
                                    hz_guard += 1
                                    if vt:
                                        break
                                scalar_rows += 1
                                cls = tc[pos]
                                nlines = last - first + 1
                                words = (size + 3) >> 2
                                if words > nlines:
                                    l1w_acc += words - nlines
                                stall = 0
                                while True:
                                    l1w_acc += 1
                                    now_l = now + stall
                                    ways = cpu_l1[first & l1_mask]
                                    if first in ways and ways[0] != first:
                                        ways.remove(first)
                                        ways.insert(0, first)
                                    line2 = first >> ratio_shift
                                    ways2 = cpu_l2[line2 & l2_mask]
                                    if line2 in ways2:
                                        if ways2[0] != line2:
                                            ways2.remove(line2)
                                            ways2.insert(0, line2)
                                        if dirty_get(line2) == cpu:
                                            retire = wb_retire
                                        else:
                                            home = home_fn(line2 << l2_shift)
                                            retire = lat_local \
                                                if home == cpu else lat_2hop
                                            inval_others(cpu, line2)
                                    else:
                                        l2wm_acc += 1
                                        home = home_fn(line2 << l2_shift)
                                        owner = dirty_get(line2)
                                        if owner is not None \
                                                and owner != cpu:
                                            retire = lat_2hop if home == cpu \
                                                else lat_3hop
                                        else:
                                            retire = lat_local \
                                                if home == cpu else lat_2hop
                                        inval_others(cpu, line2)
                                        ways2.insert(0, line2)
                                        seen2.add(line2)
                                        inv2.discard(line2)
                                        if len(ways2) > l2_assoc:
                                            evict_l2(cpu, ways2.pop())
                                    while wb_entries \
                                            and wb_entries[0] <= now_l:
                                        wb_pop()
                                    wstall = 0
                                    if len(wb_entries) >= wb_cap:
                                        oldest = wb_pop()
                                        if oldest > now_l:
                                            wstall = oldest - now_l
                                            wb.stall_cycles += wstall
                                    completion = wb._last_completion
                                    issue_time = now_l + wstall
                                    if issue_time > completion:
                                        completion = issue_time
                                    completion += retire
                                    wb._last_completion = completion
                                    wb_app(completion)
                                    stall += wstall
                                    if first >= last:
                                        break
                                    first += 1
                                inert = td[pos]
                                busy_acc += 1 + inert
                                if stall:
                                    mem_by_class[cls] += stall
                                    now += 1 + stall + inert
                                else:
                                    now += 1 + inert
                                l1_acc += te[pos]
                                vt_append(now)
                                pos += 1
                        elif kind == 2:  # EV_BUSY
                            scalar_rows += 1
                            cycles = ta[pos]
                            busy_acc += cycles
                            now += cycles
                            vt_append(now)
                            pos += 1
                        else:
                            # EV_HIT (kind == 5): lock rows are always
                            # boundaries, so nothing else reaches a
                            # retire pass.
                            scalar_rows += 1
                            count = ta[pos]
                            busy_acc += count
                            l1_acc += count
                            now += count
                            vt_append(now)
                            pos += 1

                    hz_rows += pos - rstart
                    hz_regions += 1
                    # Cold by the HOT lint's sanitizer-gate exemption.
                    if _sanitize:
                        _check_monotonic(vt, "horizon virtual clock")
                    j = bisect_left(vt, limit)
                    if j < len(vt):
                        # The region ran past this window's cut: flush
                        # at the first completion past the limit --
                        # scalar's flush point -- and replay the rest
                        # virtually from later windows.
                        clocks[cpu] = vt[j]
                        vts[cpu] = vt
                        n_virtual += 1
                        vjs[cpu] = j + 1
                        cursors[cpu] = pos
                        run_idx[cpu] = ri
                        run_starts[cpu] = nxt_start
                        run_ends[cpu] = nxt_end
                        break
                    # The whole region fit inside the window: keep
                    # dispatching for real from its end.
                    continue

                if pos >= nxt_start:
                    if nxt_end - pos >= min_resume:
                        hitv = tags1[psets[pos:nxt_end]] == plines[pos:nxt_end]
                        nhit = int(hitv.argmin())
                        if hitv[nhit]:
                            nhit = nxt_end - pos
                        if nhit:
                            if pos:
                                prev_c = int(pccost[pos - 1])
                                prev_r = int(pcl1r[pos - 1])
                            else:
                                prev_c = prev_r = 0
                            if limit != INF:
                                ncut = int(pccost[pos:nxt_end].searchsorted(
                                    limit - now + prev_c)) + 1
                                if ncut < nhit:
                                    nhit = ncut
                            last = pos + nhit - 1
                            delta = int(pccost[last]) - prev_c
                            busy_acc += delta
                            now += delta
                            l1_acc += int(pcl1r[last]) - prev_r
                            pos = last + 1
                            batched_rows += nhit
                            batched_disp += 1
                            if now >= limit:
                                clocks[cpu] = now
                                cursors[cpu] = pos
                                run_idx[cpu] = ri
                                run_starts[cpu] = nxt_start
                                run_ends[cpu] = nxt_end
                                break
                            continue
                    elif pos >= nxt_end:
                        ri += 1
                        if ri < n_runs:
                            nxt_start = prs[ri]
                            nxt_end = pre[ri]
                        else:
                            nxt_start = nxt_end = INF

                kind = tk[pos]

                if kind == 0:  # EV_READ (+ fused trailing busy/hit run)
                    line1 = pl[pos]
                    if line1 >= 0:
                        l1_acc += pmr[pos]
                        ways = cpu_l1[line1 & l1_mask]
                        if line1 in ways:
                            if ways[0] != line1:
                                ways.remove(line1)
                                ways.insert(0, line1)
                            cost = pmc[pos]
                            busy_acc += cost
                            now += cost
                        else:
                            cls = tc[pos]
                            l1rm[cls][
                                0 if line1 not in seen1
                                else 2 if line1 in inv1 else 1
                            ] += 1
                            line2 = line1 >> ratio_shift
                            l2r_acc += 1
                            ways2 = cpu_l2[line2 & l2_mask]
                            if line2 in ways2:
                                if ways2[0] != line2:
                                    ways2.remove(line2)
                                    ways2.insert(0, line2)
                                stall = lat_l2
                            else:
                                l2rm[cls][
                                    0 if line2 not in seen2
                                    else 2 if line2 in inv2 else 1
                                ] += 1
                                home = home_fn(line2 << l2_shift)
                                owner = dirty_get(line2)
                                if owner is not None and owner != cpu:
                                    stall = lat_2hop if home == cpu \
                                        else lat_3hop
                                    del dirty[line2]
                                else:
                                    stall = lat_local if home == cpu \
                                        else lat_2hop
                                holders = sharers.get(line2)
                                if holders is None:
                                    # repro: allow[HOT001] only on L2 miss
                                    sharers[line2] = {cpu}
                                else:
                                    holders.add(cpu)
                                ways2.insert(0, line2)
                                seen2.add(line2)
                                inv2.discard(line2)
                                if len(ways2) > l2_assoc:
                                    evict_l2(cpu, ways2.pop())
                                if stall > lat_l2:
                                    wait = port_free[cpu] - now
                                    if wait > 0:
                                        stall += wait
                                    port_free[cpu] = now + stall
                            ways.insert(0, line1)
                            seen1.add(line1)
                            inv1.discard(line1)
                            if len(ways) > l1_assoc:
                                ways.pop()
                            if tags1 is not None:
                                tags1[line1 & l1_mask] = line1
                            mem_by_class[cls] += stall
                            cost = pmc[pos]
                            busy_acc += cost
                            now += cost + stall
                        pos += 1
                    else:
                        # Line-crossing load: rare enough here (the
                        # retire pass takes most of them) to go through
                        # machine.read like scalar dispatch.
                        scalar_rows += 1
                        cls = tc[pos]
                        stall = mread(cpu, ta[pos], tb[pos], cls, now)
                        if stall:
                            mem_by_class[cls] += stall
                        inert = td[pos]
                        busy_acc += 1 + inert
                        now += 1 + stall + inert
                        l1_acc += te[pos]
                        pos += 1
                elif kind == 1:  # EV_WRITE (+ fused trailing busy/hit run)
                    line1 = pl[pos]
                    if line1 >= 0:
                        size = tb[pos]
                        l1w_acc += 1 if size <= 4 else (size + 3) >> 2
                        line2 = line1 >> ratio_shift
                        ways = cpu_l1[line1 & l1_mask]
                        if line1 in ways and ways[0] != line1:
                            ways.remove(line1)
                            ways.insert(0, line1)
                        ways2 = cpu_l2[line2 & l2_mask]
                        if line2 in ways2:
                            if ways2[0] != line2:
                                ways2.remove(line2)
                                ways2.insert(0, line2)
                            if dirty_get(line2) == cpu:
                                retire = wb_retire
                            else:
                                home = home_fn(line2 << l2_shift)
                                retire = lat_local if home == cpu \
                                    else lat_2hop
                                inval_others(cpu, line2)
                        else:
                            l2wm_acc += 1
                            home = home_fn(line2 << l2_shift)
                            owner = dirty_get(line2)
                            if owner is not None and owner != cpu:
                                retire = lat_2hop if home == cpu \
                                    else lat_3hop
                            else:
                                retire = lat_local if home == cpu \
                                    else lat_2hop
                            inval_others(cpu, line2)
                            ways2.insert(0, line2)
                            seen2.add(line2)
                            inv2.discard(line2)
                            if len(ways2) > l2_assoc:
                                evict_l2(cpu, ways2.pop())
                        while wb_entries and wb_entries[0] <= now:
                            wb_pop()
                        stall = 0
                        if len(wb_entries) >= wb_cap:
                            oldest = wb_pop()
                            if oldest > now:
                                stall = oldest - now
                                wb.stall_cycles += stall
                        completion = wb._last_completion
                        issue_time = now + stall
                        if issue_time > completion:
                            completion = issue_time
                        completion += retire
                        wb._last_completion = completion
                        wb_app(completion)
                        cost = pmc[pos]
                        busy_acc += cost
                        if stall:
                            mem_by_class[tc[pos]] += stall
                            now += cost + stall
                        else:
                            now += cost
                        l1_acc += pmr[pos]
                        pos += 1
                    else:
                        # Line-crossing store: through machine.write,
                        # like scalar dispatch.
                        scalar_rows += 1
                        cls = tc[pos]
                        stall = mwrite(cpu, ta[pos], tb[pos], cls, now)
                        inert = td[pos]
                        busy_acc += 1 + inert
                        if stall:
                            mem_by_class[cls] += stall
                            now += 1 + stall + inert
                        else:
                            now += 1 + inert
                        l1_acc += te[pos]
                        pos += 1
                elif kind == 2:  # EV_BUSY
                    scalar_rows += 1
                    cycles = ta[pos]
                    busy_acc += cycles
                    now += cycles
                    pos += 1
                elif kind == 5:  # EV_HIT
                    scalar_rows += 1
                    count = ta[pos]
                    busy_acc += count
                    l1_acc += count
                    now += count
                    pos += 1
                elif kind == 3:  # EV_LOCK_ACQ
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    holder = lock_holder.get(lock_id)
                    if holder == cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} re-acquired spinlock {lock_id!r}"
                        )
                    if holder is None:
                        scalar_rows += 1
                        cost = 2
                        cost += mread(cpu, addr, 4, cls, now)
                        cost += mwrite(cpu, addr, 4, cls, now + cost)
                        msync_acc += cost
                        now += cost
                        lock_holder[lock_id] = cpu
                        pos += 1
                    else:
                        wait = spin_interval
                        holder_clock = clocks[holder]
                        if holder_clock > now + wait:
                            wait = holder_clock - now
                        wait += mread(cpu, addr, 4, cls, now)
                        msync_acc += wait
                        now += wait
                        retry_acc += 1
                else:  # EV_LOCK_REL (kind == 4)
                    scalar_rows += 1
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    if lock_holder.get(lock_id) != cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} released spinlock {lock_id!r} "
                            "it does not hold"
                        )
                    del lock_holder[lock_id]
                    cost = 1 + mwrite(cpu, addr, 4, cls, now)
                    msync_acc += cost
                    now += cost
                    pos += 1

                if now >= limit:
                    clocks[cpu] = now
                    cursors[cpu] = pos
                    run_idx[cpu] = ri
                    run_starts[cpu] = nxt_start
                    run_ends[cpu] = nxt_end
                    break

            stats.events += (pos - start_pos) + retry_acc
            stats.busy += busy_acc
            stats.msync += msync_acc
            if l1_acc:
                mstats.l1_reads += l1_acc
            if l1w_acc:
                mstats.l1_writes += l1w_acc
            if l2r_acc:
                mstats.l2_reads += l2r_acc
            if l2wm_acc:
                mstats.l2_write_misses += l2wm_acc

        elapsed = perf_counter() - t0
        reg = _registry()
        reg.counter("interleave.kernel.horizon.runs").inc()
        reg.counter("interleave.kernel.horizon.seconds").inc(elapsed)
        reg.counter("interleave.batch.rows").inc(batched_rows)
        reg.counter("interleave.batch.dispatches").inc(batched_disp)
        reg.counter("interleave.batch.inline_rows").inc(
            total_rows - batched_rows - scalar_rows)
        reg.counter("interleave.batch.scalar_rows").inc(scalar_rows)
        reg.counter("interleave.horizon.rows").inc(hz_rows)
        reg.counter("interleave.horizon.regions").inc(hz_regions)
        reg.counter("interleave.horizon.guard_stops").inc(hz_guard)
        reg.counter("interleave.horizon.virtual_windows").inc(hz_vwin)
        reg.counter("interleave.horizon.merges").inc(hz_ff)
        if _obs_enabled():
            _note_run("run_traces", cpu_stats, elapsed)
        return RunResult(machine, cpu_stats)
