"""Global-clock interleaver: the Mint-equivalent execution driver.

Each simulated processor is a generator of events (see
:mod:`repro.memsim.events`).  The interleaver always advances the processor
with the smallest clock, so shared-memory interactions (coherence,
spinlocks) happen in a consistent global time order, as they would under an
execution-driven simulator.

Spinlocks are modeled as test-and-test-and-set: a waiting processor spins
on its cached copy of the lock word, re-reading it every ``spin_interval``
cycles; the release store invalidates the waiters' copies, so lock handoff
produces exactly the coherence misses on lock words that the paper observes
(the ``LockSLock`` bars of Figure 7).  All cycles spent acquiring,
spinning on, or releasing metalocks are accounted as *MSync* time.
"""

from time import perf_counter

from repro.memsim.batch import (
    MIN_RESUME as _MIN_RESUME,
    machine_batch_reason as _batch_reason,
    resolve_kernel as _resolve_kernel,
)
from repro.memsim.sanitize import ENABLED as _sanitize
from repro.memsim.stats import CpuStats, merge_cpu_stats
from repro.obs import enabled as _obs_enabled
from repro.obs.metrics import registry as _registry

#: Internal marker meaning "this stream raised StopIteration"; it can sit in
#: a ``pending`` slot when the busy-merge look-ahead hits the end of a stream.
_EXHAUSTED = object()


def _note_run(mode, cpu_stats, elapsed):
    """Record one interleaved run's event volume and dispatch rate.

    Called only when the observability layer is on (``repro.obs.enable``):
    the dispatch loops themselves are never instrumented -- one clock read
    at run start and one summary here keep the hot path untouched.
    """
    reg = _registry()
    events = sum(s.events for s in cpu_stats)
    reg.counter(f"interleave.{mode}.runs").inc()
    reg.counter(f"interleave.{mode}.events").inc(events)
    if elapsed > 0:
        reg.gauge(f"interleave.{mode}.events_per_s").set(
            round(events / elapsed, 1))


class LockProtocolError(RuntimeError):
    """A stream acquired or released a spinlock it must not."""


class RunResult:
    """Outcome of one interleaved multi-processor run."""

    def __init__(self, machine, cpu_stats):
        self.machine = machine
        self.cpu_stats = cpu_stats
        self.total = merge_cpu_stats(cpu_stats)

    @property
    def exec_time(self):
        """Wall-clock cycles: the last processor's finish time."""
        return max(s.finish_time for s in self.cpu_stats)

    def breakdown(self):
        """Return the Figure 6-(a) breakdown as fractions of total cycles."""
        t = self.total
        denom = t.total or 1
        return {"Busy": t.busy / denom, "MSync": t.msync / denom, "Mem": t.mem / denom}

    def mem_breakdown(self):
        """Return the Figure 6-(b) decomposition of memory stall time."""
        groups = self.total.mem_grouped()
        denom = sum(groups.values()) or 1
        return {k: v / denom for k, v in groups.items()}

    def time_components(self):
        """Absolute cycles: Busy, MSync, SMem, PMem (Figures 9 and 11)."""
        t = self.total
        return {"Busy": t.busy, "MSync": t.msync, "SMem": t.smem, "PMem": t.pmem}


class Interleaver:
    """Drives N event streams through one :class:`NumaMachine`."""

    def __init__(self, machine, spin_interval=30):
        self.machine = machine
        self.spin_interval = spin_interval

    def run(self, streams, reset_stats=False):
        """Interleave ``streams`` (one per processor) to completion.

        ``streams`` may be shorter than the machine's node count; stream *i*
        runs on node *i*.  When ``reset_stats`` is true, machine counters are
        zeroed first while cache contents are kept (warm-start experiments).
        """
        machine = self.machine
        if len(streams) > machine.config.n_nodes:
            raise ValueError(
                f"{len(streams)} streams but only {machine.config.n_nodes} nodes"
            )
        if reset_stats:
            machine.reset_stats()
        t0 = perf_counter() if _obs_enabled() else None

        n = len(streams)
        clocks = [0] * n
        cpu_stats = [CpuStats() for _ in range(n)]
        pending = [None] * n
        alive = list(range(n))
        lock_holder = {}
        spin_interval = self.spin_interval
        mread = machine.read
        mwrite = machine.write
        mstats = machine.stats
        drain_time = machine.drain_time
        exhausted = _EXHAUSTED
        # Int sentinel (not float inf): every per-event "now >= limit"
        # check stays an int-int comparison.
        INF = 1 << 62

        while alive:
            # Pick the earliest processor (``alive`` stays sorted, so ties
            # resolve to the lowest index exactly as ``min`` does) and the
            # earliest *other* clock.  While this processor stays strictly
            # below that limit it remains the unique argmin, so its events
            # dispatch in a tight inner loop with no rescan per event.
            k = len(alive)
            if k == 1:
                cpu = alive[0]
                limit = INF
            elif k == 2:
                c0, c1 = alive
                if clocks[c0] <= clocks[c1]:
                    cpu, limit = c0, clocks[c1]
                else:
                    cpu, limit = c1, clocks[c0]
            else:
                # One pass for both the argmin and the runner-up clock
                # (ties keep the earlier index, matching ``min``).
                ait = iter(alive)
                cpu = next(ait)
                best = clocks[cpu]
                limit = INF
                for i in ait:
                    ci = clocks[i]
                    if ci < best:
                        cpu, limit, best = i, best, ci
                    elif ci < limit:
                        limit = ci

            next_ev = streams[cpu].__next__
            stats = cpu_stats[cpu]
            mem_by_class = stats.mem_by_class
            now = clocks[cpu]

            while True:
                ev = pending[cpu]
                if ev is None:
                    try:
                        ev = next_ev()
                    except StopIteration:
                        ev = exhausted
                else:
                    pending[cpu] = None
                if ev is exhausted:
                    alive.remove(cpu)
                    now = drain_time(cpu, now)
                    clocks[cpu] = now
                    stats.finish_time = now
                    if _sanitize:
                        machine.check_invariants()
                    break

                kind = ev[0]
                stats.events += 1

                if kind == 0:  # EV_READ
                    stall = mread(cpu, ev[1], ev[2], ev[3], now)
                    mem_by_class[ev[3]] += stall
                    if len(ev) == 4:
                        stats.busy += 1
                        now += 1 + stall
                    else:
                        # Fused replay row: the reference plus its trailing
                        # busy/hit run ((cycles, hit count) in ev[4:6]).
                        inert = ev[4]
                        stats.busy += 1 + inert
                        now += 1 + stall + inert
                        if ev[5]:
                            mstats.l1_reads += ev[5]
                elif kind == 1:  # EV_WRITE
                    stall = mwrite(cpu, ev[1], ev[2], ev[3], now)
                    mem_by_class[ev[3]] += stall
                    if len(ev) == 4:
                        stats.busy += 1
                        now += 1 + stall
                    else:
                        inert = ev[4]
                        stats.busy += 1 + inert
                        now += 1 + stall + inert
                        if ev[5]:
                            mstats.l1_reads += ev[5]
                elif kind == 2:  # EV_BUSY
                    # Batched merge: absorb the whole run of busy events in
                    # one dispatch (they never touch the machine), parking
                    # the first non-busy event -- or the end-of-stream
                    # marker -- in the pending slot.
                    cycles = ev[1]
                    while True:
                        try:
                            nxt = next_ev()
                        except StopIteration:
                            pending[cpu] = exhausted
                            break
                        if nxt[0] == 2:
                            cycles += nxt[1]
                            stats.events += 1
                        else:
                            pending[cpu] = nxt
                            break
                    stats.busy += cycles
                    now += cycles
                elif kind == 5:  # EV_HIT: always-hit stack/static references
                    count = ev[1]
                    stats.busy += count
                    mstats.l1_reads += count
                    now += count
                elif kind == 3:  # EV_LOCK_ACQ
                    lock_id, addr, cls = ev[1], ev[2], ev[3]
                    holder = lock_holder.get(lock_id)
                    if holder == cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} re-acquired spinlock {lock_id!r}"
                        )
                    if holder is None:
                        # Test-and-set: read-modify-write on the lock word.
                        cost = 2
                        cost += mread(cpu, addr, 4, cls, now)
                        cost += mwrite(cpu, addr, 4, cls, now + cost)
                        stats.msync += cost
                        now += cost
                        lock_holder[lock_id] = cpu
                    else:
                        # Spin on the cached copy and retry later.  The new
                        # clock is never below the holder's, so the retry
                        # always leaves the inner loop and rescans.
                        wait = spin_interval
                        holder_clock = clocks[holder]
                        if holder_clock > now + wait:
                            wait = holder_clock - now
                        wait += mread(cpu, addr, 4, cls, now)
                        stats.msync += wait
                        now += wait
                        pending[cpu] = ev
                elif kind == 4:  # EV_LOCK_REL
                    lock_id, addr, cls = ev[1], ev[2], ev[3]
                    if lock_holder.get(lock_id) != cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} released spinlock {lock_id!r} "
                            "it does not hold"
                        )
                    del lock_holder[lock_id]
                    cost = 1 + mwrite(cpu, addr, 4, cls, now)
                    stats.msync += cost
                    now += cost
                else:
                    raise ValueError(f"unknown event kind {kind!r}")

                if now >= limit:
                    clocks[cpu] = now
                    break

        if t0 is not None:
            _note_run("run", cpu_stats, perf_counter() - t0)
        return RunResult(machine, cpu_stats)

    def run_traces(self, traces, sink=None, reset_stats=False, kernel=None):
        """Replay recorded traces array-directly: no generators, no tuples.

        ``traces`` holds one :class:`~repro.core.tracecache.QueryTrace` per
        processor (trace *i* runs on node *i*).  Instead of resuming a
        ``replay()`` generator and unpacking an event tuple per step, each
        processor keeps an index cursor into its trace's columnar arrays
        and events dispatch straight from the columns -- the replay
        equivalent of :meth:`run`, and bit-identical to it on replay
        streams: same cycles, same machine counters, same per-CPU
        accounting (``tests/test_tracecache.py`` asserts this for all 17
        queries).  A contended lock acquire retries by *not* advancing the
        cursor, mirroring the ``pending``-slot redispatch of :meth:`run`.

        ``kernel`` picks the dispatch engine: ``"scalar"`` (the pure-Python
        reference loop), ``"batched"`` (plan-driven inlined dispatch plus
        vectorized retirement of non-interacting runs; see
        :mod:`repro.memsim.batch`), or ``None``/``"auto"`` to follow
        ``RunConfig.kernel`` / ``REPRO_KERNEL`` and default to batched
        when numpy is available.  A batched request the machine cannot
        serve (prefetching on, or numpy missing) falls back to scalar and
        counts the reason under ``interleave.kernel.fallback.*``.  Both
        engines are bit-identical by construction and by test.

        When ``sink`` is given, ``sink[i]`` is set to trace *i*'s recorded
        result rows as its stream completes, like ``replay(sink=...)``.
        """
        if _resolve_kernel(kernel) == "batched":
            reason = _batch_reason(self.machine)
            if reason is None:
                return self._run_traces_batched(traces, sink, reset_stats)
            _registry().counter("interleave.kernel.fallback." + reason).inc()
        return self._run_traces_scalar(traces, sink, reset_stats)

    def _run_traces_scalar(self, traces, sink, reset_stats):
        """The scalar ``run_traces`` engine: one dispatch per trace row.

        This is the reference oracle the batched kernel is checked
        against; its dispatch semantics define bit-identity.
        """
        machine = self.machine
        if len(traces) > machine.config.n_nodes:
            raise ValueError(
                f"{len(traces)} traces but only {machine.config.n_nodes} nodes"
            )
        if reset_stats:
            machine.reset_stats()
        t0 = perf_counter()

        n = len(traces)
        clocks = [0] * n
        cpu_stats = [CpuStats() for _ in range(n)]
        cursors = [0] * n
        ends = [len(t) for t in traces]
        # Plain-list column views (memoized on each trace): lists index
        # noticeably faster than ``array`` objects because they skip the
        # per-access int boxing, and a sweep replays the same trace dozens
        # of times, so the conversion is paid once per trace, not per run.
        columns = [t.columns() for t in traces]
        kinds_col = [c[0] for c in columns]
        a_col = [c[1] for c in columns]
        b_col = [c[2] for c in columns]
        c_col = [c[3] for c in columns]
        d_col = [c[4] for c in columns]
        e_col = [c[5] for c in columns]
        lock_tables = [t.lock_ids for t in traces]
        alive = list(range(n))
        lock_holder = {}
        spin_interval = self.spin_interval
        mread = machine.read
        mwrite = machine.write
        mstats = machine.stats
        drain_time = machine.drain_time
        # Fused L1 read-hit fast path: a single-line load that hits the
        # primary cache touches nothing but the L1 set and the read
        # counter, so the dispatch loop probes it inline and only calls
        # machine.read for misses and line-crossing accesses.  Disabled
        # when prefetching is on -- then even a hit must check the
        # pending-fill table, which stays machine.read's job.
        l1_shift = machine._l1_shift
        l1_mask = machine._l1_mask
        l1_sets = machine._l1_sets
        fuse_hits = not machine._prefetch_data
        # Int sentinel (not float inf): every per-event "now >= limit"
        # check stays an int-int comparison.
        INF = 1 << 62

        # repro: hot -- the replay dispatch loop; see rules_hot.py.
        while alive:
            # Identical argmin/limit selection to :meth:`run`: the chosen
            # processor dispatches in a tight loop while it stays strictly
            # the earliest clock.
            k = len(alive)
            if k == 1:
                cpu = alive[0]
                limit = INF
            elif k == 2:
                c0, c1 = alive
                if clocks[c0] <= clocks[c1]:
                    cpu, limit = c0, clocks[c1]
                else:
                    cpu, limit = c1, clocks[c0]
            else:
                ait = iter(alive)
                cpu = next(ait)
                best = clocks[cpu]
                limit = INF
                for i in ait:
                    ci = clocks[i]
                    if ci < best:
                        cpu, limit, best = i, best, ci
                    elif ci < limit:
                        limit = ci

            tk = kinds_col[cpu]
            ta = a_col[cpu]
            tb = b_col[cpu]
            tc = c_col[cpu]
            td = d_col[cpu]
            te = e_col[cpu]
            lock_ids = lock_tables[cpu]
            cpu_l1 = l1_sets[cpu]
            pos = cursors[cpu]
            end = ends[cpu]
            stats = cpu_stats[cpu]
            mem_by_class = stats.mem_by_class
            now = clocks[cpu]
            # Stats deltas accumulate in locals and flush when the
            # dispatch run ends; nothing inside the run reads them.
            # Dispatched events are the cursor advance plus lock retries
            # (the only dispatch that leaves the cursor in place), so the
            # loop body never counts them one by one.
            start_pos = pos
            retry_acc = busy_acc = msync_acc = l1_acc = 0

            while True:
                if pos >= end:
                    alive.remove(cpu)
                    now = drain_time(cpu, now)
                    clocks[cpu] = now
                    stats.finish_time = now
                    if sink is not None:
                        sink[cpu] = traces[cpu].rows
                    # Cold by the HOT lint's sanitizer-gate exemption: the
                    # sweep runs once per finished stream, not per event.
                    if _sanitize:
                        machine.check_invariants()
                    break

                kind = tk[pos]

                if kind == 0:  # EV_READ (+ fused trailing busy/hit run)
                    addr = ta[pos]
                    size = tb[pos]
                    stall = -1
                    if fuse_hits:
                        first = addr >> l1_shift
                        if first == (addr + size - 1) >> l1_shift:
                            ways = cpu_l1[first & l1_mask]
                            if first in ways:
                                if ways[0] != first:
                                    ways.remove(first)
                                    ways.insert(0, first)
                                l1_acc += 1 if size <= 4 else (size + 3) >> 2
                                stall = 0
                    if stall < 0:
                        stall = mread(cpu, addr, size, tc[pos], now)
                        if stall:
                            mem_by_class[tc[pos]] += stall
                    inert = td[pos]
                    busy_acc += 1 + inert
                    now += 1 + stall + inert
                    l1_acc += te[pos]
                    pos += 1
                elif kind == 1:  # EV_WRITE (+ fused trailing busy/hit run)
                    cls = tc[pos]
                    stall = mwrite(cpu, ta[pos], tb[pos], cls, now)
                    inert = td[pos]
                    busy_acc += 1 + inert
                    if stall:
                        mem_by_class[cls] += stall
                        now += 1 + stall + inert
                    else:
                        now += 1 + inert
                    l1_acc += te[pos]
                    pos += 1
                elif kind == 2:  # EV_BUSY (already coalesced at record time)
                    cycles = ta[pos]
                    busy_acc += cycles
                    now += cycles
                    pos += 1
                elif kind == 5:  # EV_HIT: always-hit stack/static references
                    count = ta[pos]
                    busy_acc += count
                    l1_acc += count
                    now += count
                    pos += 1
                elif kind == 3:  # EV_LOCK_ACQ
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    holder = lock_holder.get(lock_id)
                    if holder == cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} re-acquired spinlock {lock_id!r}"
                        )
                    if holder is None:
                        cost = 2
                        cost += mread(cpu, addr, 4, cls, now)
                        cost += mwrite(cpu, addr, 4, cls, now + cost)
                        msync_acc += cost
                        now += cost
                        lock_holder[lock_id] = cpu
                        pos += 1
                    else:
                        # Spin and retry: the cursor stays on this event,
                        # so the next dispatch re-attempts the acquire --
                        # and the new clock is never below the holder's,
                        # so the retry always rescans first.
                        wait = spin_interval
                        holder_clock = clocks[holder]
                        if holder_clock > now + wait:
                            wait = holder_clock - now
                        wait += mread(cpu, addr, 4, cls, now)
                        msync_acc += wait
                        now += wait
                        retry_acc += 1
                else:  # EV_LOCK_REL (kind == 4)
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    if lock_holder.get(lock_id) != cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} released spinlock {lock_id!r} "
                            "it does not hold"
                        )
                    del lock_holder[lock_id]
                    cost = 1 + mwrite(cpu, addr, 4, cls, now)
                    msync_acc += cost
                    now += cost
                    pos += 1

                if now >= limit:
                    clocks[cpu] = now
                    cursors[cpu] = pos
                    break

            stats.events += (pos - start_pos) + retry_acc
            stats.busy += busy_acc
            stats.msync += msync_acc
            if l1_acc:
                mstats.l1_reads += l1_acc

        elapsed = perf_counter() - t0
        reg = _registry()
        reg.counter("interleave.kernel.scalar.runs").inc()
        reg.counter("interleave.kernel.scalar.seconds").inc(elapsed)
        if _obs_enabled():
            _note_run("run_traces", cpu_stats, elapsed)
        return RunResult(machine, cpu_stats)

    def _run_traces_batched(self, traces, sink, reset_stats):
        """The batched ``run_traces`` engine: plan-driven inlined dispatch.

        Identical window selection, per-event costs, and accounting to
        :meth:`_run_traces_scalar`, restructured around the per-trace
        :class:`~repro.memsim.batch.BatchPlan` in two tiers:

        * Rows the plan tagged (single-line reads and writes; the vast
          majority of a DSS trace) retire through copies of the machine's
          read/write hot paths inlined into the dispatch loop.  The
          plan's ``mem_lines`` column hands the loop the precomputed
          primary-line tag, so the per-row method call, address
          decomposition, and attribute chases of scalar dispatch all
          disappear; counter updates accumulate in locals and flush at
          window boundaries.  Every machine-state transition -- cache
          fills, LRU moves, directory transactions, write-buffer issue --
          happens one row at a time in the same global order at the same
          cycle as under scalar dispatch.
        * Qualifying *runs* (single-CPU reads over resident lines plus
          busy/hit rows, >= ``MIN_BATCH`` long) retire in bulk: one
          gather of the machine's L1 tag mirror answers every hit check
          at once, cut at the first miss and at the window's clock limit
          -- exactly where scalar dispatch would stop.  The mirror is
          built only when some plan actually carries runs, so miss-dense
          traces never pay for its maintenance.

        Rows the plan marked slow (line-crossing accesses, lock events,
        busy/hit rows) dispatch through branches copied verbatim from
        the scalar engine.  Bit-identity is asserted
        by ``tests/test_batch.py`` and the trace-cache suite under
        ``REPRO_KERNEL=batched``.
        """
        machine = self.machine
        if len(traces) > machine.config.n_nodes:
            raise ValueError(
                f"{len(traces)} traces but only {machine.config.n_nodes} nodes"
            )
        l1_shift = machine._l1_shift
        plans = [t.batch_plan(l1_shift, machine._l1_nsets) for t in traces]
        if any(p is None for p in plans):
            _registry().counter("interleave.kernel.fallback.no_numpy").inc()
            return self._run_traces_scalar(traces, sink, reset_stats)
        # The gather tier engages only when a plan actually carries
        # qualifying runs *and* the L1 can be mirrored (direct-mapped);
        # otherwise neither the mirror nor the run walk costs anything.
        gather = any(p.run_starts for p in plans)
        if gather:
            gather = machine._ensure_l1_mirror() is not None
        if reset_stats:
            machine.reset_stats()
        t0 = perf_counter()

        n = len(traces)
        clocks = [0] * n
        cpu_stats = [CpuStats() for _ in range(n)]
        cursors = [0] * n
        ends = [len(t) for t in traces]
        total_rows = sum(ends)
        INF = 1 << 62
        if gather:
            run_starts = [p.run_starts[0] if p.run_starts else INF
                          for p in plans]
            run_ends = [p.run_ends[0] if p.run_ends else INF for p in plans]
        else:
            run_starts = [INF] * n
            run_ends = [INF] * n
        run_idx = [0] * n
        min_resume = _MIN_RESUME
        batched_rows = 0
        batched_disp = 0
        scalar_rows = 0
        alive = list(range(n))
        lock_holder = {}
        spin_interval = self.spin_interval
        mread = machine.read
        mwrite = machine.write
        drain_time = machine.drain_time
        # Aliases for the inlined read/write hot paths, bound after the
        # stats reset (which replaces the counter containers).  Every
        # aliased container is mutated in place by the machine's own
        # helpers, so the aliases never go stale mid-run.
        mstats = machine.stats
        l1rm = mstats.l1_read_misses
        l2rm = mstats.l2_read_misses
        l1_sets = machine._l1_sets
        l2_sets = machine._l2_sets
        seen1_col = [c._seen for c in machine.l1]
        inv1_col = [c._invalidated for c in machine.l1]
        seen2_col = [c._seen for c in machine.l2]
        inv2_col = [c._invalidated for c in machine.l2]
        l1_assoc = machine.l1[0].assoc
        l2_assoc = machine.l2[0].assoc
        wbs = machine.wb
        wb_cap = wbs[0].capacity
        dirty = machine.directory._dirty
        dirty_get = dirty.get
        sharers = machine.directory._sharers
        port_free = machine._port_free
        home_fn = machine.home_fn
        mtags = machine._l1_tags
        inval_others = machine._invalidate_others
        evict_l2 = machine._evict_l2
        l1_mask = machine._l1_mask
        l2_mask = machine._l2_mask
        ratio_shift = machine._ratio_shift
        l2_shift = machine._l2_shift
        lat_l2 = machine.lat_l2
        lat_local = machine.lat_local
        lat_2hop = machine.lat_2hop
        lat_3hop = machine.lat_3hop
        wb_retire = machine._wb_retire

        # Per-CPU dispatch context, one tuple per processor.  The global
        # clock hands out short windows (a couple of rows on average), so
        # per-window rebinding dominates unless every loop-invariant
        # binding lands in the frame with a single sequence unpack.
        ctxs = []
        for i in range(n):
            t = traces[i]
            p = plans[i]
            cols = t.columns()
            wb_i = machine.wb[i]
            if gather:
                g = (p.sets, p.lines, p.ccost, p.cl1r, p.run_starts,
                     p.run_ends, len(p.run_starts))
            else:
                g = (None, None, None, None, None, None, 0)
            ctxs.append((
                cols[0], cols[1], cols[2], cols[3], cols[4], cols[5],
                p.mem_lines, p.mcost, p.mreads, t.lock_ids,
                l1_sets[i], l2_sets[i], seen1_col[i], inv1_col[i],
                seen2_col[i], inv2_col[i], wb_i, wb_i.entries,
                wb_i.entries.popleft, wb_i.entries.append,
                mtags[i] if mtags is not None else None,
                ends[i], cpu_stats[i], cpu_stats[i].mem_by_class) + g)

        # repro: hot -- the batched replay dispatch loop; see rules_hot.py.
        while alive:
            # Identical argmin/limit selection to :meth:`run`: the chosen
            # processor dispatches in a tight loop while it stays strictly
            # the earliest clock.
            k = len(alive)
            if k == 1:
                cpu = alive[0]
                limit = INF
            elif k == 2:
                c0, c1 = alive
                if clocks[c0] <= clocks[c1]:
                    cpu, limit = c0, clocks[c1]
                else:
                    cpu, limit = c1, clocks[c0]
            else:
                ait = iter(alive)
                cpu = next(ait)
                best = clocks[cpu]
                limit = INF
                for i in ait:
                    ci = clocks[i]
                    if ci < best:
                        cpu, limit, best = i, best, ci
                    elif ci < limit:
                        limit = ci

            (tk, ta, tb, tc, td, te, pl, pmc, pmr, lock_ids,
             cpu_l1, cpu_l2, seen1, inv1, seen2, inv2, wb, wb_entries,
             wb_pop, wb_app, tags1, end, stats, mem_by_class,
             psets, plines, pccost, pcl1r, prs, pre, n_runs) = ctxs[cpu]
            ri = run_idx[cpu]
            nxt_start = run_starts[cpu]
            nxt_end = run_ends[cpu]
            pos = cursors[cpu]
            now = clocks[cpu]
            start_pos = pos
            retry_acc = busy_acc = msync_acc = 0
            l1_acc = l1w_acc = l2r_acc = l2wm_acc = 0

            while True:
                if pos >= end:
                    alive.remove(cpu)
                    now = drain_time(cpu, now)
                    clocks[cpu] = now
                    stats.finish_time = now
                    if sink is not None:
                        sink[cpu] = traces[cpu].rows
                    # Cold by the HOT lint's sanitizer-gate exemption: the
                    # sweep runs once per finished stream, not per event.
                    if _sanitize:
                        machine.check_invariants()
                    break

                if pos >= nxt_start:
                    if nxt_end - pos >= min_resume:
                        # Gather tier: one mirror gather answers every hit
                        # check of the run remainder, then the prefix is
                        # cut at the first miss and at the clock limit --
                        # exactly where scalar dispatch would leave the
                        # fused-hit fast path or the window.
                        hitv = tags1[psets[pos:nxt_end]] == plines[pos:nxt_end]
                        nhit = int(hitv.argmin())
                        if hitv[nhit]:
                            nhit = nxt_end - pos
                        if nhit:
                            if pos:
                                prev_c = int(pccost[pos - 1])
                                prev_r = int(pcl1r[pos - 1])
                            else:
                                prev_c = prev_r = 0
                            if limit != INF:
                                ncut = int(pccost[pos:nxt_end].searchsorted(
                                    limit - now + prev_c)) + 1
                                if ncut < nhit:
                                    nhit = ncut
                            last = pos + nhit - 1
                            delta = int(pccost[last]) - prev_c
                            busy_acc += delta
                            now += delta
                            l1_acc += int(pcl1r[last]) - prev_r
                            pos = last + 1
                            batched_rows += nhit
                            batched_disp += 1
                            if now >= limit:
                                clocks[cpu] = now
                                cursors[cpu] = pos
                                run_idx[cpu] = ri
                                run_starts[cpu] = nxt_start
                                run_ends[cpu] = nxt_end
                                break
                            continue
                        # First row of the remainder misses: dispatch it
                        # through the inline tier below, then re-enter.
                    elif pos >= nxt_end:
                        ri += 1
                        if ri < n_runs:
                            nxt_start = prs[ri]
                            nxt_end = pre[ri]
                        else:
                            nxt_start = nxt_end = INF

                kind = tk[pos]

                if kind == 0:  # EV_READ (+ fused trailing busy/hit run)
                    line1 = pl[pos]
                    if line1 >= 0:
                        # Inline tier: NumaMachine.read's single-line hot
                        # path with the plan's precomputed line tag, word
                        # count (pmr: words + fused hits), and retire cost
                        # (pmc: 1 + fused busy cycles).
                        l1_acc += pmr[pos]
                        ways = cpu_l1[line1 & l1_mask]
                        if line1 in ways:
                            if ways[0] != line1:
                                ways.remove(line1)
                                ways.insert(0, line1)
                            cost = pmc[pos]
                            busy_acc += cost
                            now += cost
                        else:
                            cls = tc[pos]
                            l1rm[cls][
                                0 if line1 not in seen1
                                else 2 if line1 in inv1 else 1
                            ] += 1
                            line2 = line1 >> ratio_shift
                            l2r_acc += 1
                            ways2 = cpu_l2[line2 & l2_mask]
                            if line2 in ways2:
                                if ways2[0] != line2:
                                    ways2.remove(line2)
                                    ways2.insert(0, line2)
                                stall = lat_l2
                            else:
                                l2rm[cls][
                                    0 if line2 not in seen2
                                    else 2 if line2 in inv2 else 1
                                ] += 1
                                home = home_fn(line2 << l2_shift)
                                owner = dirty_get(line2)
                                if owner is not None and owner != cpu:
                                    stall = lat_2hop if home == cpu \
                                        else lat_3hop
                                    del dirty[line2]
                                else:
                                    stall = lat_local if home == cpu \
                                        else lat_2hop
                                holders = sharers.get(line2)
                                if holders is None:
                                    # repro: allow[HOT001] only on L2 miss
                                    sharers[line2] = {cpu}
                                else:
                                    holders.add(cpu)
                                ways2.insert(0, line2)
                                seen2.add(line2)
                                inv2.discard(line2)
                                if len(ways2) > l2_assoc:
                                    evict_l2(cpu, ways2.pop())
                                if stall > lat_l2:
                                    # Demand fill from beyond the L2 queues
                                    # behind in-flight fills on this node's
                                    # memory port.
                                    wait = port_free[cpu] - now
                                    if wait > 0:
                                        stall += wait
                                    port_free[cpu] = now + stall
                            ways.insert(0, line1)
                            seen1.add(line1)
                            inv1.discard(line1)
                            if len(ways) > l1_assoc:
                                ways.pop()
                            if tags1 is not None:
                                tags1[line1 & l1_mask] = line1
                            mem_by_class[cls] += stall
                            cost = pmc[pos]
                            busy_acc += cost
                            now += cost + stall
                        pos += 1
                    else:
                        # Line-crossing load: NumaMachine.read's multi-line
                        # path with _read_line inlined per primary line
                        # (tuple copies average ~2-4 lines; the per-line
                        # method call was the next-hottest cost after the
                        # single-line paths moved inline).
                        scalar_rows += 1
                        addr = ta[pos]
                        size = tb[pos]
                        cls = tc[pos]
                        first = addr >> l1_shift
                        last = (addr + size - 1) >> l1_shift
                        nlines = last - first + 1
                        words = (size + 3) >> 2
                        if words > nlines:
                            l1_acc += words - nlines
                        stall = 0
                        while True:
                            l1_acc += 1
                            ways = cpu_l1[first & l1_mask]
                            if first in ways:
                                if ways[0] != first:
                                    ways.remove(first)
                                    ways.insert(0, first)
                            else:
                                l1rm[cls][
                                    0 if first not in seen1
                                    else 2 if first in inv1 else 1
                                ] += 1
                                line2 = first >> ratio_shift
                                l2r_acc += 1
                                ways2 = cpu_l2[line2 & l2_mask]
                                if line2 in ways2:
                                    if ways2[0] != line2:
                                        ways2.remove(line2)
                                        ways2.insert(0, line2)
                                    lat = lat_l2
                                else:
                                    l2rm[cls][
                                        0 if line2 not in seen2
                                        else 2 if line2 in inv2 else 1
                                    ] += 1
                                    home = home_fn(line2 << l2_shift)
                                    owner = dirty_get(line2)
                                    if owner is not None and owner != cpu:
                                        lat = lat_2hop if home == cpu \
                                            else lat_3hop
                                        del dirty[line2]
                                    else:
                                        lat = lat_local if home == cpu \
                                            else lat_2hop
                                    holders = sharers.get(line2)
                                    if holders is None:
                                        # repro: allow[HOT001] only on L2 miss
                                        sharers[line2] = {cpu}
                                    else:
                                        holders.add(cpu)
                                    ways2.insert(0, line2)
                                    seen2.add(line2)
                                    inv2.discard(line2)
                                    if len(ways2) > l2_assoc:
                                        evict_l2(cpu, ways2.pop())
                                    if lat > lat_l2:
                                        # Fill queues behind in-flight fills
                                        # on this node's memory port.
                                        now_l = now + stall
                                        wait = port_free[cpu] - now_l
                                        if wait > 0:
                                            lat += wait
                                        port_free[cpu] = now_l + lat
                                ways.insert(0, first)
                                seen1.add(first)
                                inv1.discard(first)
                                if len(ways) > l1_assoc:
                                    ways.pop()
                                if tags1 is not None:
                                    tags1[first & l1_mask] = first
                                stall += lat
                            if first >= last:
                                break
                            first += 1
                        if stall:
                            mem_by_class[cls] += stall
                        inert = td[pos]
                        busy_acc += 1 + inert
                        now += 1 + stall + inert
                        l1_acc += te[pos]
                        pos += 1
                elif kind == 1:  # EV_WRITE (+ fused trailing busy/hit run)
                    line1 = pl[pos]
                    if line1 >= 0:
                        # Inline tier: NumaMachine.write's single-line hot
                        # path, including the write-buffer issue.
                        size = tb[pos]
                        l1w_acc += 1 if size <= 4 else (size + 3) >> 2
                        line2 = line1 >> ratio_shift
                        ways = cpu_l1[line1 & l1_mask]
                        if line1 in ways and ways[0] != line1:
                            ways.remove(line1)
                            ways.insert(0, line1)
                        ways2 = cpu_l2[line2 & l2_mask]
                        if line2 in ways2:
                            if ways2[0] != line2:
                                ways2.remove(line2)
                                ways2.insert(0, line2)
                            if dirty_get(line2) == cpu:
                                retire = wb_retire
                            else:
                                # Upgrade: ask the home directory,
                                # invalidate other copies.
                                home = home_fn(line2 << l2_shift)
                                retire = lat_local if home == cpu \
                                    else lat_2hop
                                inval_others(cpu, line2)
                        else:
                            l2wm_acc += 1
                            home = home_fn(line2 << l2_shift)
                            owner = dirty_get(line2)
                            if owner is not None and owner != cpu:
                                retire = lat_2hop if home == cpu \
                                    else lat_3hop
                            else:
                                retire = lat_local if home == cpu \
                                    else lat_2hop
                            inval_others(cpu, line2)
                            ways2.insert(0, line2)
                            seen2.add(line2)
                            inv2.discard(line2)
                            if len(ways2) > l2_assoc:
                                evict_l2(cpu, ways2.pop())
                        # Write-buffer issue (inlined WriteBuffer.issue);
                        # wb state stays on the object because lock rows
                        # reach it through machine.write mid-window.
                        while wb_entries and wb_entries[0] <= now:
                            wb_pop()
                        stall = 0
                        if len(wb_entries) >= wb_cap:
                            oldest = wb_pop()
                            if oldest > now:
                                stall = oldest - now
                                wb.stall_cycles += stall
                        completion = wb._last_completion
                        issue_time = now + stall
                        if issue_time > completion:
                            completion = issue_time
                        completion += retire
                        wb._last_completion = completion
                        wb_app(completion)
                        cost = pmc[pos]
                        busy_acc += cost
                        if stall:
                            mem_by_class[tc[pos]] += stall
                            now += cost + stall
                        else:
                            now += cost
                        l1_acc += pmr[pos]
                        pos += 1
                    else:
                        # Line-crossing store: NumaMachine.write's
                        # multi-line path with _write_line inlined per
                        # primary line (tuple stores average ~4 lines).
                        scalar_rows += 1
                        addr = ta[pos]
                        size = tb[pos]
                        cls = tc[pos]
                        first = addr >> l1_shift
                        last = (addr + size - 1) >> l1_shift
                        nlines = last - first + 1
                        words = (size + 3) >> 2
                        if words > nlines:
                            l1w_acc += words - nlines
                        stall = 0
                        while True:
                            l1w_acc += 1
                            now_l = now + stall
                            ways = cpu_l1[first & l1_mask]
                            if first in ways and ways[0] != first:
                                ways.remove(first)
                                ways.insert(0, first)
                            line2 = first >> ratio_shift
                            ways2 = cpu_l2[line2 & l2_mask]
                            if line2 in ways2:
                                if ways2[0] != line2:
                                    ways2.remove(line2)
                                    ways2.insert(0, line2)
                                if dirty_get(line2) == cpu:
                                    retire = wb_retire
                                else:
                                    # Upgrade: ask the home directory,
                                    # invalidate other copies.
                                    home = home_fn(line2 << l2_shift)
                                    retire = lat_local if home == cpu \
                                        else lat_2hop
                                    inval_others(cpu, line2)
                            else:
                                l2wm_acc += 1
                                home = home_fn(line2 << l2_shift)
                                owner = dirty_get(line2)
                                if owner is not None and owner != cpu:
                                    retire = lat_2hop if home == cpu \
                                        else lat_3hop
                                else:
                                    retire = lat_local if home == cpu \
                                        else lat_2hop
                                inval_others(cpu, line2)
                                ways2.insert(0, line2)
                                seen2.add(line2)
                                inv2.discard(line2)
                                if len(ways2) > l2_assoc:
                                    evict_l2(cpu, ways2.pop())
                            # Write-buffer issue at this line's clock.
                            while wb_entries and wb_entries[0] <= now_l:
                                wb_pop()
                            wstall = 0
                            if len(wb_entries) >= wb_cap:
                                oldest = wb_pop()
                                if oldest > now_l:
                                    wstall = oldest - now_l
                                    wb.stall_cycles += wstall
                            completion = wb._last_completion
                            issue_time = now_l + wstall
                            if issue_time > completion:
                                completion = issue_time
                            completion += retire
                            wb._last_completion = completion
                            wb_app(completion)
                            stall += wstall
                            if first >= last:
                                break
                            first += 1
                        inert = td[pos]
                        busy_acc += 1 + inert
                        if stall:
                            mem_by_class[cls] += stall
                            now += 1 + stall + inert
                        else:
                            now += 1 + inert
                        l1_acc += te[pos]
                        pos += 1
                elif kind == 2:  # EV_BUSY (already coalesced at record time)
                    scalar_rows += 1
                    cycles = ta[pos]
                    busy_acc += cycles
                    now += cycles
                    pos += 1
                elif kind == 5:  # EV_HIT: always-hit stack/static references
                    scalar_rows += 1
                    count = ta[pos]
                    busy_acc += count
                    l1_acc += count
                    now += count
                    pos += 1
                elif kind == 3:  # EV_LOCK_ACQ
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    holder = lock_holder.get(lock_id)
                    if holder == cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} re-acquired spinlock {lock_id!r}"
                        )
                    if holder is None:
                        scalar_rows += 1
                        cost = 2
                        cost += mread(cpu, addr, 4, cls, now)
                        cost += mwrite(cpu, addr, 4, cls, now + cost)
                        msync_acc += cost
                        now += cost
                        lock_holder[lock_id] = cpu
                        pos += 1
                    else:
                        # Spin and retry: the cursor stays on this event,
                        # so the next dispatch re-attempts the acquire --
                        # and the new clock is never below the holder's,
                        # so the retry always rescans first.
                        wait = spin_interval
                        holder_clock = clocks[holder]
                        if holder_clock > now + wait:
                            wait = holder_clock - now
                        wait += mread(cpu, addr, 4, cls, now)
                        msync_acc += wait
                        now += wait
                        retry_acc += 1
                else:  # EV_LOCK_REL (kind == 4)
                    scalar_rows += 1
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    if lock_holder.get(lock_id) != cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} released spinlock {lock_id!r} "
                            "it does not hold"
                        )
                    del lock_holder[lock_id]
                    cost = 1 + mwrite(cpu, addr, 4, cls, now)
                    msync_acc += cost
                    now += cost
                    pos += 1

                if now >= limit:
                    clocks[cpu] = now
                    cursors[cpu] = pos
                    run_idx[cpu] = ri
                    run_starts[cpu] = nxt_start
                    run_ends[cpu] = nxt_end
                    break

            stats.events += (pos - start_pos) + retry_acc
            stats.busy += busy_acc
            stats.msync += msync_acc
            if l1_acc:
                mstats.l1_reads += l1_acc
            if l1w_acc:
                mstats.l1_writes += l1w_acc
            if l2r_acc:
                mstats.l2_reads += l2r_acc
            if l2wm_acc:
                mstats.l2_write_misses += l2wm_acc

        elapsed = perf_counter() - t0
        reg = _registry()
        reg.counter("interleave.kernel.batched.runs").inc()
        reg.counter("interleave.kernel.batched.seconds").inc(elapsed)
        reg.counter("interleave.batch.rows").inc(batched_rows)
        reg.counter("interleave.batch.dispatches").inc(batched_disp)
        reg.counter("interleave.batch.inline_rows").inc(
            total_rows - batched_rows - scalar_rows)
        reg.counter("interleave.batch.scalar_rows").inc(scalar_rows)
        if _obs_enabled():
            _note_run("run_traces", cpu_stats, elapsed)
        return RunResult(machine, cpu_stats)
