"""Global-clock interleaver: the Mint-equivalent execution driver.

Each simulated processor is a generator of events (see
:mod:`repro.memsim.events`).  The interleaver always advances the processor
with the smallest clock, so shared-memory interactions (coherence,
spinlocks) happen in a consistent global time order, as they would under an
execution-driven simulator.

Spinlocks are modeled as test-and-test-and-set: a waiting processor spins
on its cached copy of the lock word, re-reading it every ``spin_interval``
cycles; the release store invalidates the waiters' copies, so lock handoff
produces exactly the coherence misses on lock words that the paper observes
(the ``LockSLock`` bars of Figure 7).  All cycles spent acquiring,
spinning on, or releasing metalocks are accounted as *MSync* time.
"""

from time import perf_counter

from repro.memsim.sanitize import ENABLED as _sanitize
from repro.memsim.stats import CpuStats, merge_cpu_stats
from repro.obs import enabled as _obs_enabled
from repro.obs.metrics import registry as _registry

#: Internal marker meaning "this stream raised StopIteration"; it can sit in
#: a ``pending`` slot when the busy-merge look-ahead hits the end of a stream.
_EXHAUSTED = object()


def _note_run(mode, cpu_stats, elapsed):
    """Record one interleaved run's event volume and dispatch rate.

    Called only when the observability layer is on (``repro.obs.enable``):
    the dispatch loops themselves are never instrumented -- one clock read
    at run start and one summary here keep the hot path untouched.
    """
    reg = _registry()
    events = sum(s.events for s in cpu_stats)
    reg.counter(f"interleave.{mode}.runs").inc()
    reg.counter(f"interleave.{mode}.events").inc(events)
    if elapsed > 0:
        reg.gauge(f"interleave.{mode}.events_per_s").set(
            round(events / elapsed, 1))


class LockProtocolError(RuntimeError):
    """A stream acquired or released a spinlock it must not."""


class RunResult:
    """Outcome of one interleaved multi-processor run."""

    def __init__(self, machine, cpu_stats):
        self.machine = machine
        self.cpu_stats = cpu_stats
        self.total = merge_cpu_stats(cpu_stats)

    @property
    def exec_time(self):
        """Wall-clock cycles: the last processor's finish time."""
        return max(s.finish_time for s in self.cpu_stats)

    def breakdown(self):
        """Return the Figure 6-(a) breakdown as fractions of total cycles."""
        t = self.total
        denom = t.total or 1
        return {"Busy": t.busy / denom, "MSync": t.msync / denom, "Mem": t.mem / denom}

    def mem_breakdown(self):
        """Return the Figure 6-(b) decomposition of memory stall time."""
        groups = self.total.mem_grouped()
        denom = sum(groups.values()) or 1
        return {k: v / denom for k, v in groups.items()}

    def time_components(self):
        """Absolute cycles: Busy, MSync, SMem, PMem (Figures 9 and 11)."""
        t = self.total
        return {"Busy": t.busy, "MSync": t.msync, "SMem": t.smem, "PMem": t.pmem}


class Interleaver:
    """Drives N event streams through one :class:`NumaMachine`."""

    def __init__(self, machine, spin_interval=30):
        self.machine = machine
        self.spin_interval = spin_interval

    def run(self, streams, reset_stats=False):
        """Interleave ``streams`` (one per processor) to completion.

        ``streams`` may be shorter than the machine's node count; stream *i*
        runs on node *i*.  When ``reset_stats`` is true, machine counters are
        zeroed first while cache contents are kept (warm-start experiments).
        """
        machine = self.machine
        if len(streams) > machine.config.n_nodes:
            raise ValueError(
                f"{len(streams)} streams but only {machine.config.n_nodes} nodes"
            )
        if reset_stats:
            machine.reset_stats()
        t0 = perf_counter() if _obs_enabled() else None

        n = len(streams)
        clocks = [0] * n
        cpu_stats = [CpuStats() for _ in range(n)]
        pending = [None] * n
        alive = list(range(n))
        lock_holder = {}
        spin_interval = self.spin_interval
        mread = machine.read
        mwrite = machine.write
        mstats = machine.stats
        drain_time = machine.drain_time
        exhausted = _EXHAUSTED
        # Int sentinel (not float inf): every per-event "now >= limit"
        # check stays an int-int comparison.
        INF = 1 << 62

        while alive:
            # Pick the earliest processor (``alive`` stays sorted, so ties
            # resolve to the lowest index exactly as ``min`` does) and the
            # earliest *other* clock.  While this processor stays strictly
            # below that limit it remains the unique argmin, so its events
            # dispatch in a tight inner loop with no rescan per event.
            k = len(alive)
            if k == 1:
                cpu = alive[0]
                limit = INF
            elif k == 2:
                c0, c1 = alive
                if clocks[c0] <= clocks[c1]:
                    cpu, limit = c0, clocks[c1]
                else:
                    cpu, limit = c1, clocks[c0]
            else:
                # One pass for both the argmin and the runner-up clock
                # (ties keep the earlier index, matching ``min``).
                ait = iter(alive)
                cpu = next(ait)
                best = clocks[cpu]
                limit = INF
                for i in ait:
                    ci = clocks[i]
                    if ci < best:
                        cpu, limit, best = i, best, ci
                    elif ci < limit:
                        limit = ci

            next_ev = streams[cpu].__next__
            stats = cpu_stats[cpu]
            mem_by_class = stats.mem_by_class
            now = clocks[cpu]

            while True:
                ev = pending[cpu]
                if ev is None:
                    try:
                        ev = next_ev()
                    except StopIteration:
                        ev = exhausted
                else:
                    pending[cpu] = None
                if ev is exhausted:
                    alive.remove(cpu)
                    now = drain_time(cpu, now)
                    clocks[cpu] = now
                    stats.finish_time = now
                    if _sanitize:
                        machine.check_invariants()
                    break

                kind = ev[0]
                stats.events += 1

                if kind == 0:  # EV_READ
                    stall = mread(cpu, ev[1], ev[2], ev[3], now)
                    mem_by_class[ev[3]] += stall
                    if len(ev) == 4:
                        stats.busy += 1
                        now += 1 + stall
                    else:
                        # Fused replay row: the reference plus its trailing
                        # busy/hit run ((cycles, hit count) in ev[4:6]).
                        inert = ev[4]
                        stats.busy += 1 + inert
                        now += 1 + stall + inert
                        if ev[5]:
                            mstats.l1_reads += ev[5]
                elif kind == 1:  # EV_WRITE
                    stall = mwrite(cpu, ev[1], ev[2], ev[3], now)
                    mem_by_class[ev[3]] += stall
                    if len(ev) == 4:
                        stats.busy += 1
                        now += 1 + stall
                    else:
                        inert = ev[4]
                        stats.busy += 1 + inert
                        now += 1 + stall + inert
                        if ev[5]:
                            mstats.l1_reads += ev[5]
                elif kind == 2:  # EV_BUSY
                    # Batched merge: absorb the whole run of busy events in
                    # one dispatch (they never touch the machine), parking
                    # the first non-busy event -- or the end-of-stream
                    # marker -- in the pending slot.
                    cycles = ev[1]
                    while True:
                        try:
                            nxt = next_ev()
                        except StopIteration:
                            pending[cpu] = exhausted
                            break
                        if nxt[0] == 2:
                            cycles += nxt[1]
                            stats.events += 1
                        else:
                            pending[cpu] = nxt
                            break
                    stats.busy += cycles
                    now += cycles
                elif kind == 5:  # EV_HIT: always-hit stack/static references
                    count = ev[1]
                    stats.busy += count
                    mstats.l1_reads += count
                    now += count
                elif kind == 3:  # EV_LOCK_ACQ
                    lock_id, addr, cls = ev[1], ev[2], ev[3]
                    holder = lock_holder.get(lock_id)
                    if holder == cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} re-acquired spinlock {lock_id!r}"
                        )
                    if holder is None:
                        # Test-and-set: read-modify-write on the lock word.
                        cost = 2
                        cost += mread(cpu, addr, 4, cls, now)
                        cost += mwrite(cpu, addr, 4, cls, now + cost)
                        stats.msync += cost
                        now += cost
                        lock_holder[lock_id] = cpu
                    else:
                        # Spin on the cached copy and retry later.  The new
                        # clock is never below the holder's, so the retry
                        # always leaves the inner loop and rescans.
                        wait = spin_interval
                        holder_clock = clocks[holder]
                        if holder_clock > now + wait:
                            wait = holder_clock - now
                        wait += mread(cpu, addr, 4, cls, now)
                        stats.msync += wait
                        now += wait
                        pending[cpu] = ev
                elif kind == 4:  # EV_LOCK_REL
                    lock_id, addr, cls = ev[1], ev[2], ev[3]
                    if lock_holder.get(lock_id) != cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} released spinlock {lock_id!r} "
                            "it does not hold"
                        )
                    del lock_holder[lock_id]
                    cost = 1 + mwrite(cpu, addr, 4, cls, now)
                    stats.msync += cost
                    now += cost
                else:
                    raise ValueError(f"unknown event kind {kind!r}")

                if now >= limit:
                    clocks[cpu] = now
                    break

        if t0 is not None:
            _note_run("run", cpu_stats, perf_counter() - t0)
        return RunResult(machine, cpu_stats)

    def run_traces(self, traces, sink=None, reset_stats=False):
        """Replay recorded traces array-directly: no generators, no tuples.

        ``traces`` holds one :class:`~repro.core.tracecache.QueryTrace` per
        processor (trace *i* runs on node *i*).  Instead of resuming a
        ``replay()`` generator and unpacking an event tuple per step, each
        processor keeps an index cursor into its trace's columnar arrays
        and events dispatch straight from the columns -- the replay
        equivalent of :meth:`run`, and bit-identical to it on replay
        streams: same cycles, same machine counters, same per-CPU
        accounting (``tests/test_tracecache.py`` asserts this for all 17
        queries).  A contended lock acquire retries by *not* advancing the
        cursor, mirroring the ``pending``-slot redispatch of :meth:`run`.

        When ``sink`` is given, ``sink[i]`` is set to trace *i*'s recorded
        result rows as its stream completes, like ``replay(sink=...)``.
        """
        machine = self.machine
        if len(traces) > machine.config.n_nodes:
            raise ValueError(
                f"{len(traces)} traces but only {machine.config.n_nodes} nodes"
            )
        if reset_stats:
            machine.reset_stats()
        t0 = perf_counter() if _obs_enabled() else None

        n = len(traces)
        clocks = [0] * n
        cpu_stats = [CpuStats() for _ in range(n)]
        cursors = [0] * n
        ends = [len(t) for t in traces]
        # Plain-list column views (memoized on each trace): lists index
        # noticeably faster than ``array`` objects because they skip the
        # per-access int boxing, and a sweep replays the same trace dozens
        # of times, so the conversion is paid once per trace, not per run.
        columns = [t.columns() for t in traces]
        kinds_col = [c[0] for c in columns]
        a_col = [c[1] for c in columns]
        b_col = [c[2] for c in columns]
        c_col = [c[3] for c in columns]
        d_col = [c[4] for c in columns]
        e_col = [c[5] for c in columns]
        lock_tables = [t.lock_ids for t in traces]
        alive = list(range(n))
        lock_holder = {}
        spin_interval = self.spin_interval
        mread = machine.read
        mwrite = machine.write
        mstats = machine.stats
        drain_time = machine.drain_time
        # Fused L1 read-hit fast path: a single-line load that hits the
        # primary cache touches nothing but the L1 set and the read
        # counter, so the dispatch loop probes it inline and only calls
        # machine.read for misses and line-crossing accesses.  Disabled
        # when prefetching is on -- then even a hit must check the
        # pending-fill table, which stays machine.read's job.
        l1_shift = machine._l1_shift
        l1_mask = machine._l1_mask
        l1_sets = machine._l1_sets
        fuse_hits = not machine._prefetch_data
        # Int sentinel (not float inf): every per-event "now >= limit"
        # check stays an int-int comparison.
        INF = 1 << 62

        # repro: hot -- the replay dispatch loop; see rules_hot.py.
        while alive:
            # Identical argmin/limit selection to :meth:`run`: the chosen
            # processor dispatches in a tight loop while it stays strictly
            # the earliest clock.
            k = len(alive)
            if k == 1:
                cpu = alive[0]
                limit = INF
            elif k == 2:
                c0, c1 = alive
                if clocks[c0] <= clocks[c1]:
                    cpu, limit = c0, clocks[c1]
                else:
                    cpu, limit = c1, clocks[c0]
            else:
                ait = iter(alive)
                cpu = next(ait)
                best = clocks[cpu]
                limit = INF
                for i in ait:
                    ci = clocks[i]
                    if ci < best:
                        cpu, limit, best = i, best, ci
                    elif ci < limit:
                        limit = ci

            tk = kinds_col[cpu]
            ta = a_col[cpu]
            tb = b_col[cpu]
            tc = c_col[cpu]
            td = d_col[cpu]
            te = e_col[cpu]
            lock_ids = lock_tables[cpu]
            cpu_l1 = l1_sets[cpu]
            pos = cursors[cpu]
            end = ends[cpu]
            stats = cpu_stats[cpu]
            mem_by_class = stats.mem_by_class
            now = clocks[cpu]
            # Stats deltas accumulate in locals and flush when the
            # dispatch run ends; nothing inside the run reads them.
            # Dispatched events are the cursor advance plus lock retries
            # (the only dispatch that leaves the cursor in place), so the
            # loop body never counts them one by one.
            start_pos = pos
            retry_acc = busy_acc = msync_acc = l1_acc = 0

            while True:
                if pos >= end:
                    alive.remove(cpu)
                    now = drain_time(cpu, now)
                    clocks[cpu] = now
                    stats.finish_time = now
                    if sink is not None:
                        sink[cpu] = traces[cpu].rows
                    # Cold by the HOT lint's sanitizer-gate exemption: the
                    # sweep runs once per finished stream, not per event.
                    if _sanitize:
                        machine.check_invariants()
                    break

                kind = tk[pos]

                if kind == 0:  # EV_READ (+ fused trailing busy/hit run)
                    addr = ta[pos]
                    size = tb[pos]
                    stall = -1
                    if fuse_hits:
                        first = addr >> l1_shift
                        if first == (addr + size - 1) >> l1_shift:
                            ways = cpu_l1[first & l1_mask]
                            if first in ways:
                                if ways[0] != first:
                                    ways.remove(first)
                                    ways.insert(0, first)
                                l1_acc += 1 if size <= 4 else (size + 3) >> 2
                                stall = 0
                    if stall < 0:
                        stall = mread(cpu, addr, size, tc[pos], now)
                        if stall:
                            mem_by_class[tc[pos]] += stall
                    inert = td[pos]
                    busy_acc += 1 + inert
                    now += 1 + stall + inert
                    l1_acc += te[pos]
                    pos += 1
                elif kind == 1:  # EV_WRITE (+ fused trailing busy/hit run)
                    cls = tc[pos]
                    stall = mwrite(cpu, ta[pos], tb[pos], cls, now)
                    inert = td[pos]
                    busy_acc += 1 + inert
                    if stall:
                        mem_by_class[cls] += stall
                        now += 1 + stall + inert
                    else:
                        now += 1 + inert
                    l1_acc += te[pos]
                    pos += 1
                elif kind == 2:  # EV_BUSY (already coalesced at record time)
                    cycles = ta[pos]
                    busy_acc += cycles
                    now += cycles
                    pos += 1
                elif kind == 5:  # EV_HIT: always-hit stack/static references
                    count = ta[pos]
                    busy_acc += count
                    l1_acc += count
                    now += count
                    pos += 1
                elif kind == 3:  # EV_LOCK_ACQ
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    holder = lock_holder.get(lock_id)
                    if holder == cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} re-acquired spinlock {lock_id!r}"
                        )
                    if holder is None:
                        cost = 2
                        cost += mread(cpu, addr, 4, cls, now)
                        cost += mwrite(cpu, addr, 4, cls, now + cost)
                        msync_acc += cost
                        now += cost
                        lock_holder[lock_id] = cpu
                        pos += 1
                    else:
                        # Spin and retry: the cursor stays on this event,
                        # so the next dispatch re-attempts the acquire --
                        # and the new clock is never below the holder's,
                        # so the retry always rescans first.
                        wait = spin_interval
                        holder_clock = clocks[holder]
                        if holder_clock > now + wait:
                            wait = holder_clock - now
                        wait += mread(cpu, addr, 4, cls, now)
                        msync_acc += wait
                        now += wait
                        retry_acc += 1
                else:  # EV_LOCK_REL (kind == 4)
                    lock_id = lock_ids[ta[pos]]
                    addr = tb[pos]
                    cls = tc[pos]
                    if lock_holder.get(lock_id) != cpu:
                        raise LockProtocolError(
                            f"cpu {cpu} released spinlock {lock_id!r} "
                            "it does not hold"
                        )
                    del lock_holder[lock_id]
                    cost = 1 + mwrite(cpu, addr, 4, cls, now)
                    msync_acc += cost
                    now += cost
                    pos += 1

                if now >= limit:
                    clocks[cpu] = now
                    cursors[cpu] = pos
                    break

            stats.events += (pos - start_pos) + retry_acc
            stats.busy += busy_acc
            stats.msync += msync_acc
            if l1_acc:
                mstats.l1_reads += l1_acc

        if t0 is not None:
            _note_run("run_traces", cpu_stats, perf_counter() - t0)
        return RunResult(machine, cpu_stats)
