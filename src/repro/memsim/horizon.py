"""Sharing classifier and horizon plans for the horizon replay kernel.

The global-clock interleaver cuts replay into ~2-row windows: a processor
retires a couple of rows, flushes its clock, and waits for the other
processors to catch up.  Almost none of that synchronization is *needed*.
Trancoso et al.'s own characterization -- DSS footprints are dominated by
private scan data with a small shared/lock-metadata core -- means the vast
majority of a trace's rows cannot interact with any other processor, no
matter how the windows fall.  This module turns that observation into a
schedule: classify, per trace set, exactly which rows *could* interact,
and hand the dispatch engine the distance to each processor's next
**interaction horizon** so it can retire everything before it in one pass
and replay the window cuts from recorded per-row completion times (the
"virtual clock" of :meth:`Interleaver._run_traces_horizon`).

Classification is per secondary-cache line over the whole trace set:

* a line is **write-shared** when some processor writes it (store spans
  and the 4-byte lock words of acquire/release rows both count) and any
  *other* processor touches it at all;
* a memory row is a **boundary** when any line it spans is write-shared;
* lock acquire/release rows are always boundaries (they observe other
  processors' clocks and hand off lock words);
* every other row -- busy/hit rows and reads/writes confined to
  non-write-shared lines -- is retirable ahead of the global clock.

Reads of read-only-shared lines commute (directory sharer sets are plain
set unions; latencies depend only on the home node and the deterministic
dirty-owner history), and writes to private lines invalidate nobody, so
retiring these rows early leaves every machine counter, directory entry,
and write-buffer completion time exactly as scalar dispatch would.  The
one side channel a *static* row classification cannot see is eviction: a
retired fill can displace a resident write-shared line another processor
still observes.  The dispatch engine closes it with a dynamic guard -- it
stops a retire pass at the first fill whose target L1/L2 set currently
holds a write-shared resident -- so the static plan only has to be sound
about the rows' own spans (line-crossing accesses are expanded line by
line, never assumed single-line).

Plans are memoized two ways, mirroring :mod:`repro.memsim.batch`: the
per-trace touched/written line sets on the trace itself (keyed by L2
geometry), and the combined schedule -- write-shared set plus per-trace
next-boundary arrays -- in a small module-level FIFO keyed by the trace
set, since a sweep replays the same combination against dozens of machine
configurations.
"""

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Minimum region length (rows to the next boundary) worth a retire-ahead
#: pass.  Below it, the pass's setup (guard probes, virtual-clock list,
#: the stepped virtual windows that follow) costs more than the
#: per-window dispatch it saves; measured across the fig8-11 queries the
#: crossover sits around 16 rows, with boundary-dense traces (Q3, Q17)
#: the most sensitive.
HORIZON_MIN = 16

#: Combined schedules kept, evicted FIFO (same shape as
#: :data:`repro.memsim.batch.PLAN_MEMO`): a sweep visits its points one
#: at a time, and each point replays one trace combination.
SCHEDULE_MEMO = 2

#: Per-trace line-set memo entries kept (keyed by L2 line shift).
SHARE_MEMO = 2

_schedules = {}


class HorizonPlan:
    """Per-trace horizon metadata under one trace-set/L2-geometry key.

    ``stops`` is a plain list, one entry per trace row: the index of the
    next boundary row at or after this row (``n_rows`` when none
    remains).  ``stops[i] == i`` marks row *i* itself as a boundary; a
    gap ``stops[i] - i`` is the length of the retirable region ahead.
    ``n_boundary`` counts boundary rows, for the ``--time`` diagnostics.
    """

    __slots__ = ("stops", "n_rows", "n_boundary")

    def __init__(self, stops, n_rows, n_boundary):
        self.stops = stops
        self.n_rows = n_rows
        self.n_boundary = n_boundary


class HorizonSchedule:
    """One trace combination's classification: shared lines plus plans.

    ``ws`` is the write-shared L2-line set (plain Python set: the
    dispatch engine's dynamic eviction guards probe it per resident
    way).  ``plans`` holds one :class:`HorizonPlan` per trace, in trace
    order.  ``retirable`` is the per-CPU fraction of rows ahead of any
    boundary, recorded for ``--time``.
    """

    __slots__ = ("ws", "plans", "retirable")

    def __init__(self, ws, plans, retirable):
        self.ws = ws
        self.plans = plans
        self.retirable = retirable


def _line_span(trace, l2_shift):
    """First/last L2 line, write mask, and touch mask per trace row.

    Lock rows touch (and write) the 4-byte lock word at their ``b``
    column; read/write rows span ``[a, a + max(b, 1))``.  Busy/hit rows
    touch nothing.
    """
    kinds = _np.frombuffer(trace.kinds, dtype=_np.int8) if len(trace) \
        else _np.empty(0, dtype=_np.int8)
    a = _np.frombuffer(trace.a, dtype=_np.int64) if len(trace) \
        else _np.empty(0, dtype=_np.int64)
    b = _np.frombuffer(trace.b, dtype=_np.int64) if len(trace) \
        else _np.empty(0, dtype=_np.int64)
    mem = kinds <= 1
    lock = kinds >= 3
    addr = _np.where(lock, b, a)
    size = _np.where(mem, _np.maximum(b, 1), 4)
    first = addr >> l2_shift
    last = (addr + size - 1) >> l2_shift
    wrote = (kinds == 1) | lock
    return kinds, first, last, wrote, mem | lock


def _span_lines(first, last, mask):
    """Unique L2 lines spanned by the masked rows, middles included.

    Spans of three or more L2 lines are rare (a multi-line access longer
    than two secondary lines), so their interiors expand through a plain
    Python loop over just those rows.
    """
    lo = first[mask]
    hi = last[mask]
    if not len(lo):
        return _np.empty(0, dtype=_np.int64)
    parts = [lo, hi]
    wide = _np.flatnonzero((hi - lo) >= 2)
    for i in wide.tolist():
        parts.append(_np.arange(lo[i] + 1, hi[i], dtype=_np.int64))
    return _np.unique(_np.concatenate(parts))


def share_base(trace, l2_shift):
    """``(touched, written)`` unique L2-line arrays for ``trace``, memoized.

    ``touched`` covers every line any row spans (including lock words);
    ``written`` covers store spans and lock words.  Memoized on the
    trace per L2 geometry (:data:`SHARE_MEMO` entries, FIFO), like the
    batch plans: a sweep replays one trace under several line sizes but
    visits them point by point.
    """
    memo = trace._share_base
    base = memo.get(l2_shift)
    if base is not None:
        return base
    kinds, first, last, wrote, touch = _line_span(trace, l2_shift)
    base = (_span_lines(first, last, touch), _span_lines(first, last, wrote))
    if len(memo) >= SHARE_MEMO:
        memo.pop(next(iter(memo)))
    memo[l2_shift] = base
    return base


def _boundary_mask(trace, l2_shift, ws_arr):
    """Bool mask of boundary rows: lock rows plus write-shared spans."""
    kinds, first, last, wrote, touch = _line_span(trace, l2_shift)
    lock = kinds >= 3
    mem = kinds <= 1
    if len(ws_arr):
        shared = _np.isin(first, ws_arr) | _np.isin(last, ws_arr)
        wide = _np.flatnonzero(mem & ((last - first) >= 2) & ~shared)
        if len(wide):
            ws = set(ws_arr.tolist())
            for i in wide.tolist():
                for line in range(int(first[i]) + 1, int(last[i])):
                    if line in ws:
                        shared[i] = True
                        break
        return lock | (mem & shared)
    return lock


def horizon_schedule(traces, l2_shift):
    """The :class:`HorizonSchedule` for one trace combination, memoized.

    ``None`` without numpy.  The memo key is the tuple of trace
    identities plus the L2 geometry; :data:`SCHEDULE_MEMO` entries are
    kept FIFO, each holding strong references to its traces so the
    ``id`` keys cannot be recycled under it.  Sweeps drop the memo with
    the trace caches via
    :func:`repro.core.experiment.clear_caches` -> :func:`clear_memo`.
    """
    if _np is None:
        return None
    # Keyed on trace identity, not content: the memo holds strong refs to
    # its traces, so ids cannot be recycled under it, and the schedule is
    # a pure cache whose values never depend on the key ordering.
    key = (tuple(id(t) for t in traces),  # repro: allow[DET004] see above
           l2_shift)
    hit = _schedules.get(key)
    if hit is not None:
        return hit[1]
    bases = [share_base(t, l2_shift) for t in traces]
    touched = [b[0] for b in bases if len(b[0])]
    written = [b[1] for b in bases if len(b[1])]
    if len(traces) > 1 and touched and written:
        lines, counts = _np.unique(_np.concatenate(touched),
                                   return_counts=True)
        multi = lines[counts >= 2]
        ws_arr = _np.intersect1d(_np.unique(_np.concatenate(written)),
                                 multi, assume_unique=True)
    else:
        # One processor (or nothing written): no line is write-shared.
        ws_arr = _np.empty(0, dtype=_np.int64)
    plans = []
    retirable = []
    for t in traces:
        n = len(t)
        boundary = _boundary_mask(t, l2_shift, ws_arr)
        idx = _np.where(boundary, _np.arange(n, dtype=_np.int64),
                        _np.int64(n))
        stops = _np.minimum.accumulate(idx[::-1])[::-1].tolist()
        n_boundary = int(boundary.sum())
        plans.append(HorizonPlan(stops, n, n_boundary))
        retirable.append(1.0 - (n_boundary / n) if n else 1.0)
    sched = HorizonSchedule(set(ws_arr.tolist()), plans, retirable)
    # The memo is a process-local cache by design: each pool worker
    # rebuilds its own schedules, and nothing flows between processes
    # through it (run stats travel the metrics-registry merge path).
    if len(_schedules) >= SCHEDULE_MEMO:
        # repro: allow[MP001] process-local cache by design, see above
        _schedules.pop(next(iter(_schedules)))
    # repro: allow[MP001] process-local cache by design, see above
    _schedules[key] = (tuple(traces), sched)
    _note_schedule(sched)
    return sched


def _note_schedule(sched):
    """Record a freshly built schedule's coverage for ``--time``."""
    from repro.obs.metrics import registry

    reg = registry()
    total = sum(p.n_rows for p in sched.plans)
    reg.counter("interleave.horizon.plan_rows").inc(total)
    reg.counter("interleave.horizon.plan_boundary").inc(
        sum(p.n_boundary for p in sched.plans))
    reg.counter("interleave.horizon.plans").inc()
    reg.counter("interleave.horizon.ws_lines").inc(len(sched.ws))
    for cpu, frac in enumerate(sched.retirable):
        reg.gauge(f"interleave.horizon.retirable.cpu{cpu}").set(
            round(frac, 4))


def clear_memo():
    """Drop the combined-schedule memo (kept traces included)."""
    _schedules.clear()
