"""Runtime sanitizer mode: ``REPRO_SANITIZE=1``.

When enabled, the replay engines sweep the machine's coherence and
ordering invariants (:meth:`NumaMachine.check_invariants`) at stream
boundaries -- cheap enough to leave on in CI smoke runs, strong enough to
catch a corrupted directory or write buffer long before it would surface
as a wrong stall count.  The sweeps are read-only, so a sanitized run
produces bit-identical results to an unsanitized one; the CI smoke job
asserts exactly that.

The flag is read once at import: workers inherit it through the spawn
environment, and flipping it mid-run would make "which iterations were
checked" ambiguous.  Inside ``# repro: hot`` regions the checks hide
behind an ``if _sanitize:`` gate, which the HOT lint rules recognize and
exempt (see :mod:`repro.analysis.rules_hot`).
"""

import os

#: True when the environment opted into invariant checking.
ENABLED = os.environ.get("REPRO_SANITIZE", "") == "1"


class SanitizerError(AssertionError):
    """A machine invariant does not hold (simulator bug, not user error)."""


def enabled():
    """Whether sanitizer mode is on for this process."""
    return ENABLED


def check_monotonic(times, what):
    """Raise unless ``times`` is strictly increasing.

    The horizon kernel's virtual clocks must be strictly increasing --
    every trace row costs at least one cycle -- or the bisect-based
    window replay would consume rows out of order.  Called per
    retire-ahead pass under ``REPRO_SANITIZE=1``; read-only, like every
    sanitizer sweep.
    """
    prev = None
    for t in times:
        if prev is not None and t <= prev:
            raise SanitizerError(
                f"{what} is not strictly increasing: {t} after {prev}")
        prev = t
