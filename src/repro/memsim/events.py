"""Event vocabulary shared by the database engine and the simulator.

The database engine executes queries for real and, as a side effect, emits a
stream of events describing every reference it makes to simulated memory.
Events are plain tuples for speed; the first element is a small integer tag.

Event shapes
------------
``(EV_READ,  addr, size, cls)``   -- load of ``size`` bytes at ``addr``
``(EV_WRITE, addr, size, cls)``   -- store of ``size`` bytes at ``addr``
``(EV_BUSY,  cycles)``            -- computation between memory references
``(EV_LOCK_ACQ, lock_id, addr, cls)`` -- spinlock acquire (test-and-set)
``(EV_LOCK_REL, lock_id, addr, cls)`` -- spinlock release

``cls`` is a :class:`DataClass` value identifying the software data
structure the reference lands on, which is how the paper attributes misses
(Figure 7) and stall time (Figure 6-(b)).
"""

from enum import IntEnum

EV_READ = 0
EV_WRITE = 1
EV_BUSY = 2
EV_LOCK_ACQ = 3
EV_LOCK_REL = 4
EV_HIT = 5


class DataClass(IntEnum):
    """Software data structure touched by a memory reference.

    These are the categories of Figure 7 of the paper: private data, database
    data (tuples in buffer blocks), database indices, and the metadata
    structures of the buffer cache and lock management modules.
    """

    PRIV = 0
    DATA = 1
    INDEX = 2
    BUFDESC = 3
    BUFLOOK = 4
    LOCKHASH = 5
    XIDHASH = 6
    LOCKSLOCK = 7
    METAOTHER = 8


N_CLASSES = len(DataClass)

CLASS_NAMES = {
    DataClass.PRIV: "Priv",
    DataClass.DATA: "Data",
    DataClass.INDEX: "Index",
    DataClass.BUFDESC: "BufDesc",
    DataClass.BUFLOOK: "BufLook",
    DataClass.LOCKHASH: "LockHash",
    DataClass.XIDHASH: "XidHash",
    DataClass.LOCKSLOCK: "LockSLock",
    DataClass.METAOTHER: "MetaOther",
}

#: Classes that the paper groups under the single label "Metadata".
METADATA_CLASSES = frozenset(
    {
        DataClass.BUFDESC,
        DataClass.BUFLOOK,
        DataClass.LOCKHASH,
        DataClass.XIDHASH,
        DataClass.LOCKSLOCK,
        DataClass.METAOTHER,
    }
)


def read(addr, size, cls):
    """Build a load event."""
    return (EV_READ, addr, size, cls)


def write(addr, size, cls):
    """Build a store event."""
    return (EV_WRITE, addr, size, cls)


def busy(cycles):
    """Build a computation event covering ``cycles`` processor cycles."""
    return (EV_BUSY, cycles)


def lock_acquire(lock_id, addr, cls=DataClass.LOCKSLOCK):
    """Build a spinlock acquire event."""
    return (EV_LOCK_ACQ, lock_id, addr, cls)


def lock_release(lock_id, addr, cls=DataClass.LOCKSLOCK):
    """Build a spinlock release event."""
    return (EV_LOCK_REL, lock_id, addr, cls)


def hit(count):
    """Build an always-hit reference event covering ``count`` references.

    This models the paper's scaled-methodology correction (section 4.2):
    accesses to private *stack and static* variables are assumed to hit in
    the cache.  They still exist -- they consume a cycle each and appear in
    the access counts that miss rates are computed against -- but they are
    never simulated against the cache hierarchy.
    """
    return (EV_HIT, count)
