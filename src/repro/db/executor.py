"""Iterator-model executor: plan trees become event-emitting pipelines.

Every operator is a generator that yields a mix of *events* (tuples; memory
references and busy cycles, see :mod:`repro.memsim.events`) and *rows*
(Python lists).  Parents forward their children's events upward and consume
the rows, so a whole query execution is one generator whose events drive
the machine simulator while it computes the query's actual answer.

Private-memory modeling: each operator owns a fixed output slot that it
rewrites for every emitted row (the reuse the paper observes in private
data), plus a small state block touched per tuple.  Materializing operators
(Sort, HashJoin build, MergeJoin caching) write into per-query private
blocks or the rotating arena, which is what gives private data its large
primary-cache footprint.  Intermediate rows are laid out at 8 bytes per
column.
"""

import math
import zlib

from repro.db.expr import columns_of, compile_expr, op_count
from repro.db.plan import (
    Aggregate, Group, HashJoin, IndexScan, MergeJoin, NestLoop, Param,
    Project, SeqScan, Sort,
)
from repro.memsim.events import busy, hit, read, write

COL_BYTES = 8
_SENTINEL = object()


def _stable_hash(key):
    """Process-independent hash for simulated hash-table addressing.

    ``hash(str)`` is randomized per interpreter, which would make the
    simulated probe addresses (and so the whole miss profile) differ from
    run to run and between sweep worker processes.  Numbers already hash
    deterministically.
    """
    if isinstance(key, str):
        return zlib.crc32(key.encode())
    return hash(key)


class ExecError(RuntimeError):
    """Raised when a plan cannot be executed."""


def sort_rows(rows, key_specs):
    """Stable multi-key sort of ``rows``.

    ``key_specs`` is a list of ``(position, ascending)``.  Uses repeated
    stable sorts from the least-significant key, so mixed-direction,
    mixed-type keys work without comparator tricks.
    """
    for pos, asc in reversed(key_specs):
        rows.sort(key=lambda r: r[pos], reverse=not asc)
    return rows


def _agg_init(func):
    if func == "COUNT":
        return 0
    if func == "SUM":
        return None
    if func == "AVG":
        return (0.0, 0)
    return None  # MIN / MAX


def _agg_step(func, acc, value):
    if func == "COUNT":
        return acc + 1
    if func == "SUM":
        return value if acc is None else acc + value
    if func == "AVG":
        return (acc[0] + value, acc[1] + 1)
    if func == "MIN":
        return value if acc is None or value < acc else acc
    if func == "MAX":
        return value if acc is None or value > acc else acc
    raise ExecError(f"unknown aggregate {func!r}")


def _agg_final(func, acc):
    if func == "AVG":
        return acc[0] / acc[1] if acc[1] else None
    return acc


class _Op:
    """Base operator: owns an output slot and a state block."""

    def __init__(self, node, ex):
        self.node = node
        self.ex = ex
        self.output = node.output
        self.positions = {c: i for i, c in enumerate(node.output)}
        self.width = max(COL_BYTES * len(node.output), COL_BYTES)
        self.slot_addr = ex.backend.priv.alloc(self.width)
        self.state_addr = ex.backend.priv.alloc(64)
        self.cost = ex.db.cost
        # Small scattered heap objects this operator touches per tuple
        # (plan-node state, expression nodes, list cells).
        priv = ex.backend.priv
        self.hot_fields = [priv.hot_alloc() for _ in range(16)]
        self._hot_pos = 0

    def _touch_hot(self):
        """Events for one tuple's worth of scattered heap-object traffic."""
        hf = self.hot_fields
        i = self._hot_pos
        self._hot_pos = (i + 1) % 16
        return (
            read(hf[i], 8, 0),
            read(hf[(i + 5) % 16], 8, 0),
            read(hf[(i + 11) % 16], 8, 0),
            write(hf[(i + 7) % 16], 8, 0),
        )

    def run(self):
        raise NotImplementedError


class SeqScanOp(_Op):
    """Sequential Scan select: visit every tuple of the table in order."""

    def __init__(self, node, ex):
        super().__init__(node, ex)
        self.table = ex.db.tables[node.table]
        schema = self.table.schema
        base_positions = {c: i for i, c in enumerate(schema.names())}
        self.pred = compile_expr(node.pred, base_positions) if node.pred else None
        self.pred_cost = op_count(node.pred) * self.cost.predicate_op if node.pred else 0
        pred_cols = sorted(columns_of(node.pred)) if node.pred else []
        self.pred_idxs = [schema.column_index(c) for c in pred_cols]
        out_idxs = [schema.column_index(c) for c in node.output]
        self.extra_idxs = [i for i in out_idxs if i not in set(self.pred_idxs)]
        self.out_idxs = out_idxs

    def run(self):
        table = self.table
        cost = self.cost
        rows = table.rows
        widths = [c.width for c in table.schema.columns]
        state = self.state_addr
        slot = self.slot_addr
        pred = self.pred
        tpp = table.tuples_per_page
        bufmgr = self.ex.db.bufmgr
        priv = self.ex.backend.priv
        scratch_bytes = cost.scratch_bytes
        deleted = table.deleted
        n = len(rows)
        pages = table.pages
        first_page = 0
        if self.node.partition is not None:
            k, nparts = self.node.partition
            first_page = k * len(pages) // nparts
            pages = pages[first_page:(k + 1) * len(pages) // nparts]
        rid = first_page * tpp
        for page in pages:
            yield from bufmgr.pin(page)
            last = min(rid + tpp, n)
            while rid < last:
                if rid in deleted:
                    rid += 1
                    continue
                row = rows[rid]
                yield hit(cost.stack_refs_scan_tuple)
                yield read(state, 8, 0)
                yield busy(cost.tuple_overhead)
                # Per-tuple palloc churn: deform the tuple into a fresh
                # private scratch block, then read it back for evaluation.
                scratch = priv.arena_alloc(scratch_bytes)
                yield write(scratch, scratch_bytes, 0)
                yield read(scratch, 16, 0)
                for ev in self._touch_hot():
                    yield ev
                for i in self.pred_idxs:
                    yield read(table.attr_addr(rid, i), widths[i], 1)
                if pred is not None:
                    yield busy(self.pred_cost)
                    yield write(state + 8, 8, 0)
                    ok = pred(row)
                else:
                    ok = True
                if ok:
                    for i in self.extra_idxs:
                        yield read(table.attr_addr(rid, i), widths[i], 1)
                    yield write(slot, self.width, 0)
                    yield busy(cost.emit_row)
                    yield [row[i] for i in self.out_idxs]
                rid += 1
            yield from bufmgr.unpin(page)


class IndexScanOp(_Op):
    """Index Scan select: B-tree probe, then per-rid heap fetches.

    May be parameterized: :class:`Param` entries in ``eq_values`` are bound
    per rescan by the enclosing join, and every rescan performs a
    lock-manager check -- the source of the paper's LockSLock traffic.
    """

    def __init__(self, node, ex):
        super().__init__(node, ex)
        self.table = ex.db.tables[node.table]
        self.index = ex.db.indexes[node.index]
        schema = self.table.schema
        base_positions = {c: i for i, c in enumerate(schema.names())}
        self.pred = compile_expr(node.pred, base_positions) if node.pred else None
        self.pred_cost = op_count(node.pred) * self.cost.predicate_op if node.pred else 0
        pred_cols = sorted(columns_of(node.pred)) if node.pred else []
        self.pred_idxs = [schema.column_index(c) for c in pred_cols]
        out_idxs = [schema.column_index(c) for c in node.output]
        self.extra_idxs = [i for i in out_idxs if i not in set(self.pred_idxs)]
        self.out_idxs = out_idxs
        self.widths = [c.width for c in schema.columns]

    def _bind_key(self, param):
        key = []
        for v in self.node.eq_values:
            if isinstance(v, Param):
                if param is _SENTINEL:
                    raise ExecError(
                        f"index scan on {self.node.table} needs a parameter"
                    )
                key.append(param)
            else:
                key.append(v.value if hasattr(v, "value") else v)
        return tuple(key)

    def run(self, param=_SENTINEL):
        node = self.node
        db = self.ex.db
        yield hit(self.cost.stack_refs_probe)
        if db.lock_check_per_rescan:
            yield from db.lockmgr.check(self.table.oid, self.ex.backend.xid)
        eq = self._bind_key(param)
        if node.lo is None and node.hi is None:
            if eq:
                rids = yield from self.index.search(eq)
            else:
                rids = None  # full-order scan, streamed below
        else:
            rids = None
        if rids is not None:
            for rid in rids:
                yield from self._fetch(rid)
            return
        lo = eq + (node.lo,) if node.lo is not None else (eq or None)
        hi = eq + (node.hi,) if node.hi is not None else (eq or None)
        scan = self.index.scan_range(
            lo=lo, hi=hi, lo_incl=node.lo_incl, hi_incl=node.hi_incl, prefix=True
        )
        for item in scan:
            if type(item) is tuple:
                yield item
            else:
                yield from self._fetch(item)

    def _fetch(self, rid):
        table = self.table
        if rid in table.deleted:
            return
        cost = self.cost
        page, _ = table.page_slot(rid)
        yield from self.ex.db.bufmgr.pin(page)
        yield hit(cost.stack_refs_fetch)
        yield read(self.state_addr, 8, 0)
        yield busy(cost.tuple_overhead)
        scratch = self.ex.backend.priv.arena_alloc(cost.scratch_bytes)
        yield write(scratch, cost.scratch_bytes, 0)
        yield read(scratch, 16, 0)
        for ev in self._touch_hot():
            yield ev
        row = table.rows[rid]
        for i in self.pred_idxs:
            yield read(table.attr_addr(rid, i), self.widths[i], 1)
        ok = True
        if self.pred is not None:
            yield busy(self.pred_cost)
            yield write(self.state_addr + 8, 8, 0)
            ok = self.pred(row)
        if ok:
            for i in self.extra_idxs:
                yield read(table.attr_addr(rid, i), self.widths[i], 1)
            yield write(self.slot_addr, self.width, 0)
            yield busy(cost.emit_row)
            yield [row[i] for i in self.out_idxs]
        yield from self.ex.db.bufmgr.unpin(page)


class NestLoopOp(_Op):
    """Nested Loop join driving a parameterized inner index scan."""

    def __init__(self, node, ex):
        super().__init__(node, ex)
        self.outer = ex.build(node.outer)
        self.inner = ex.build(node.inner)
        params = [v for v in node.inner.eq_values if isinstance(v, Param)]
        if len(params) != 1:
            raise ExecError("NestLoop inner must take exactly one parameter")
        self.param_idx = self.outer.positions[params[0].outer_col]
        self.filter = (
            compile_expr(node.filter, self.positions) if node.filter else None
        )

    def run(self):
        cost = self.cost
        outer = self.outer
        inner = self.inner
        for item in outer.run():
            if type(item) is not list:
                yield item
                continue
            orow = item
            yield hit(cost.stack_refs_row)
            yield busy(cost.join_overhead)
            for inner_item in inner.run(orow[self.param_idx]):
                if type(inner_item) is not list:
                    yield inner_item
                    continue
                yield read(outer.slot_addr, outer.width, 0)
                yield read(inner.slot_addr, inner.width, 0)
                yield busy(cost.join_overhead)
                combined = orow + inner_item
                if self.filter is not None and not self.filter(combined):
                    continue
                yield write(self.slot_addr, self.width, 0)
                yield combined


class MergeJoinOp(_Op):
    """Merge join over a sorted outer; inner index probed per distinct key.

    Inner match sets are cached in the arena so duplicate outer keys reuse
    them, matching the "selected tuples are joined one by one" discipline
    the paper describes for Q12.
    """

    def __init__(self, node, ex):
        super().__init__(node, ex)
        self.outer = ex.build(node.outer)
        self.inner = ex.build(node.inner)
        self.key_idx = self.outer.positions[node.outer_key]
        self.filter = (
            compile_expr(node.filter, self.positions) if node.filter else None
        )

    def run(self):
        cost = self.cost
        outer = self.outer
        inner = self.inner
        priv = self.ex.backend.priv
        last_key = _SENTINEL
        cached = []
        cached_addrs = []
        for item in outer.run():
            if type(item) is not list:
                yield item
                continue
            orow = item
            yield hit(cost.stack_refs_row)
            key = orow[self.key_idx]
            if key != last_key:
                last_key = key
                cached = []
                cached_addrs = []
                for inner_item in inner.run(key):
                    if type(inner_item) is not list:
                        yield inner_item
                        continue
                    addr = priv.arena_alloc(inner.width)
                    yield read(inner.slot_addr, inner.width, 0)
                    yield write(addr, inner.width, 0)
                    cached.append(inner_item)
                    cached_addrs.append(addr)
            yield busy(cost.join_overhead)
            for irow, addr in zip(cached, cached_addrs):
                yield read(outer.slot_addr, outer.width, 0)
                yield read(addr, inner.width, 0)
                yield busy(cost.join_overhead)
                combined = orow + irow
                if self.filter is not None and not self.filter(combined):
                    continue
                yield write(self.slot_addr, self.width, 0)
                yield combined


class HashJoinOp(_Op):
    """Hash join: build a private hash table on the inner input, probe
    with the outer."""

    def __init__(self, node, ex):
        super().__init__(node, ex)
        self.outer = ex.build(node.outer)
        self.inner = ex.build(node.inner)
        self.outer_key_idx = self.outer.positions[node.outer_key]
        self.inner_key_idx = self.inner.positions[node.inner_key]
        self.filter = (
            compile_expr(node.filter, self.positions) if node.filter else None
        )

    def run(self):
        cost = self.cost
        priv = self.ex.backend.priv
        inner = self.inner
        table = {}
        addrs = {}
        n_build = 0
        for item in inner.run():
            if type(item) is not list:
                yield item
                continue
            key = item[self.inner_key_idx]
            yield hit(cost.stack_refs_row)
            entry_addr = priv.arena_alloc(inner.width + 16)
            yield read(inner.slot_addr, inner.width, 0)
            yield busy(cost.hash_op)
            yield write(entry_addr, inner.width + 16, 0)
            table.setdefault(key, []).append(item)
            addrs.setdefault(key, []).append(entry_addr)
            n_build += 1
        n_buckets = 1 << max(6, (max(n_build, 1) * 2 - 1).bit_length())
        ht_base = priv.alloc(n_buckets * 8)
        yield busy(cost.hash_op * max(n_build, 1) // 8)  # bucket-array setup
        outer = self.outer
        for item in outer.run():
            if type(item) is not list:
                yield item
                continue
            orow = item
            yield hit(cost.stack_refs_row)
            key = orow[self.outer_key_idx]
            yield busy(cost.hash_op)
            yield read(ht_base + (_stable_hash(key) % n_buckets) * 8, 8, 0)
            matches = table.get(key)
            if not matches:
                continue
            for irow, addr in zip(matches, addrs[key]):
                yield read(outer.slot_addr, outer.width, 0)
                yield read(addr, inner.width + 16, 0)
                yield busy(cost.join_overhead)
                combined = orow + irow
                if self.filter is not None and not self.filter(combined):
                    continue
                yield write(self.slot_addr, self.width, 0)
                yield combined


class SortOp(_Op):
    """Materializing sort: a private temporary table plus merge passes.

    The access pattern models Postgres95's in-memory merge sort: rows are
    materialized once, then each merge pass streams every row from one
    private buffer to another (initial runs of 64 come from an in-cache
    insertion sort and are not charged memory traffic).
    """

    INITIAL_RUN = 64

    def __init__(self, node, ex):
        super().__init__(node, ex)
        self.child = ex.build(node.child)
        self.key_specs = [(self.child.positions[c], asc) for c, asc in node.keys]

    def run(self):
        cost = self.cost
        child = self.child
        priv = self.ex.backend.priv
        rows = []
        chunk_base = None
        chunk_used = 0
        chunk_rows = 256
        addrs = []
        for item in child.run():
            if type(item) is not list:
                yield item
                continue
            yield hit(cost.stack_refs_row)
            if chunk_base is None or chunk_used >= chunk_rows:
                chunk_base = priv.alloc(chunk_rows * child.width)
                chunk_used = 0
            addr = chunk_base + chunk_used * child.width
            chunk_used += 1
            yield read(child.slot_addr, child.width, 0)
            yield write(addr, child.width, 0)
            yield busy(cost.sort_step)
            rows.append(item)
            addrs.append(addr)
        n = len(rows)
        if n > 1:
            passes = max(0, math.ceil(math.log2(n / self.INITIAL_RUN)))
            if passes:
                other = priv.alloc(n * child.width)
                src, dst = addrs, [other + i * child.width for i in range(n)]
                for _ in range(passes):
                    for i in range(n):
                        yield read(src[i], child.width, 0)
                        yield write(dst[i], child.width, 0)
                        yield busy(cost.sort_step)
                    src, dst = dst, src
                addrs = src
        order = list(range(n))
        for pos, asc in reversed(self.key_specs):
            order.sort(key=lambda i: rows[i][pos], reverse=not asc)
        for i in order:
            yield hit(cost.stack_refs_row)
            yield read(addrs[i], child.width, 0)
            yield write(self.slot_addr, self.width, 0)
            yield busy(cost.emit_row)
            yield rows[i]


class GroupOp(_Op):
    """Group (and aggregate) a stream sorted on the grouping columns."""

    def __init__(self, node, ex):
        super().__init__(node, ex)
        self.child = ex.build(node.child)
        self.group_idxs = [self.child.positions[c] for c in node.group_cols]
        self.agg_fns = []
        for func, arg, _name in node.aggs:
            fn = compile_expr(arg, self.child.positions) if arg is not None else None
            self.agg_fns.append((func, fn))
        self.accum_addr = ex.backend.priv.alloc(16 * max(len(node.aggs), 1) + 64)

    def run(self):
        cost = self.cost
        child = self.child
        accum = self.accum_addr
        naggs = len(self.agg_fns)
        current = _SENTINEL
        accs = None
        for item in child.run():
            if type(item) is not list:
                yield item
                continue
            yield hit(cost.stack_refs_row)
            yield read(child.slot_addr, child.width, 0)
            key = [item[i] for i in self.group_idxs]
            yield busy(cost.group_compare * max(len(key), 1))
            if key != current:
                if current is not _SENTINEL:
                    yield from self._emit(current, accs)
                current = key
                accs = [_agg_init(f) for f, _ in self.agg_fns]
                yield write(accum, 16 * max(naggs, 1), 0)
            for j, (func, fn) in enumerate(self.agg_fns):
                value = fn(item) if fn is not None else None
                accs[j] = _agg_step(func, accs[j], value)
                yield busy(cost.agg_op)
            if naggs:
                yield write(accum, 8 * naggs, 0)
        if current is not _SENTINEL:
            yield from self._emit(current, accs)

    def _emit(self, key, accs):
        finals = [_agg_final(f, a) for (f, _), a in zip(self.agg_fns, accs)]
        yield write(self.slot_addr, self.width, 0)
        yield busy(self.cost.emit_row)
        yield list(key) + finals


class AggregateOp(_Op):
    """Ungrouped aggregation: one output row."""

    def __init__(self, node, ex):
        super().__init__(node, ex)
        self.child = ex.build(node.child)
        self.agg_fns = []
        for func, arg, _name in node.aggs:
            fn = compile_expr(arg, self.child.positions) if arg is not None else None
            self.agg_fns.append((func, fn))
        self.accum_addr = ex.backend.priv.alloc(16 * max(len(node.aggs), 1))

    def run(self):
        cost = self.cost
        child = self.child
        accs = [_agg_init(f) for f, _ in self.agg_fns]
        for item in child.run():
            if type(item) is not list:
                yield item
                continue
            yield hit(cost.stack_refs_row)
            yield read(child.slot_addr, child.width, 0)
            for j, (func, fn) in enumerate(self.agg_fns):
                value = fn(item) if fn is not None else None
                accs[j] = _agg_step(func, accs[j], value)
                yield busy(cost.agg_op)
            yield write(self.accum_addr, 8 * len(self.agg_fns), 0)
        finals = [_agg_final(f, a) for (f, _), a in zip(self.agg_fns, accs)]
        yield write(self.slot_addr, self.width, 0)
        yield finals


class ProjectOp(_Op):
    """Compute the final SELECT expressions."""

    def __init__(self, node, ex):
        super().__init__(node, ex)
        self.child = ex.build(node.child)
        self.fns = [compile_expr(e, self.child.positions) for e in node.exprs]
        self.expr_cost = sum(op_count(e) for e in node.exprs) * self.cost.predicate_op

    def run(self):
        child = self.child
        for item in child.run():
            if type(item) is not list:
                yield item
                continue
            yield hit(self.cost.stack_refs_row)
            yield read(child.slot_addr, child.width, 0)
            if self.expr_cost:
                yield busy(self.expr_cost)
            yield write(self.slot_addr, self.width, 0)
            yield [fn(item) for fn in self.fns]


_OP_CLASSES = {
    SeqScan: SeqScanOp,
    IndexScan: IndexScanOp,
    NestLoop: NestLoopOp,
    MergeJoin: MergeJoinOp,
    HashJoin: HashJoinOp,
    Sort: SortOp,
    Group: GroupOp,
    Aggregate: AggregateOp,
    Project: ProjectOp,
}


class Executor:
    """Builds and drives operator pipelines for one backend."""

    def __init__(self, db, backend):
        self.db = db
        self.backend = backend

    def build(self, plan):
        """Instantiate the operator for a plan node (recursively)."""
        op_cls = _OP_CLASSES.get(type(plan))
        if op_cls is None:
            raise ExecError(f"no operator for plan node {type(plan).__name__}")
        return op_cls(plan, self)

    def run_plan(self, plan):
        """Traced generator: run a plan to completion; returns the rows.

        Acquires relation datalocks on every base table first and releases
        them at the end, as one transaction would.
        """
        from repro.db.plan import walk

        db = self.db
        xid = self.backend.xid
        tables = []
        for node in walk(plan):
            if isinstance(node, (SeqScan, IndexScan)) and node.table not in tables:
                tables.append(node.table)
        yield from (busy(db.cost.query_setup),)
        for name in tables:
            yield from db.lockmgr.acquire(db.tables[name].oid, xid)
        root = self.build(plan)
        rows = []
        for item in root.run():
            if type(item) is list:
                rows.append(item)
            else:
                yield item
        for name in tables:
            yield from db.lockmgr.release(db.tables[name].oid, xid)
        return rows
