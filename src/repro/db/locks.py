"""The Lock Management Module: datalocks, metalocks, and their hash tables.

Postgres95 distinguishes *metalocks* (spinlocks protecting its own
structures) from *datalocks* (multi-type locks protecting database data).
Of the datalock levels, only the relation level is fully implemented --
exactly the limitation the paper notes, and harmless here because the
traced queries are read-only.

Every datalock operation goes through the ``LockMgrLock`` spinlock and the
two shared hash tables (Lock Hash keyed by lockable object, Xid Hash keyed
by (transaction, object)).  The paper's Figure 7 attributes a large share
of Q3's metadata misses to precisely this traffic (``LockSLock``,
``LockHash``, ``XidHash``).
"""

from enum import IntEnum

from repro.memsim.events import DataClass, busy, lock_acquire, lock_release, read, write

LOCKMGR_LOCK_ID = "LockMgrLock"


class LockMode(IntEnum):
    """Datalock modes, weakest to strongest."""

    READ = 0
    WRITE = 1


class LockConflictError(RuntimeError):
    """A datalock request conflicted (cannot happen in read-only runs)."""


def _conflicts(held_mode, requested_mode):
    return held_mode == LockMode.WRITE or requested_mode == LockMode.WRITE


class LockManager:
    """Relation-level multi-type datalocks behind the LockMgrLock spinlock."""

    def __init__(self, shmem, cost_model):
        self.shmem = shmem
        self.cost = cost_model
        # (relation oid) -> {xid: mode}
        self._held = {}

    # -- traced protocol ------------------------------------------------------------

    def acquire(self, rel_oid, xid, mode=LockMode.READ):
        """Traced generator: acquire a relation datalock for ``xid``.

        Read locks never conflict with each other; a conflicting request
        raises (the traced workloads are read-only, so waiting queues are
        not modeled).
        """
        shmem = self.shmem
        yield lock_acquire(LOCKMGR_LOCK_ID, shmem.lockmgr_lock_addr, DataClass.LOCKSLOCK)
        yield read(shmem.lock_hash_addr(rel_oid), 32, DataClass.LOCKHASH)
        holders = self._held.setdefault(rel_oid, {})
        for held_xid, held_mode in holders.items():
            if held_xid != xid and _conflicts(held_mode, mode):
                yield lock_release(LOCKMGR_LOCK_ID, shmem.lockmgr_lock_addr,
                                   DataClass.LOCKSLOCK)
                raise LockConflictError(
                    f"xid {xid} requested {mode.name} on relation {rel_oid} "
                    f"held {held_mode.name} by xid {held_xid}"
                )
        holders[xid] = max(holders.get(xid, mode), mode)
        yield write(shmem.lock_hash_addr(rel_oid) + 16, 16, DataClass.LOCKHASH)
        yield read(shmem.xid_hash_addr(rel_oid * 31 + xid), 16, DataClass.XIDHASH)
        yield write(shmem.xid_hash_addr(rel_oid * 31 + xid) + 8, 8, DataClass.XIDHASH)
        yield lock_release(LOCKMGR_LOCK_ID, shmem.lockmgr_lock_addr, DataClass.LOCKSLOCK)
        yield busy(self.cost.lock_acquire)

    def check(self, rel_oid, xid):
        """Traced generator: re-validate a held lock (per index rescan).

        This is the lock-manager interaction that makes Index queries hammer
        ``LockSLock`` continuously in the paper.
        """
        shmem = self.shmem
        yield lock_acquire(LOCKMGR_LOCK_ID, shmem.lockmgr_lock_addr, DataClass.LOCKSLOCK)
        yield read(shmem.lock_hash_addr(rel_oid), 32, DataClass.LOCKHASH)
        yield lock_release(LOCKMGR_LOCK_ID, shmem.lockmgr_lock_addr, DataClass.LOCKSLOCK)
        yield read(shmem.xid_hash_addr(rel_oid * 31 + xid), 16, DataClass.XIDHASH)
        yield busy(self.cost.lock_check)

    def release(self, rel_oid, xid):
        """Traced generator: drop ``xid``'s datalock on a relation."""
        shmem = self.shmem
        yield lock_acquire(LOCKMGR_LOCK_ID, shmem.lockmgr_lock_addr, DataClass.LOCKSLOCK)
        yield read(shmem.lock_hash_addr(rel_oid), 32, DataClass.LOCKHASH)
        holders = self._held.get(rel_oid, {})
        holders.pop(xid, None)
        yield write(shmem.lock_hash_addr(rel_oid) + 16, 16, DataClass.LOCKHASH)
        yield write(shmem.xid_hash_addr(rel_oid * 31 + xid) + 8, 8, DataClass.XIDHASH)
        yield lock_release(LOCKMGR_LOCK_ID, shmem.lockmgr_lock_addr, DataClass.LOCKSLOCK)

    # -- untraced inspection -------------------------------------------------------

    def holders(self, rel_oid):
        """Return ``{xid: mode}`` currently holding the relation lock."""
        return dict(self._held.get(rel_oid, {}))
