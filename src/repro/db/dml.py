"""DML execution: INSERT, DELETE, UPDATE with write datalocks.

The paper traces only the read-only TPC-D queries, noting that "update
queries are much more demanding on the locking algorithm" and that
Postgres95 implements datalocks fully at the relation level only.  This
module implements exactly that: every DML statement takes a relation-level
WRITE datalock (which conflicts with everything), mutates the heap and
every index through the traced paths, and emits the same kinds of memory
events the read paths do -- so update workloads (TPC-D UF1/UF2) can be
simulated alongside queries.
"""

from repro.db.expr import columns_of, compile_expr, op_count
from repro.db.locks import LockMode
from repro.db.sql import DeleteStatement, InsertStatement, UpdateStatement
from repro.memsim.events import busy, hit, read, write


class DmlError(ValueError):
    """Raised for invalid DML statements."""


def execute_dml(db, stmt, backend):
    """Traced generator: run a DML statement; returns the row count."""
    if isinstance(stmt, InsertStatement):
        return (yield from _insert(db, stmt, backend))
    if isinstance(stmt, DeleteStatement):
        return (yield from _delete(db, stmt, backend))
    if isinstance(stmt, UpdateStatement):
        return (yield from _update(db, stmt, backend))
    raise DmlError(f"not a DML statement: {stmt!r}")


def _table(db, name):
    try:
        return db.tables[name]
    except KeyError:
        raise DmlError(f"unknown table {name!r}") from None


def _matching_rids(db, table, where, backend):
    """Traced generator: rids matching ``where`` (index-assisted if we can).

    Mirrors the read path: an equality on an indexed column probes the
    B-tree; anything else scans the heap sequentially.
    """
    cost = db.cost
    if not where:
        rids = table.live_rids()
        for rid in rids:
            yield hit(cost.stack_refs_scan_tuple)
        return rids

    positions = {c: i for i, c in enumerate(table.schema.names())}
    for c in columns_of(_conj(where)):
        if c not in positions:
            raise DmlError(f"unknown column {c!r} in WHERE")
    pred = compile_expr(_conj(where), positions)

    # Index-assisted path: single equality on an index's leading column.
    from repro.db.expr import Cmp, Col, Const

    for p in where:
        if (isinstance(p, Cmp) and p.op == "=" and isinstance(p.left, Col)
                and isinstance(p.right, Const)):
            for ix in db.table_indexes(table.name):
                if ix.key_cols[0] == p.left.name and len(ix.key_cols) == 1:
                    candidates = yield from ix.search(p.right.value)
                    out = []
                    for rid in candidates:
                        if rid in table.deleted:
                            continue
                        yield hit(cost.stack_refs_fetch)
                        yield read(table.tuple_addr(rid),
                                   table.schema.tuple_size, 1)
                        if pred(table.rows[rid]):
                            out.append(rid)
                    return out

    # Sequential path.
    out = []
    pred_cost = op_count(_conj(where)) * cost.predicate_op
    for rid, row in enumerate(table.rows):
        if rid in table.deleted:
            continue
        yield hit(cost.stack_refs_scan_tuple)
        yield read(table.tuple_addr(rid), table.schema.tuple_size, 1)
        yield busy(pred_cost)
        if pred(row):
            out.append(rid)
    return out


def _conj(preds):
    from repro.db.expr import And

    return preds[0] if len(preds) == 1 else And(tuple(preds))


def _insert(db, stmt, backend):
    table = _table(db, stmt.table)
    ncols = len(table.schema)
    for row in stmt.rows:
        if len(row) != ncols:
            raise DmlError(
                f"{stmt.table}: INSERT row has {len(row)} values, "
                f"schema has {ncols}"
            )
    yield from db.lockmgr.acquire(table.oid, backend.xid, LockMode.WRITE)
    cost = db.cost
    for row in stmt.rows:
        rid = table.append(list(row))
        page, _ = table.page_slot(rid)
        yield from db.bufmgr.pin(page)
        yield hit(cost.stack_refs_fetch)
        yield write(table.tuple_addr(rid), table.schema.tuple_size, 1)
        for ix in db.table_indexes(table.name):
            yield from ix.insert(ix.key_of_row(row), rid)
        yield from db.bufmgr.unpin(page)
    yield from db.lockmgr.release(table.oid, backend.xid)
    return len(stmt.rows)


def _delete(db, stmt, backend):
    table = _table(db, stmt.table)
    yield from db.lockmgr.acquire(table.oid, backend.xid, LockMode.WRITE)
    rids = yield from _matching_rids(db, table, stmt.where, backend)
    cost = db.cost
    for rid in rids:
        page, _ = table.page_slot(rid)
        yield from db.bufmgr.pin(page)
        yield hit(cost.stack_refs_fetch)
        # Tombstone the tuple header.
        yield write(table.tuple_addr(rid), 8, 1)
        row = table.rows[rid]
        for ix in db.table_indexes(table.name):
            yield from ix.delete(ix.key_of_row(row), rid)
        table.delete(rid)
        yield from db.bufmgr.unpin(page)
    yield from db.lockmgr.release(table.oid, backend.xid)
    return len(rids)


def _update(db, stmt, backend):
    table = _table(db, stmt.table)
    schema = table.schema
    positions = {c: i for i, c in enumerate(schema.names())}
    compiled = []
    for col, expr in stmt.assignments:
        if col not in positions:
            raise DmlError(f"unknown column {col!r} in SET")
        compiled.append((positions[col], compile_expr(expr, positions)))
    touched_idxs = {idx for idx, _ in compiled}
    affected_indexes = [
        ix for ix in db.table_indexes(table.name)
        if any(i in touched_idxs for i in ix.key_idxs)
    ]

    yield from db.lockmgr.acquire(table.oid, backend.xid, LockMode.WRITE)
    rids = yield from _matching_rids(db, table, stmt.where, backend)
    cost = db.cost
    for rid in rids:
        page, _ = table.page_slot(rid)
        yield from db.bufmgr.pin(page)
        yield hit(cost.stack_refs_fetch)
        row = table.rows[rid]
        old_keys = [ix.key_of_row(row) for ix in affected_indexes]
        new_values = [(idx, fn(row)) for idx, fn in compiled]
        for idx, value in new_values:
            table.update(rid, idx, value)
            yield write(table.attr_addr(rid, idx),
                        schema.columns[idx].width, 1)
            yield busy(cost.predicate_op)
        for ix, old_key in zip(affected_indexes, old_keys):
            new_key = ix.key_of_row(table.rows[rid])
            if new_key != old_key:
                yield from ix.delete(old_key, rid)
                yield from ix.insert(new_key, rid)
        yield from db.bufmgr.unpin(page)
    yield from db.lockmgr.release(table.oid, backend.xid)
    return len(rids)
