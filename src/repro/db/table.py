"""Heap tables: fixed-width tuples in slotted 8-KB buffer blocks.

A heap table owns a sequence of buffer blocks.  Tuples are addressed by a
row identifier (*rid*): ``rid // tuples_per_page`` selects the page and
``rid % tuples_per_page`` the slot.  Values live in ordinary Python lists;
the page/slot geometry exists to give every attribute a stable simulated
address.
"""

from repro.db.shmem import PAGE_SIZE
from repro.memsim.events import DataClass

PAGE_HEADER_BYTES = 24


class HeapTable:
    """A relation stored in shared buffer blocks."""

    def __init__(self, schema, shmem, oid):
        self.schema = schema
        self.shmem = shmem
        self.oid = oid
        self.name = schema.name
        self.tuples_per_page = (PAGE_SIZE - PAGE_HEADER_BYTES) // schema.tuple_size
        if self.tuples_per_page < 1:
            raise ValueError(
                f"tuple of {schema.tuple_size} bytes does not fit an 8-KB block"
            )
        self.rows = []
        self.pages = []  # global page indices, in rid order
        self.deleted = set()
        self._stats = None

    # -- loading -----------------------------------------------------------------

    def load(self, rows):
        """Bulk-append ``rows`` (lists of values in schema order)."""
        ncols = len(self.schema)
        for row in rows:
            if len(row) != ncols:
                raise ValueError(
                    f"{self.name}: row has {len(row)} values, schema has {ncols}"
                )
            self.rows.append(list(row))
        self._ensure_pages()
        self._stats = None

    def append(self, row):
        """Append a single row; returns its rid."""
        self.load([row])
        return len(self.rows) - 1

    def delete(self, rid):
        """Tombstone a row (rids stay stable; scans skip it)."""
        if rid in self.deleted:
            raise KeyError(f"{self.name}: rid {rid} already deleted")
        self.deleted.add(rid)
        self._stats = None

    def update(self, rid, col_idx, value):
        """Overwrite one attribute in place."""
        if rid in self.deleted:
            raise KeyError(f"{self.name}: rid {rid} is deleted")
        self.rows[rid][col_idx] = value
        self._stats = None

    def is_live(self, rid):
        return rid not in self.deleted

    def live_rids(self):
        """Rids of all non-deleted rows, in storage order."""
        deleted = self.deleted
        return [r for r in range(len(self.rows)) if r not in deleted]

    def _ensure_pages(self):
        needed = (len(self.rows) + self.tuples_per_page - 1) // self.tuples_per_page
        while len(self.pages) < needed:
            self.pages.append(self.shmem.alloc_page(DataClass.DATA))

    # -- geometry -----------------------------------------------------------------

    @property
    def n_rows(self):
        return len(self.rows) - len(self.deleted)

    @property
    def n_pages(self):
        return len(self.pages)

    def page_slot(self, rid):
        """Return ``(global_page_index, slot)`` for a rid."""
        return self.pages[rid // self.tuples_per_page], rid % self.tuples_per_page

    def tuple_addr(self, rid):
        """Simulated address of the tuple header for ``rid``."""
        page, slot = self.page_slot(rid)
        return (self.shmem.page_addr(page) + PAGE_HEADER_BYTES
                + slot * self.schema.tuple_size)

    def attr_addr(self, rid, col_idx):
        """Simulated address of attribute ``col_idx`` of tuple ``rid``."""
        return self.tuple_addr(rid) + self.schema.offsets[col_idx] - 8

    def value(self, rid, col_idx):
        """The Python value of attribute ``col_idx`` of tuple ``rid``."""
        return self.rows[rid][col_idx]

    def data_bytes(self):
        """Total bytes of tuple data (reporting helper)."""
        return len(self.rows) * self.schema.tuple_size

    # -- statistics for the planner ------------------------------------------------

    def stats(self):
        """Return per-column ``(n_distinct, min, max)`` planner statistics."""
        if self._stats is None:
            live = ([row for r, row in enumerate(self.rows)
                     if r not in self.deleted]
                    if self.deleted else self.rows)
            cols = []
            for i in range(len(self.schema)):
                values = [row[i] for row in live]
                distinct = len(set(values))
                lo = min(values) if values else None
                hi = max(values) if values else None
                cols.append((distinct, lo, hi))
            self._stats = cols
        return self._stats
