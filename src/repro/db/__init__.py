"""A memory-resident relational engine with Postgres95's anatomy.

This package is the paper's *substrate*: a from-scratch database engine
whose shared-memory data structures mirror the ones the paper instruments
(Figure 4) -- 8-KB buffer blocks, buffer descriptors, a buffer lookup hash,
a lock manager with Lock/Xid hash tables guarded by the ``LockMgrLock``
spinlock, B-tree indices, and an iterator-model executor producing
left-deep query plans.

Every operation both *computes real results* and *emits a typed memory
reference stream* (see :mod:`repro.memsim.events`), so the same execution
that answers a query also drives the memory-hierarchy simulation.
"""

from repro.db.datatypes import Column, Schema, DataType, date_to_num, num_to_date
from repro.db.shmem import SharedMemory, PrivateMemory
from repro.db.table import HeapTable
from repro.db.btree import BTreeIndex
from repro.db.engine import Database, Backend, QueryResult

__all__ = [
    "Column",
    "Schema",
    "DataType",
    "date_to_num",
    "num_to_date",
    "SharedMemory",
    "PrivateMemory",
    "HeapTable",
    "BTreeIndex",
    "Database",
    "Backend",
    "QueryResult",
]
