"""A mini-SQL front end covering the paper's query shapes.

Supported grammar (one SELECT block, the "limited form of SQL" the paper
itself worked within):

    SELECT item [, item]...
    FROM table [, table]...
    [WHERE predicate]
    [GROUP BY column [, column]...]
    [ORDER BY key [ASC|DESC] [, key [ASC|DESC]]...]

with items being expressions (optionally aliased with ``AS``), aggregate
calls (``SUM``/``COUNT``/``AVG``/``MIN``/``MAX``), arithmetic, comparisons,
``BETWEEN``, ``IN``, ``LIKE``, ``AND``/``OR``/``NOT``, and date literals
``DATE 'YYYY-MM-DD'`` (stored as day numbers).
"""

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.db.datatypes import date_to_num
from repro.db.expr import (
    AggCall, And, Between, BinOp, Cmp, Col, Const, InList, Like, Not, Or,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "AND", "OR", "NOT",
    "AS", "BETWEEN", "IN", "LIKE", "ASC", "DESC", "DATE",
    "SUM", "COUNT", "AVG", "MIN", "MAX",
    "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET",
}

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d+|\.\d+|\d+)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<symbol><=|>=|<>|!=|=|<|>|\(|\)|,|\*|\+|-|/)"
    r")"
)


class SqlError(ValueError):
    """Raised for syntax errors in a query string."""


@dataclass
class SelectItem:
    """One output expression with an optional alias."""

    expr: Any
    alias: Optional[str] = None


@dataclass
class OrderItem:
    """One ORDER BY key: a column name or alias, plus direction."""

    key: str
    asc: bool = True


@dataclass
class SelectStatement:
    """Parsed single-block SELECT."""

    items: List[SelectItem]
    tables: List[str]
    where: List[Any] = field(default_factory=list)  # top-level conjuncts
    group_by: List[str] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)


@dataclass
class InsertStatement:
    """``INSERT INTO table VALUES (...), (...)`` with full-width rows."""

    table: str
    rows: List[List[Any]]


@dataclass
class DeleteStatement:
    """``DELETE FROM table [WHERE predicate]``."""

    table: str
    where: List[Any] = field(default_factory=list)


@dataclass
class UpdateStatement:
    """``UPDATE table SET col = expr [, ...] [WHERE predicate]``."""

    table: str
    assignments: List[Any] = field(default_factory=list)  # (col, expr)
    where: List[Any] = field(default_factory=list)


def tokenize(text):
    """Split a query string into (kind, value) tokens."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            rest = text[pos:].strip()
            if not rest:
                break
            raise SqlError(f"cannot tokenize near {rest[:25]!r}")
        pos = match.end()
        if match.lastgroup == "number":
            value = match.group("number")
            tokens.append(("number", float(value) if "." in value else int(value)))
        elif match.lastgroup == "ident":
            word = match.group("ident")
            if word.upper() in _KEYWORDS:
                tokens.append(("keyword", word.upper()))
            else:
                tokens.append(("ident", word.lower()))
        elif match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(("string", raw))
        else:
            tokens.append(("symbol", match.group("symbol")))
    return tokens


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ("eof", None)

    def next(self):
        tok = self.peek()
        self.pos += 1
        return tok

    def accept(self, kind, value=None):
        tok = self.peek()
        if tok[0] == kind and (value is None or tok[1] == value):
            self.pos += 1
            return tok[1]
        return None

    def expect(self, kind, value=None):
        tok = self.next()
        if tok[0] != kind or (value is not None and tok[1] != value):
            raise SqlError(f"expected {value or kind}, got {tok[1]!r}")
        return tok[1]

    # -- statement ---------------------------------------------------------------

    def statement(self):
        kind, value = self.peek()
        if (kind, value) == ("keyword", "SELECT"):
            return self.select_statement()
        if (kind, value) == ("keyword", "INSERT"):
            return self.insert_statement()
        if (kind, value) == ("keyword", "DELETE"):
            return self.delete_statement()
        if (kind, value) == ("keyword", "UPDATE"):
            return self.update_statement()
        raise SqlError(f"expected a statement, got {value!r}")

    def insert_statement(self):
        self.expect("keyword", "INSERT")
        self.expect("keyword", "INTO")
        table = self.expect("ident")
        self.expect("keyword", "VALUES")
        rows = [self.value_row()]
        while self.accept("symbol", ","):
            rows.append(self.value_row())
        if self.peek()[0] != "eof":
            raise SqlError(f"trailing tokens at {self.peek()[1]!r}")
        return InsertStatement(table, rows)

    def value_row(self):
        self.expect("symbol", "(")
        values = [self.constant().value]
        while self.accept("symbol", ","):
            values.append(self.constant().value)
        self.expect("symbol", ")")
        return values

    def delete_statement(self):
        self.expect("keyword", "DELETE")
        self.expect("keyword", "FROM")
        table = self.expect("ident")
        where = self.optional_where()
        if self.peek()[0] != "eof":
            raise SqlError(f"trailing tokens at {self.peek()[1]!r}")
        return DeleteStatement(table, where)

    def update_statement(self):
        self.expect("keyword", "UPDATE")
        table = self.expect("ident")
        self.expect("keyword", "SET")
        assignments = [self.assignment()]
        while self.accept("symbol", ","):
            assignments.append(self.assignment())
        where = self.optional_where()
        if self.peek()[0] != "eof":
            raise SqlError(f"trailing tokens at {self.peek()[1]!r}")
        return UpdateStatement(table, assignments, where)

    def assignment(self):
        col = self.expect("ident")
        self.expect("symbol", "=")
        return (col, self.additive())

    def optional_where(self):
        if self.accept("keyword", "WHERE"):
            pred = self.or_expr()
            return list(pred.parts) if isinstance(pred, And) else [pred]
        return []

    def select_statement(self):
        self.expect("keyword", "SELECT")
        items = [self.select_item()]
        while self.accept("symbol", ","):
            items.append(self.select_item())
        self.expect("keyword", "FROM")
        tables = [self.expect("ident")]
        while self.accept("symbol", ","):
            tables.append(self.expect("ident"))
        where = []
        if self.accept("keyword", "WHERE"):
            pred = self.or_expr()
            where = list(pred.parts) if isinstance(pred, And) else [pred]
        group_by = []
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            group_by.append(self.expect("ident"))
            while self.accept("symbol", ","):
                group_by.append(self.expect("ident"))
        order_by = []
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order_by.append(self.order_item())
            while self.accept("symbol", ","):
                order_by.append(self.order_item())
        if self.peek()[0] != "eof":
            raise SqlError(f"trailing tokens at {self.peek()[1]!r}")
        return SelectStatement(items, tables, where, group_by, order_by)

    def select_item(self):
        expr = self.or_expr()
        alias = None
        if self.accept("keyword", "AS"):
            alias = self.expect("ident")
        return SelectItem(expr, alias)

    def order_item(self):
        key = self.expect("ident")
        asc = True
        if self.accept("keyword", "DESC"):
            asc = False
        else:
            self.accept("keyword", "ASC")
        return OrderItem(key, asc)

    # -- expressions (precedence: OR < AND < NOT < cmp < add < mul < unary) -------

    def or_expr(self):
        parts = [self.and_expr()]
        while self.accept("keyword", "OR"):
            parts.append(self.and_expr())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def and_expr(self):
        parts = [self.not_expr()]
        while self.accept("keyword", "AND"):
            parts.append(self.not_expr())
        if len(parts) == 1:
            return parts[0]
        flat = []
        for p in parts:
            flat.extend(p.parts if isinstance(p, And) else [p])
        return And(tuple(flat))

    def not_expr(self):
        if self.accept("keyword", "NOT"):
            return Not(self.not_expr())
        return self.comparison()

    def comparison(self):
        left = self.additive()
        tok = self.peek()
        if tok == ("keyword", "BETWEEN"):
            self.next()
            lo = self.additive()
            self.expect("keyword", "AND")
            hi = self.additive()
            return Between(left, lo, hi)
        if tok == ("keyword", "IN"):
            self.next()
            self.expect("symbol", "(")
            values = [self.constant()]
            while self.accept("symbol", ","):
                values.append(self.constant())
            self.expect("symbol", ")")
            return InList(left, tuple(values))
        if tok == ("keyword", "LIKE"):
            self.next()
            pattern = self.expect("string")
            return Like(left, pattern)
        if tok[0] == "symbol" and tok[1] in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.next()
            right = self.additive()
            return Cmp(tok[1], left, right)
        return left

    def additive(self):
        left = self.multiplicative()
        while True:
            tok = self.peek()
            if tok[0] == "symbol" and tok[1] in ("+", "-"):
                self.next()
                left = BinOp(tok[1], left, self.multiplicative())
            else:
                return left

    def multiplicative(self):
        left = self.unary()
        while True:
            tok = self.peek()
            if tok[0] == "symbol" and tok[1] in ("*", "/"):
                self.next()
                left = BinOp(tok[1], left, self.unary())
            else:
                return left

    def unary(self):
        if self.accept("symbol", "-"):
            operand = self.unary()
            if isinstance(operand, Const):
                return Const(-operand.value)
            return BinOp("-", Const(0), operand)
        return self.primary()

    def primary(self):
        kind, value = self.peek()
        if kind == "symbol" and value == "(":
            self.next()
            inner = self.or_expr()
            self.expect("symbol", ")")
            return inner
        if kind == "number":
            self.next()
            return Const(value)
        if kind == "string":
            self.next()
            return Const(value)
        if kind == "keyword" and value == "DATE":
            self.next()
            literal = self.expect("string")
            return Const(date_to_num(literal))
        if kind == "keyword" and value in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            self.next()
            self.expect("symbol", "(")
            if value == "COUNT" and self.accept("symbol", "*"):
                self.expect("symbol", ")")
                return AggCall("COUNT", None)
            arg = self.or_expr()
            self.expect("symbol", ")")
            return AggCall(value, arg)
        if kind == "ident":
            self.next()
            return Col(value)
        raise SqlError(f"unexpected token {value!r}")

    def constant(self):
        kind, value = self.next()
        if kind in ("number", "string"):
            return Const(value)
        if kind == "keyword" and value == "DATE":
            return Const(date_to_num(self.expect("string")))
        raise SqlError(f"expected a constant, got {value!r}")


def parse(text):
    """Parse SQL text into a statement (SELECT, INSERT, DELETE or UPDATE)."""
    return _Parser(tokenize(text)).statement()
