"""The Database facade: catalog, backends, planning and execution.

A :class:`Database` owns the shared memory layout, the Buffer Cache and
Lock Management modules, the heap tables and B-tree indices, and the
planner.  A :class:`Backend` is one simulated Postgres95 process with its
own private heap and transaction id; the paper's workloads run one backend
per processor (inter-query parallelism).
"""

from repro.db.buffer import BufferManager
from repro.db.cost import CostModel
from repro.db.executor import Executor
from repro.db.locks import LockManager
from repro.db.plan import explain, operator_set
from repro.db.planner import Planner
from repro.db.shmem import PrivateMemory, SharedMemory
from repro.db.sql import SelectStatement, parse
from repro.db.table import HeapTable
from repro.db.btree import BTreeIndex
from repro.db import reference


class QueryResult:
    """Rows plus their output column names."""

    def __init__(self, columns, rows):
        self.columns = columns
        self.rows = rows

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def as_dicts(self):
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class Backend:
    """One database process: private heap + transaction identity.

    The transaction id is a deterministic function of the node: it feeds
    the Xid Hash addresses the lock manager touches, so a global counter
    would make simulated miss counts depend on how many backends happened
    to exist earlier in the process.  Pass ``xid=`` to override (e.g. for
    two writing backends on one node).
    """

    XID_BASE = 100

    def __init__(self, db, node, arena_size=64 * 1024, xid=None):
        self.db = db
        self.node = node
        self.priv = PrivateMemory(node, arena_size=arena_size)
        self.xid = Backend.XID_BASE + node if xid is None else xid


class Database:
    """A memory-resident database instance."""

    def __init__(self, cost_model=None, max_pages=16384,
                 lock_check_per_rescan=True):
        #: Postgres95 revalidates locks on every index-scan rescan; setting
        #: this false ablates that behaviour (see the ablation benchmarks).
        self.lock_check_per_rescan = lock_check_per_rescan
        self.cost = cost_model or CostModel()
        self.shmem = SharedMemory(max_pages=max_pages)
        self.bufmgr = BufferManager(self.shmem, self.cost)
        self.lockmgr = LockManager(self.shmem, self.cost)
        self.tables = {}
        self.indexes = {}
        self._table_indexes = {}
        self._next_oid = 1000

    # -- DDL / loading --------------------------------------------------------------

    def create_table(self, schema):
        """Create a heap table from a :class:`Schema`."""
        if schema.name in self.tables:
            raise ValueError(f"table {schema.name!r} already exists")
        table = HeapTable(schema, self.shmem, oid=self._next_oid)
        self._next_oid += 1
        self.tables[schema.name] = table
        self._table_indexes[schema.name] = []
        return table

    def load(self, name, rows):
        """Bulk-load rows into a table and refresh dependent indices."""
        table = self.tables[name]
        table.load(rows)
        for ix in self._table_indexes[name]:
            ix.bulk_build()

    def create_index(self, name, table_name, key_cols):
        """Create and build a B-tree index."""
        if name in self.indexes:
            raise ValueError(f"index {name!r} already exists")
        table = self.tables[table_name]
        ix = BTreeIndex(name, table, key_cols, self.shmem, self.cost)
        ix.bulk_build()
        self.indexes[name] = ix
        self._table_indexes[table_name].append(ix)
        return ix

    def table_indexes(self, table_name):
        """Indices defined on ``table_name``."""
        return list(self._table_indexes[table_name])

    # -- planning --------------------------------------------------------------------

    def parse(self, sql):
        """Parse SQL text into a statement."""
        return parse(sql)

    def plan(self, query, hints=None):
        """Plan SQL text or a parsed statement into a plan tree."""
        stmt = parse(query) if isinstance(query, str) else query
        return Planner(self).plan(stmt, hints=hints)

    def explain(self, query, hints=None):
        """Render the chosen plan as indented text."""
        return explain(self.plan(query, hints=hints))

    def operator_set(self, query, hints=None):
        """The paper's Table-1 operator labels for a query's plan."""
        return operator_set(self.plan(query, hints=hints))

    # -- execution --------------------------------------------------------------------

    def backend(self, node, arena_size=64 * 1024):
        """Create a backend (simulated database process) on ``node``."""
        return Backend(self, node, arena_size=arena_size)

    def execute(self, query, backend, hints=None):
        """Traced generator: run a query on ``backend``; returns the rows
        (or, for DML, the affected-row count).

        Use :func:`repro.db.tracing.drain` to run it without a simulator,
        or hand the generator to the interleaver as a processor stream.
        """
        from repro.db.dml import execute_dml

        if hasattr(query, "label"):
            plan = query
        else:
            stmt = parse(query) if isinstance(query, str) else query
            if not isinstance(stmt, SelectStatement):
                count = yield from execute_dml(self, stmt, backend)
                return count
            plan = Planner(self).plan(stmt, hints=hints)
        executor = Executor(self, backend)
        rows = yield from executor.run_plan(plan)
        return rows

    def run(self, query, backend=None, hints=None):
        """Run a statement untraced.

        Returns a :class:`QueryResult` for SELECTs (or plans) and the
        affected-row count for DML.
        """
        from repro.db.tracing import drain

        backend = backend or self.backend(0)
        if hasattr(query, "label"):
            plan = query
        else:
            stmt = parse(query) if isinstance(query, str) else query
            if not isinstance(stmt, SelectStatement):
                return drain(self.execute(stmt, backend))
            plan = Planner(self).plan(stmt, hints=hints)
        rows = drain(self.execute(plan, backend))
        return QueryResult(plan.output, rows)

    def run_reference(self, query):
        """Evaluate a query with the independent reference implementation."""
        stmt = parse(query) if isinstance(query, str) else query
        if not isinstance(stmt, SelectStatement):
            raise TypeError("run_reference expects SQL text or a SelectStatement")
        return reference.evaluate(self, stmt)

    # -- reporting ---------------------------------------------------------------------

    def size_report(self):
        """Per-table storage summary (rows, pages, bytes)."""
        out = {}
        for name, table in sorted(self.tables.items()):
            out[name] = {
                "rows": table.n_rows,
                "pages": table.n_pages,
                "bytes": table.data_bytes(),
            }
        return out
