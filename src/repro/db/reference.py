"""Reference query evaluator: an independent, untraced implementation.

Tests compare the plan executor's output against this module.  It shares
no code with the executor: predicates are applied per table, joins are
simple hash joins in FROM-list order, grouping and ordering use plain
dict/sort operations.  Correct-but-slow by design; run it at test scales.
"""

from repro.db.executor import _agg_final, _agg_init, _agg_step, sort_rows
from repro.db.expr import AggCall, Col, Cmp, columns_of, compile_expr, contains_agg


class ReferenceError(ValueError):
    """Raised when a statement is outside the reference evaluator's scope."""


def _split_where(stmt, col_table):
    per_table = {}
    joins = []
    for pred in stmt.where:
        cols = columns_of(pred)
        tables = {col_table[c] for c in cols}
        if (isinstance(pred, Cmp) and pred.op == "=" and len(tables) == 2
                and isinstance(pred.left, Col) and isinstance(pred.right, Col)):
            joins.append((pred.left.name, pred.right.name))
        elif len(tables) == 1:
            per_table.setdefault(tables.pop(), []).append(pred)
        else:
            raise ReferenceError(f"unsupported cross-table predicate {pred!r}")
    return per_table, joins


def evaluate(db, stmt):
    """Evaluate a parsed statement; returns rows as lists of values."""
    col_table = {}
    for t in stmt.tables:
        for c in db.tables[t].schema.names():
            col_table[c] = t
    per_table, joins = _split_where(stmt, col_table)

    # Filter each table independently.
    filtered = {}
    for t in stmt.tables:
        table = db.tables[t]
        positions = {c: i for i, c in enumerate(table.schema.names())}
        preds = [compile_expr(p, positions) for p in per_table.get(t, [])]
        filtered[t] = [
            row for rid, row in enumerate(table.rows)
            if rid not in table.deleted and all(p(row) for p in preds)
        ]

    # Join in FROM order with hash joins on the available equi-predicates.
    first = stmt.tables[0]
    env_cols = list(db.tables[first].schema.names())
    env_rows = [list(r) for r in filtered[first]]
    joined = {first}
    pending = list(stmt.tables[1:])
    while pending:
        attached = None
        for t in pending:
            keys = []
            for a, b in joins:
                ta, tb = col_table[a], col_table[b]
                if ta in joined and tb == t:
                    keys.append((a, b))
                elif tb in joined and ta == t:
                    keys.append((b, a))
            if keys:
                attached = (t, keys)
                break
        if attached is None:
            raise ReferenceError("cartesian join required")
        t, keys = attached
        t_cols = list(db.tables[t].schema.names())
        t_positions = {c: i for i, c in enumerate(t_cols)}
        env_positions = {c: i for i, c in enumerate(env_cols)}
        build = {}
        for row in filtered[t]:
            k = tuple(row[t_positions[y]] for _, y in keys)
            build.setdefault(k, []).append(row)
        new_rows = []
        for erow in env_rows:
            k = tuple(erow[env_positions[x]] for x, _ in keys)
            for trow in build.get(k, []):
                new_rows.append(erow + list(trow))
        env_rows = new_rows
        env_cols = env_cols + t_cols
        joined.add(t)
        pending.remove(t)

    positions = {c: i for i, c in enumerate(env_cols)}

    # Aggregation.
    agg_items = [i for i in stmt.items if contains_agg(i.expr)]
    if stmt.group_by or agg_items:
        rows = _group_eval(stmt, env_rows, positions)
        out_cols = _output_names(stmt)
    else:
        fns = [compile_expr(i.expr, positions) for i in stmt.items]
        rows = [[fn(r) for fn in fns] for r in env_rows]
        out_cols = _output_names(stmt)

    if stmt.order_by:
        name_pos = {c: i for i, c in enumerate(out_cols)}
        specs = [(name_pos[o.key], o.asc) for o in stmt.order_by]
        rows = sort_rows(rows, specs)
    return rows


def _output_names(stmt):
    names = []
    for i, item in enumerate(stmt.items):
        if item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, Col):
            names.append(item.expr.name)
        else:
            names.append(f"col{i}")
    return names


def _group_eval(stmt, env_rows, positions):
    group_idx = [positions[c] for c in stmt.group_by]

    aggs = []

    def extract(expr):
        if isinstance(expr, AggCall):
            idx = len(aggs)
            fn = compile_expr(expr.arg, positions) if expr.arg is not None else None
            aggs.append((expr.func, fn))
            return ("agg", idx)
        if isinstance(expr, Col):
            return ("col", positions[expr.name])
        if hasattr(expr, "left"):
            from repro.db.expr import _ARITH_OPS, _CMP_OPS
            op = _ARITH_OPS.get(expr.op) or _CMP_OPS[expr.op]
            left, right = extract(expr.left), extract(expr.right)
            return ("op", op, left, right)
        if hasattr(expr, "value"):
            return ("const", expr.value)
        raise ReferenceError(f"unsupported select expression {expr!r}")

    shapes = [extract(i.expr) for i in stmt.items]

    groups = {}
    order = []
    for row in env_rows:
        key = tuple(row[i] for i in group_idx)
        if key not in groups:
            groups[key] = [_agg_init(f) for f, _ in aggs]
            order.append(key)
        accs = groups[key]
        for j, (func, fn) in enumerate(aggs):
            accs[j] = _agg_step(func, accs[j], fn(row) if fn else None)

    if not stmt.group_by and not groups:
        groups[()] = [_agg_init(f) for f, _ in aggs]
        order.append(())

    def render(shape, key, finals):
        kind = shape[0]
        if kind == "agg":
            return finals[shape[1]]
        if kind == "col":
            pos = shape[1]
            return key[group_idx.index(pos)]
        if kind == "const":
            return shape[1]
        _, op, left, right = shape
        return op(render(left, key, finals), render(right, key, finals))

    out = []
    for key in sorted(order) if stmt.group_by else order:
        finals = [_agg_final(f, a) for (f, _), a in zip(aggs, groups[key])]
        out.append([render(s, key, finals) for s in shapes])
    return out
