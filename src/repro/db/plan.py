"""Query plan trees.

Plan nodes are declarative descriptions; the executor instantiates them
into running operator pipelines.  The planner produces left-deep trees, as
Postgres95 does (paper, section 2.1.2).

Column naming: TPC-D column names are globally unique (``l_*``, ``o_*``,
...), so plan outputs are flat name lists and joins concatenate them.
"""

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class Param:
    """A runtime parameter bound from the outer side of a join."""

    outer_col: str


@dataclass
class PlanNode:
    """Base class; ``output`` is the ordered list of produced column names."""

    output: List[str]

    def children(self):
        return []

    @property
    def label(self):
        return type(self).__name__


@dataclass
class SeqScan(PlanNode):
    """Sequential Scan select over a heap table.

    ``partition`` optionally restricts the scan to slice ``k`` of ``n``
    contiguous page ranges -- the building block for intra-query
    parallelism (the paper's future work, implemented in
    :mod:`repro.core.parallel`).
    """

    table: str = ""
    pred: Any = None  # residual predicate expression, or None
    partition: Optional[Tuple[int, int]] = None  # (k, n)

    label = "SeqScan"


@dataclass
class IndexScan(PlanNode):
    """Index Scan select: B-tree probe plus heap tuple fetches.

    ``eq_values`` bind the leading index columns (constants or
    :class:`Param`); ``lo``/``hi`` optionally bound the next index column.
    ``pred`` is the residual predicate applied to fetched tuples.
    """

    table: str = ""
    index: str = ""
    eq_values: Tuple[Any, ...] = ()
    lo: Optional[Any] = None
    hi: Optional[Any] = None
    lo_incl: bool = True
    hi_incl: bool = True
    pred: Any = None

    label = "IndexScan"


@dataclass
class NestLoop(PlanNode):
    """Nested Loop join; the inner side is a parameterized IndexScan."""

    outer: PlanNode = None
    inner: IndexScan = None
    filter: Any = None  # residual join predicate over the combined row

    label = "NestLoop"

    def children(self):
        return [self.outer, self.inner]


@dataclass
class MergeJoin(PlanNode):
    """Merge join over a sorted outer stream.

    As in the paper's Q12 plan, the inner side is an index scan that is
    probed with each distinct outer key (the sorted outer stream guarantees
    each inner region is visited once, in order).
    """

    outer: PlanNode = None
    inner: IndexScan = None
    outer_key: str = ""
    filter: Any = None

    label = "MergeJoin"

    def children(self):
        return [self.outer, self.inner]


@dataclass
class HashJoin(PlanNode):
    """Hash join: build on the inner child, probe with the outer."""

    outer: PlanNode = None
    inner: PlanNode = None
    outer_key: str = ""
    inner_key: str = ""
    filter: Any = None

    label = "HashJoin"

    def children(self):
        return [self.outer, self.inner]


@dataclass
class Sort(PlanNode):
    """Materializing sort on one or more keys."""

    child: PlanNode = None
    keys: List[Tuple[str, bool]] = field(default_factory=list)  # (col, asc)

    label = "Sort"

    def children(self):
        return [self.child]


@dataclass
class Group(PlanNode):
    """Grouping over a sorted input, with optional aggregate computation.

    ``aggs`` is a list of ``(func, arg_expr_or_None, out_name)``.
    """

    child: PlanNode = None
    group_cols: List[str] = field(default_factory=list)
    aggs: List[Tuple[str, Any, str]] = field(default_factory=list)

    label = "Group"

    def children(self):
        return [self.child]


@dataclass
class Aggregate(PlanNode):
    """Ungrouped aggregation producing a single row."""

    child: PlanNode = None
    aggs: List[Tuple[str, Any, str]] = field(default_factory=list)

    label = "Aggregate"

    def children(self):
        return [self.child]


@dataclass
class Project(PlanNode):
    """Final projection computing the SELECT list expressions."""

    child: PlanNode = None
    exprs: List[Any] = field(default_factory=list)

    label = "Project"

    def children(self):
        return [self.child]


def walk(plan):
    """Yield every node of a plan tree, pre-order."""
    yield plan
    for child in plan.children():
        yield from walk(child)


def operator_set(plan):
    """Return the paper's Table-1 operator labels used by a plan.

    Labels: ``SS``, ``IS``, ``NL``, ``M``, ``H``, ``Sort``, ``Group``,
    ``Aggr``.
    """
    ops = set()
    for node in walk(plan):
        if isinstance(node, SeqScan):
            ops.add("SS")
        elif isinstance(node, IndexScan):
            ops.add("IS")
        elif isinstance(node, NestLoop):
            ops.add("NL")
        elif isinstance(node, MergeJoin):
            ops.add("M")
        elif isinstance(node, HashJoin):
            ops.add("H")
        elif isinstance(node, Sort):
            ops.add("Sort")
        elif isinstance(node, Group):
            ops.add("Group")
            if node.aggs:
                ops.add("Aggr")
        elif isinstance(node, Aggregate):
            ops.add("Aggr")
    return ops


def explain(plan, indent=0):
    """Render a plan tree as indented text (like EXPLAIN output)."""
    pad = "  " * indent
    detail = ""
    if isinstance(plan, SeqScan):
        detail = f" on {plan.table}"
    elif isinstance(plan, IndexScan):
        detail = f" on {plan.table} using {plan.index}"
    elif isinstance(plan, (MergeJoin, HashJoin)):
        detail = f" key={getattr(plan, 'outer_key', '')}"
    elif isinstance(plan, Sort):
        detail = f" by {[k for k, _ in plan.keys]}"
    elif isinstance(plan, Group):
        detail = f" by {plan.group_cols}"
    lines = [f"{pad}{plan.label}{detail}"]
    for child in plan.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
