"""Schema and value types for the relational engine.

Tuples are fixed-width: each column has a declared byte width, and a tuple's
attributes live at fixed offsets from the start of its slot in an 8-KB
buffer block.  Fixed widths keep the address arithmetic exact, which is what
the simulation needs; TPC-D's variable-width comment columns are modeled at
their average width.

Dates are stored as integer day counts from 1992-01-01 (the start of the
TPC-D business period).
"""

import datetime
from dataclasses import dataclass
from enum import Enum

TUPLE_HEADER_BYTES = 8
EPOCH = datetime.date(1992, 1, 1)


class DataType(Enum):
    """Column data types with their on-page byte widths."""

    INT4 = "int4"
    INT8 = "int8"
    FLOAT8 = "float8"
    DATE = "date"
    CHAR = "char"  # fixed width, given per column

    def default_width(self):
        return {"int4": 4, "int8": 8, "float8": 8, "date": 4}.get(self.value)


@dataclass(frozen=True)
class Column:
    """One attribute of a relation."""

    name: str
    type: DataType
    width: int = 0

    def __post_init__(self):
        if self.type is DataType.CHAR:
            if self.width <= 0:
                raise ValueError(f"char column {self.name!r} needs an explicit width")
        elif self.width == 0:
            object.__setattr__(self, "width", self.type.default_width())


class Schema:
    """Ordered set of columns with precomputed attribute offsets."""

    def __init__(self, name, columns):
        self.name = name
        self.columns = list(columns)
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema {name!r}")
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        offsets = []
        off = TUPLE_HEADER_BYTES
        for col in self.columns:
            offsets.append(off)
            off += col.width
        self.offsets = offsets
        self.tuple_size = off

    def __len__(self):
        return len(self.columns)

    def __contains__(self, name):
        return name in self._index

    def column_index(self, name):
        """Position of column ``name``; raises ``KeyError`` if absent."""
        return self._index[name]

    def column(self, name):
        return self.columns[self._index[name]]

    def offset_of(self, name):
        """Byte offset of column ``name`` within a tuple slot."""
        return self.offsets[self._index[name]]

    def width_of(self, name):
        return self.columns[self._index[name]].width

    def names(self):
        return [c.name for c in self.columns]


def date_to_num(value):
    """Convert ``'YYYY-MM-DD'`` or a ``datetime.date`` to a day number."""
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    return (value - EPOCH).days


def num_to_date(num):
    """Convert a day number back to a ``datetime.date``."""
    return EPOCH + datetime.timedelta(days=num)


def int4(name):
    """Shorthand for a 4-byte integer column."""
    return Column(name, DataType.INT4)


def float8(name):
    """Shorthand for an 8-byte float column."""
    return Column(name, DataType.FLOAT8)


def date(name):
    """Shorthand for a date column."""
    return Column(name, DataType.DATE)


def char(name, width):
    """Shorthand for a fixed-width character column."""
    return Column(name, DataType.CHAR, width)
