"""Conventions and helpers for the engine's event-emitting generators.

Every traced engine operation is a Python generator that *yields* memory
events (tuples, see :mod:`repro.memsim.events`) and *returns* its result.
Callers compose them with ``result = yield from op(...)`` so events
propagate up to the interleaver while results flow through the call chain.

Operator pipelines additionally yield *rows* (Python lists) interleaved
with events; consumers discriminate with ``type(item) is list``.

The helpers here run traced generators outside a simulation -- tests and
the reference executor use them to get results while counting or
discarding the events.
"""


def drain(gen):
    """Run a traced generator to completion, discarding events.

    Returns the generator's return value.
    """
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def collect(gen):
    """Run a traced generator; return ``(events, return_value)``."""
    events = []
    try:
        while True:
            events.append(next(gen))
    except StopIteration as stop:
        return events, stop.value


def rows_and_events(gen):
    """Split a row-yielding pipeline into ``(rows, events)`` lists."""
    rows, events = [], []
    for item in gen:
        if type(item) is list:
            rows.append(item)
        else:
            events.append(item)
    return rows, events
