"""Simulated address spaces: the Shared Memory Module and private heaps.

The shared layout mirrors Figure 4 of the paper.  From low to high
addresses: the spinlock words (``LockMgrLock``, ``BufMgrLock``), the Lock
Management Module's two hash tables (Lock Hash, Xid Hash), the invalidation
cache, the Buffer Lookup Hash, the Buffer Descriptors, and finally the
Buffer Blocks -- 8-KB pages holding database data and indices.

Addresses are plain integers; no bytes are ever stored at them.  The layout
exists so that every reference the engine makes can be classified by the
data structure it lands on, exactly the attribution the paper performs.
"""

from repro.memsim.events import DataClass

PAGE_SIZE = 8192
SHARED_BASE = 0x1000_0000
PRIVATE_BASE = 0x8000_0000
PRIVATE_STRIDE = 0x0800_0000

LOCK_ENTRY_BYTES = 48
XID_ENTRY_BYTES = 32
BUFDESC_BYTES = 64
BUFLOOK_BUCKET_BYTES = 16


class SharedMemory:
    """Address allocator and classifier for the Shared Memory Module."""

    def __init__(self, max_pages=16384, lock_buckets=256, xid_buckets=256,
                 buflook_buckets=1024):
        base = SHARED_BASE
        # Spinlock words, one cache line apart so they never false-share.
        self.lockmgr_lock_addr = base
        self.bufmgr_lock_addr = base + 64
        self.oid_lock_addr = base + 128
        base += 256

        self.lock_hash_base = base
        self.lock_buckets = lock_buckets
        base += lock_buckets * LOCK_ENTRY_BYTES

        self.xid_hash_base = base
        self.xid_buckets = xid_buckets
        base += xid_buckets * XID_ENTRY_BYTES

        self.inval_cache_base = base
        base += 4096

        self.buflook_base = base
        self.buflook_buckets = buflook_buckets
        base += buflook_buckets * BUFLOOK_BUCKET_BYTES

        self.bufdesc_base = base
        self.max_pages = max_pages
        base += max_pages * BUFDESC_BYTES

        # Buffer blocks start on a page boundary.
        base = (base + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        self.blocks_base = base
        self._n_pages = 0
        # Per-page data class: DataClass.DATA or DataClass.INDEX.
        self.page_kinds = []

    # -- buffer blocks ---------------------------------------------------------

    def alloc_page(self, kind):
        """Allocate one 8-KB buffer block holding ``kind`` data.

        ``kind`` must be ``DataClass.DATA`` or ``DataClass.INDEX``.  Returns
        the global page index.
        """
        if kind not in (DataClass.DATA, DataClass.INDEX):
            raise ValueError(f"buffer blocks hold DATA or INDEX, not {kind!r}")
        if self._n_pages >= self.max_pages:
            raise MemoryError(
                f"out of buffer blocks ({self.max_pages}); raise max_pages"
            )
        idx = self._n_pages
        self._n_pages += 1
        self.page_kinds.append(kind)
        return idx

    @property
    def n_pages(self):
        return self._n_pages

    def page_addr(self, page_idx):
        """Base address of buffer block ``page_idx``."""
        return self.blocks_base + page_idx * PAGE_SIZE

    def page_of_addr(self, addr):
        """Global page index containing ``addr`` (must be a block address)."""
        off = addr - self.blocks_base
        if off < 0 or off >= self._n_pages * PAGE_SIZE:
            raise ValueError(f"address {addr:#x} is not inside the buffer blocks")
        return off // PAGE_SIZE

    # -- metadata addresses ------------------------------------------------------

    def bufdesc_addr(self, page_idx):
        """Address of the buffer descriptor for ``page_idx``."""
        return self.bufdesc_base + page_idx * BUFDESC_BYTES

    def buflook_bucket_addr(self, key_hash):
        """Address of a Buffer Lookup Hash bucket."""
        return self.buflook_base + (key_hash % self.buflook_buckets) * BUFLOOK_BUCKET_BYTES

    def lock_hash_addr(self, key_hash):
        """Address of a Lock Hash entry."""
        return self.lock_hash_base + (key_hash % self.lock_buckets) * LOCK_ENTRY_BYTES

    def xid_hash_addr(self, key_hash):
        """Address of a Xid Hash entry."""
        return self.xid_hash_base + (key_hash % self.xid_buckets) * XID_ENTRY_BYTES

    def classify(self, addr):
        """Return the :class:`DataClass` of an address (diagnostics only).

        The hot path never calls this -- emitters attach the class to each
        event -- but tests use it to check that the layout and the emitted
        classes agree.
        """
        if addr >= PRIVATE_BASE:
            return DataClass.PRIV
        if addr >= self.blocks_base:
            return self.page_kinds[self.page_of_addr(addr)]
        if addr >= self.bufdesc_base:
            return DataClass.BUFDESC
        if addr >= self.buflook_base:
            return DataClass.BUFLOOK
        if addr >= self.inval_cache_base:
            return DataClass.METAOTHER
        if addr >= self.xid_hash_base:
            return DataClass.XIDHASH
        if addr >= self.lock_hash_base:
            return DataClass.LOCKHASH
        if addr >= SHARED_BASE:
            # Spinlock words: only the LockMgrLock word is the paper's
            # "LockSLock"; the other spinlocks count as other metadata.
            if self.lockmgr_lock_addr <= addr < self.lockmgr_lock_addr + 64:
                return DataClass.LOCKSLOCK
            return DataClass.METAOTHER
        raise ValueError(f"address {addr:#x} below the shared segment")

    def home_fn(self):
        """The NUMA page-placement function for this layout.

        Placement depends only on the address-space constants, not on any
        per-database state, so this returns the module-level
        :func:`shared_home_fn` -- which replay-only sweep workers use
        directly, without materializing a database.
        """
        return shared_home_fn()


def shared_home_fn():
    """The standard NUMA page-placement function.

    Shared pages are distributed round-robin over the four nodes; private
    pages live on their owner's node.  The mapping is pure address
    arithmetic over the fixed layout constants.
    """
    def home(addr):
        if addr >= PRIVATE_BASE:
            return ((addr - PRIVATE_BASE) // PRIVATE_STRIDE) & 3
        return (addr >> 13) & 3

    return home


class PrivateMemory:
    """Per-backend private heap.

    Two disciplines coexist, mirroring Postgres95's memory contexts:

    * :meth:`alloc` -- persistent allocations (executor node state, output
      slots) that live for the whole query and are heavily reused;
    * :meth:`arena_alloc` -- short-lived per-tuple allocations that cycle
      through a bounded arena, the way palloc'd per-tuple contexts churn
      through the heap.  The arena is sized several times the primary cache,
      which is what makes private data miss in L1 and mostly hit in L2
      (Figure 7 / Figure 10 of the paper).

    Stack and static variables are *not* modeled at all: the paper's scaled
    methodology assumes they always hit (section 4.2).
    """

    def __init__(self, node, arena_size=64 * 1024):
        if node < 0 or node >= 16:
            raise ValueError(f"node {node} out of range")
        self.node = node
        self.base = PRIVATE_BASE + node * PRIVATE_STRIDE
        self._bump = self.base
        self.arena_base = self.base + PRIVATE_STRIDE // 2
        self.arena_size = arena_size
        self._arena_off = 0
        # Hot-object region: small heap objects (executor state, expression
        # nodes, list cells) scattered over a span several caches wide.
        self.hot_base = self.arena_base + arena_size
        self._hot_count = 0

    def alloc(self, size, align=8):
        """Allocate a persistent private block; returns its address."""
        mask = align - 1
        self._bump = (self._bump + mask) & ~mask
        addr = self._bump
        self._bump += size
        if self._bump >= self.arena_base:
            raise MemoryError("private heap overflow into the arena")
        return addr

    def arena_alloc(self, size, align=8):
        """Allocate a short-lived block from the rotating arena."""
        mask = align - 1
        size = (size + mask) & ~mask
        if size > self.arena_size:
            raise MemoryError(f"arena allocation {size} exceeds arena {self.arena_size}")
        if self._arena_off + size > self.arena_size:
            self._arena_off = 0
        addr = self.arena_base + self._arena_off
        self._arena_off += size
        return addr

    def hot_alloc(self):
        """Allocate one small scattered heap object; returns its address.

        Objects land at pseudo-random 64-byte slots (with sub-slot skew)
        across a region the size of the arena.  This is the access pattern
        of Postgres95's many small heap nodes: no spatial locality beyond
        the object itself, which is why long cache lines *hurt* private
        data (paper, section 5.2.1).
        """
        n_slots = max(self.arena_size // 64, 1)
        idx = (self._hot_count * 40503 + 17) % n_slots
        skew = (self._hot_count % 3) * 20
        self._hot_count += 1
        return self.hot_base + idx * 64 + skew

    def reset_arena(self):
        """Rewind the arena (e.g. between queries on the same backend)."""
        self._arena_off = 0

    def reset_heap(self):
        """Free all query-lifetime allocations, reusing their addresses.

        Postgres95 releases a query's memory contexts when it finishes, so
        the next query on the same process reuses the same heap addresses.
        Call this between consecutive queries on one backend.
        """
        self._bump = self.base
        self._arena_off = 0
        self._hot_count = 0
