"""Heuristic query optimizer producing left-deep plan trees.

The planner mimics Postgres95's optimizer at the level the paper cares
about: which select algorithm each table gets (Index Scan vs Sequential
Scan), the left-deep join order, and the join algorithms (Nested Loop,
Merge, Hash).  Selectivity estimates come from simple per-column statistics
(distinct count, min, max).

Two queries in the paper's Table 1 use join methods that a textbook cost
model would not pick (Q12's merge join, Q16's hash join on an indexed
column); for those, queries may pass *join hints* -- an explicit, honest
stand-in for the quirks of Postgres95's cost model.  Hints map an inner
table name to ``"merge"`` or ``"hash"``.
"""

from repro.db.expr import (
    AggCall, And, Between, Cmp, Col, Const, InList, Like, Not, Or,
    columns_of, contains_agg,
)
from repro.db.plan import (
    Aggregate, Group, HashJoin, IndexScan, MergeJoin, NestLoop, Param,
    Project, SeqScan, Sort,
)

INDEX_SELECTIVITY_THRESHOLD = 0.25
DEFAULT_COLCOL_SELECTIVITY = 0.33
DEFAULT_LIKE_SELECTIVITY = 0.05


class PlanError(ValueError):
    """Raised when a statement cannot be planned."""


class Planner:
    """Plans parsed single-block SELECT statements against a Database."""

    def __init__(self, db):
        self.db = db

    # -- public entry ------------------------------------------------------------

    def plan(self, stmt, hints=None):
        """Return a plan tree for ``stmt``.

        ``hints`` maps inner-table names to ``"merge"``/``"hash"`` to force
        that join algorithm when the table is attached to the join tree.
        """
        hints = hints or {}
        tables = stmt.tables
        for t in tables:
            if t not in self.db.tables:
                raise PlanError(f"unknown table {t!r}")
        col_table = self._resolve_columns(stmt, tables)

        table_preds, join_preds = self._classify_predicates(stmt.where, col_table)
        needed = self._needed_columns(stmt, col_table, join_preds)

        order = self._join_order(tables, table_preds, join_preds)
        tree, joined = self._initial_scan(order[0], table_preds, needed, col_table)
        est = self._scan_estimate(order[0], table_preds)
        remaining_joins = list(join_preds)
        for t in order[1:]:
            tree, est = self._attach(
                tree, joined, t, table_preds, remaining_joins, needed, est, hints
            )
            joined.add(t)

        return self._finish(stmt, tree, col_table)

    # -- resolution ---------------------------------------------------------------

    def _resolve_columns(self, stmt, tables):
        col_table = {}
        for t in tables:
            for c in self.db.tables[t].schema.names():
                if c in col_table:
                    raise PlanError(f"ambiguous column {c!r}")
                col_table[c] = t
        referenced = set()
        for item in stmt.items:
            referenced |= columns_of(item.expr)
        for pred in stmt.where:
            referenced |= columns_of(pred)
        referenced |= set(stmt.group_by)
        aliases = {item.alias for item in stmt.items if item.alias}
        for o in stmt.order_by:
            if o.key not in aliases:
                referenced.add(o.key)
        unknown = referenced - set(col_table)
        if unknown:
            raise PlanError(f"unknown columns {sorted(unknown)}")
        return col_table

    def _classify_predicates(self, where, col_table):
        table_preds = {}
        join_preds = []
        for pred in where:
            cols = columns_of(pred)
            touched = {col_table[c] for c in cols}
            if (
                isinstance(pred, Cmp) and pred.op == "="
                and isinstance(pred.left, Col) and isinstance(pred.right, Col)
                and len(touched) == 2
            ):
                join_preds.append((pred.left.name, pred.right.name))
            elif len(touched) <= 1:
                table = touched.pop() if touched else None
                if table is None:
                    raise PlanError(f"constant predicate not supported: {pred!r}")
                table_preds.setdefault(table, []).append(pred)
            else:
                raise PlanError(f"non-equi cross-table predicate: {pred!r}")
        return table_preds, join_preds

    def _needed_columns(self, stmt, col_table, join_preds):
        needed = {t: set() for t in sorted(set(col_table.values()))}
        cols = set()
        for item in stmt.items:
            cols |= columns_of(item.expr)
        for pred in stmt.where:
            cols |= columns_of(pred)
        cols |= set(stmt.group_by)
        aliases = {item.alias for item in stmt.items if item.alias}
        for o in stmt.order_by:
            if o.key not in aliases:
                cols.add(o.key)
        for c in cols:
            needed[col_table[c]].add(c)
        for a, b in join_preds:
            needed[col_table[a]].add(a)
            needed[col_table[b]].add(b)
        return needed

    # -- statistics ----------------------------------------------------------------

    def _col_stats(self, table, col):
        t = self.db.tables[table]
        return t.stats()[t.schema.column_index(col)]

    def _selectivity(self, table, pred):
        """Estimated fraction of ``table`` rows passing ``pred``."""
        if isinstance(pred, And):
            out = 1.0
            for p in pred.parts:
                out *= self._selectivity(table, p)
            return out
        if isinstance(pred, Or):
            out = 0.0
            for p in pred.parts:
                out += self._selectivity(table, p)
            return min(out, 1.0)
        if isinstance(pred, Not):
            return 1.0 - self._selectivity(table, pred.part)
        if isinstance(pred, Cmp):
            left_col = isinstance(pred.left, Col)
            right_col = isinstance(pred.right, Col)
            if left_col and right_col:
                return DEFAULT_COLCOL_SELECTIVITY
            if not left_col and not right_col:
                return 1.0
            col = pred.left.name if left_col else pred.right.name
            const = pred.right if left_col else pred.left
            if not isinstance(const, Const):
                return DEFAULT_COLCOL_SELECTIVITY
            distinct, lo, hi = self._col_stats(table, col)
            op = pred.op if left_col else _flip(pred.op)
            if op == "=":
                return 1.0 / max(distinct, 1)
            if op in ("<>", "!="):
                return 1.0 - 1.0 / max(distinct, 1)
            if not isinstance(lo, (int, float)) or hi == lo:
                return 0.5
            frac = (const.value - lo) / (hi - lo)
            frac = min(max(frac, 0.0), 1.0)
            return frac if op in ("<", "<=") else 1.0 - frac
        if isinstance(pred, Between):
            if not isinstance(pred.expr, Col):
                return 0.25
            distinct, lo, hi = self._col_stats(table, pred.expr.name)
            if (not isinstance(lo, (int, float)) or hi == lo
                    or not isinstance(pred.lo, Const) or not isinstance(pred.hi, Const)):
                return 0.25
            span = hi - lo
            frac = (min(pred.hi.value, hi) - max(pred.lo.value, lo)) / span
            return min(max(frac, 0.0), 1.0)
        if isinstance(pred, InList):
            if not isinstance(pred.expr, Col):
                return 0.25
            distinct, _, _ = self._col_stats(table, pred.expr.name)
            return min(len(pred.values) / max(distinct, 1), 1.0)
        if isinstance(pred, Like):
            return DEFAULT_LIKE_SELECTIVITY
        return 0.5

    def _scan_estimate(self, table, table_preds):
        rows = self.db.tables[table].n_rows
        sel = 1.0
        for pred in table_preds.get(table, []):
            sel *= self._selectivity(table, pred)
        return max(rows * sel, 1.0)

    # -- join-order and access-path selection ------------------------------------------

    def _join_order(self, tables, table_preds, join_preds):
        if len(tables) == 1:
            return list(tables)
        remaining = set(tables)
        estimates = {t: self._scan_estimate(t, table_preds) for t in tables}
        # Driver: the filtered table with the smallest estimated output.
        filtered = [t for t in tables if table_preds.get(t)] or list(tables)
        driver = min(filtered, key=lambda t: estimates[t])
        order = [driver]
        remaining.discard(driver)
        while remaining:
            # sorted(): candidate order (and thus min() tie-breaks) must
            # not depend on set hash order across processes.
            connected = [
                t for t in sorted(remaining)
                if any(_connects(p, order, t, self._table_of) for p in join_preds)
            ]
            if not connected:
                raise PlanError(
                    f"cartesian product needed for tables {sorted(remaining)}"
                )
            nxt = min(connected, key=lambda t: estimates[t])
            order.append(nxt)
            remaining.discard(nxt)
        return order

    def _table_of(self, col):
        for t in self.db.tables.values():
            if col in t.schema:
                return t.name
        raise PlanError(f"unknown column {col!r}")

    def _pick_index(self, table, preds):
        """Choose an index access path for a driver table.

        Returns ``(index_name, eq_values, lo, hi, lo_incl, hi_incl,
        residual_preds)`` or ``None``.
        """
        best = None
        for ix in self.db.table_indexes(table):
            first = ix.key_cols[0]
            eq_const = None
            lo = hi = None
            lo_incl = hi_incl = True
            used = []
            for pred in preds:
                if isinstance(pred, Cmp) and isinstance(pred.left, Col) \
                        and pred.left.name == first and isinstance(pred.right, Const):
                    if pred.op == "=" and eq_const is None:
                        eq_const = pred.right.value
                        used.append(pred)
                    elif pred.op in ("<", "<="):
                        hi, hi_incl = pred.right.value, pred.op == "<="
                        used.append(pred)
                    elif pred.op in (">", ">="):
                        lo, lo_incl = pred.right.value, pred.op == ">="
                        used.append(pred)
                elif isinstance(pred, Between) and isinstance(pred.expr, Col) \
                        and pred.expr.name == first and isinstance(pred.lo, Const) \
                        and isinstance(pred.hi, Const):
                    lo, hi = pred.lo.value, pred.hi.value
                    used.append(pred)
            if not used:
                continue
            sel = 1.0
            for pred in used:
                sel *= self._selectivity(table, pred)
            if sel > INDEX_SELECTIVITY_THRESHOLD:
                continue
            if best is None or sel < best[0]:
                residual = [p for p in preds if p not in used]
                if eq_const is not None:
                    best = (sel, ix.name, (Const(eq_const),), None, None,
                            True, True, residual)
                else:
                    best = (sel, ix.name, (), lo, hi, lo_incl, hi_incl, residual)
        return best[1:] if best else None

    def _initial_scan(self, table, table_preds, needed, col_table):
        preds = table_preds.get(table, [])
        output = sorted(needed[table])
        path = self._pick_index(table, preds)
        if path is not None:
            ix_name, eq, lo, hi, lo_incl, hi_incl, residual = path
            scan = IndexScan(
                output=output, table=table, index=ix_name, eq_values=eq,
                lo=lo, hi=hi, lo_incl=lo_incl, hi_incl=hi_incl,
                pred=_combine(residual),
            )
        else:
            scan = SeqScan(output=output, table=table, pred=_combine(preds))
        return scan, {table}

    def _attach(self, tree, joined, table, table_preds, join_preds, needed,
                est, hints):
        """Attach ``table`` to the left-deep tree; returns (tree, new_est).

        The first applicable equi-predicate becomes the join key; any other
        predicates connecting ``table`` to the joined set become a residual
        join filter.  ``join_preds`` is mutated: consumed predicates are
        removed.
        """
        outer_col = inner_col = None
        extra = []
        for a, b in list(join_preds):
            ta, tb = self._table_of(a), self._table_of(b)
            if ta in joined and tb == table:
                pair = (a, b)
            elif tb in joined and ta == table:
                pair = (b, a)
            else:
                continue
            join_preds.remove((a, b))
            if outer_col is None:
                outer_col, inner_col = pair
            else:
                extra.append(Cmp("=", Col(pair[0]), Col(pair[1])))
        if outer_col is None:
            raise PlanError(f"no join predicate connects {table}")
        join_filter = _combine(extra)

        preds = table_preds.get(table, [])
        output = sorted(needed[table])
        inner_table = self.db.tables[table]
        distinct, _, _ = self._col_stats(table, inner_col)
        sel = 1.0
        for pred in preds:
            sel *= self._selectivity(table, pred)
        new_est = max(est * (inner_table.n_rows / max(distinct, 1)) * sel, 1.0)

        hint = hints.get(table)
        index = self._index_on(table, inner_col)
        if hint == "hash" or (index is None and hint != "merge"):
            scan = SeqScan(output=output, table=table, pred=_combine(preds))
            return HashJoin(
                output=scan.output + tree.output, outer=scan, inner=tree,
                outer_key=inner_col, inner_key=outer_col, filter=join_filter,
            ), new_est
        if index is None:
            raise PlanError(f"merge hint on {table} requires an index on {inner_col}")
        inner_scan = IndexScan(
            output=output, table=table, index=index.name,
            eq_values=(Param(outer_col),), pred=_combine(preds),
        )
        if hint == "merge":
            sorted_outer = Sort(output=tree.output, child=tree,
                                keys=[(outer_col, True)])
            return MergeJoin(
                output=tree.output + inner_scan.output, outer=sorted_outer,
                inner=inner_scan, outer_key=outer_col, filter=join_filter,
            ), new_est
        return NestLoop(
            output=tree.output + inner_scan.output, outer=tree, inner=inner_scan,
            filter=join_filter,
        ), new_est

    def _index_on(self, table, col):
        for ix in self.db.table_indexes(table):
            if ix.key_cols[0] == col:
                return ix
        return None

    # -- grouping, aggregation, projection, ordering -------------------------------------

    def _finish(self, stmt, tree, col_table):
        aggs = []

        def extract(expr):
            if isinstance(expr, AggCall):
                name = f"_agg{len(aggs)}"
                aggs.append((expr.func, expr.arg, name))
                return Col(name)
            if isinstance(expr, (Col, Const)):
                return expr
            if hasattr(expr, "left"):
                return type(expr)(expr.op, extract(expr.left), extract(expr.right))
            raise PlanError(f"unsupported select expression over aggregates: {expr!r}")

        out_names = []
        out_exprs = []
        for i, item in enumerate(stmt.items):
            rewritten = extract(item.expr) if contains_agg(item.expr) else item.expr
            out_exprs.append(rewritten)
            if item.alias:
                out_names.append(item.alias)
            elif isinstance(item.expr, Col):
                out_names.append(item.expr.name)
            else:
                out_names.append(f"col{i}")

        if stmt.group_by:
            sort_keys = [(c, True) for c in stmt.group_by]
            tree = Sort(output=tree.output, child=tree, keys=sort_keys)
            tree = Group(
                output=list(stmt.group_by) + [n for _, _, n in aggs],
                child=tree, group_cols=list(stmt.group_by), aggs=aggs,
            )
        elif aggs:
            tree = Aggregate(
                output=[n for _, _, n in aggs], child=tree, aggs=aggs,
            )

        tree = Project(output=out_names, child=tree, exprs=out_exprs)

        if stmt.order_by:
            already = stmt.group_by and all(
                o.asc and i < len(stmt.group_by) and o.key == stmt.group_by[i]
                for i, o in enumerate(stmt.order_by)
            )
            if not already:
                for o in stmt.order_by:
                    if o.key not in out_names:
                        raise PlanError(
                            f"ORDER BY key {o.key!r} is not in the select list"
                        )
                tree = Sort(output=tree.output, child=tree,
                            keys=[(o.key, o.asc) for o in stmt.order_by])
        return tree


def _flip(op):
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


def _combine(preds):
    if not preds:
        return None
    if len(preds) == 1:
        return preds[0]
    return And(tuple(preds))


def _connects(join_pred, order, table, table_of):
    a, b = join_pred
    ta, tb = table_of(a), table_of(b)
    return (ta in order and tb == table) or (tb in order and ta == table)
