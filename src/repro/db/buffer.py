"""The Buffer Cache Module: blocks, descriptors, and the lookup hash.

Mirrors the lower-right of the paper's Figure 4.  The database is
memory-resident, so every page is always in its buffer block and a pin
never does I/O -- but pinning still walks the shared metadata: take the
``BufMgrLock`` spinlock, probe the Buffer Lookup Hash, read the Buffer
Descriptor, and bump its pin count.  Those references are what show up as
``BufLook``/``BufDesc`` misses in the paper's Figure 7.

Unpinning is a plain atomic decrement on the descriptor (no spinlock),
which keeps the metalock traffic dominated by the Lock Management Module,
as the paper observes.
"""

from repro.memsim.events import DataClass, busy, lock_acquire, lock_release, read, write

BUFMGR_LOCK_ID = "BufMgrLock"


class BufferManager:
    """Pin/unpin protocol over the shared buffer metadata."""

    def __init__(self, shmem, cost_model):
        self.shmem = shmem
        self.cost = cost_model
        self.pin_counts = {}

    def pin(self, page_idx):
        """Traced generator: pin buffer block ``page_idx``."""
        shmem = self.shmem
        yield lock_acquire(BUFMGR_LOCK_ID, shmem.bufmgr_lock_addr, DataClass.METAOTHER)
        # Probe the Buffer Lookup Hash for (relation, block) -> descriptor.
        yield read(shmem.buflook_bucket_addr(page_idx), 16, DataClass.BUFLOOK)
        desc = shmem.bufdesc_addr(page_idx)
        yield read(desc, 16, DataClass.BUFDESC)
        yield lock_release(BUFMGR_LOCK_ID, shmem.bufmgr_lock_addr, DataClass.METAOTHER)
        # The refcount bump is an atomic update outside the spinlock, which
        # keeps the critical section short (the lock word would otherwise
        # serialize every pin across the machine).
        yield write(desc + 16, 8, DataClass.BUFDESC)  # refcount++
        yield busy(self.cost.buffer_pin)
        self.pin_counts[page_idx] = self.pin_counts.get(page_idx, 0) + 1
        return shmem.page_addr(page_idx)

    def unpin(self, page_idx):
        """Traced generator: release a pin on ``page_idx``."""
        count = self.pin_counts.get(page_idx, 0)
        if count <= 0:
            raise RuntimeError(f"unpin of page {page_idx} that is not pinned")
        self.pin_counts[page_idx] = count - 1
        yield write(self.shmem.bufdesc_addr(page_idx) + 16, 8, DataClass.BUFDESC)

    def pinned(self, page_idx):
        """Current pin count (test helper)."""
        return self.pin_counts.get(page_idx, 0)
