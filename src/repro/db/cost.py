"""Busy-cycle cost model for the engine's operations.

The paper's Busy category (instruction execution, L1 hits) accounts for
50-70% of execution time.  Our engine does not simulate instructions, so
each operation charges an explicit busy-cycle cost; the constants below are
calibrated so that the baseline breakdown lands inside the paper's band
(the calibration test in ``tests/test_calibration.py`` pins the band).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Busy cycles charged per engine operation (beyond memory references)."""

    # Storage / scan costs
    tuple_overhead: int = 10      # per-tuple loop & slot bookkeeping
    predicate_op: int = 4         # per comparison / arithmetic op in a predicate
    copy_per_16b: int = 2         # memcpy cost per 16 bytes moved
    # Index costs
    btree_compare: int = 6        # per key comparison during descent
    btree_leaf_step: int = 4      # per leaf entry visited
    # Executor costs
    emit_row: int = 8             # passing a row to the parent node
    agg_op: int = 6               # per aggregate accumulation
    group_compare: int = 5        # per group-boundary check
    sort_step: int = 8            # per element per merge pass
    hash_op: int = 12             # hash computation per key
    join_overhead: int = 10       # per joined pair
    # Module costs
    buffer_pin: int = 20
    lock_acquire: int = 40
    lock_check: int = 25
    # Query setup (parsing/optimization happen once; charged as busy)
    query_setup: int = 4000
    # Always-hit stack/static references per engine step (paper section 4.2:
    # these hit by assumption; they contribute Busy cycles and appear in the
    # access counts that miss rates are computed against).
    # Per-tuple instruction footprints differ by an order of magnitude
    # between the scan paths: a sequential-scan step is a tight loop, while
    # an index fetch runs through the B-tree code, the buffer manager and
    # the lock manager.  The ratios below keep metalock utilization low
    # enough that MSync stays small, as in the paper's Figure 6-(a).
    stack_refs_scan_tuple: int = 400   # per tuple visited by a seq scan
    stack_refs_fetch: int = 2500      # per index-scan heap tuple fetch
    stack_refs_probe: int = 800       # per index-scan rescan (descent setup)
    stack_refs_row: int = 150         # per row through a non-scan operator
    # Per-tuple short-lived private allocation (palloc churn): bytes written
    # to (and partially re-read from) the rotating arena.
    scratch_bytes: int = 128
