"""Page-based B+-tree indices.

Nodes occupy one 8-KB buffer block each (class ``INDEX``), with 16-byte
(key, pointer) entries.  Descent emits a binary-search probe pattern inside
each node -- repeated traversals re-touch the top levels, which is the
temporal locality on indices the paper measures -- and leaf walks emit
sequential entry reads, the source of the indices' spatial locality.

All operations that touch simulated memory are traced generators (see
:mod:`repro.db.tracing`).  Range scans yield rids (plain ints) interleaved
with event tuples.
"""

import bisect

from repro.db.shmem import PAGE_SIZE
from repro.memsim.events import DataClass, busy, read, write

ENTRY_BYTES = 16
NODE_HEADER_BYTES = 24
NODE_CAPACITY = (PAGE_SIZE - NODE_HEADER_BYTES) // ENTRY_BYTES
BULK_FILL = 2 * NODE_CAPACITY // 3


class _Node:
    __slots__ = ("leaf", "keys", "ptrs", "page", "addr", "next_leaf")

    def __init__(self, leaf, page, addr):
        self.leaf = leaf
        self.keys = []
        # For leaves: rids.  For internal nodes: child _Node objects.
        self.ptrs = []
        self.page = page
        self.addr = addr
        self.next_leaf = None

    def entry_addr(self, idx):
        return self.addr + NODE_HEADER_BYTES + idx * ENTRY_BYTES


def _as_key(key):
    return key if isinstance(key, tuple) else (key,)


class BTreeIndex:
    """A B+-tree over one or more columns of a heap table."""

    def __init__(self, name, table, key_cols, shmem, cost_model):
        self.name = name
        self.table = table
        self.key_cols = list(key_cols)
        self.key_idxs = [table.schema.column_index(c) for c in self.key_cols]
        self.shmem = shmem
        self.cost = cost_model
        self.root = self._new_node(leaf=True)
        self.height = 1
        self.n_entries = 0

    def _new_node(self, leaf):
        page = self.shmem.alloc_page(DataClass.INDEX)
        return _Node(leaf, page, self.shmem.page_addr(page))

    def key_of_row(self, row):
        """Extract this index's key tuple from a full table row."""
        return tuple(row[i] for i in self.key_idxs)

    # -- construction ---------------------------------------------------------------

    def bulk_build(self):
        """(Re)build the tree from the table contents (untraced)."""
        deleted = self.table.deleted
        entries = sorted(
            (self.key_of_row(row), rid)
            for rid, row in enumerate(self.table.rows) if rid not in deleted
        )
        self.n_entries = len(entries)
        leaves = []
        for start in range(0, len(entries), BULK_FILL) or [0]:
            node = self._new_node(leaf=True)
            chunk = entries[start:start + BULK_FILL]
            node.keys = [k for k, _ in chunk]
            node.ptrs = [r for _, r in chunk]
            leaves.append(node)
        if not leaves:
            leaves = [self._new_node(leaf=True)]
        for a, b in zip(leaves, leaves[1:]):
            a.next_leaf = b
        level = leaves
        height = 1
        while len(level) > 1:
            parents = []
            for start in range(0, len(level), BULK_FILL):
                node = self._new_node(leaf=False)
                chunk = level[start:start + BULK_FILL]
                node.keys = [c.keys[0] if c.keys else () for c in chunk]
                node.ptrs = chunk
                parents.append(node)
            level = parents
            height += 1
        self.root = level[0]
        self.height = height

    # -- traced traversal -------------------------------------------------------------

    def _probe(self, node, key):
        """Traced binary search inside ``node``; returns bisect_left index."""
        keys = node.keys
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            yield read(node.entry_addr(mid), ENTRY_BYTES, DataClass.INDEX)
            yield busy(self.cost.btree_compare)
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _descend(self, key):
        """Traced descent; returns ``(leaf, path)`` where path is the
        list of (node, child_index) pairs from the root."""
        node = self.root
        path = []
        while not node.leaf:
            pos = yield from self._probe(node, key)
            # bisect_left gives the first child whose separator is >= key.
            # Step one child left: duplicates equal to a separator may begin
            # in the preceding leaf, and keys below the separator live there.
            if pos > 0:
                pos -= 1
            path.append((node, pos))
            node = node.ptrs[pos]
        return node, path

    def search(self, key):
        """Traced generator: rids whose key equals ``key``.

        ``key`` may be a prefix of a composite key; all entries matching the
        prefix are returned, in key order.
        """
        prefix = _as_key(key)
        rids = []
        for item in self.scan_range(lo=prefix, hi=prefix, prefix=True):
            if type(item) is tuple:
                yield item
            else:
                rids.append(item)
        return rids

    def scan_range(self, lo=None, hi=None, lo_incl=True, hi_incl=True, prefix=False):
        """Traced generator: yields events and rids for keys in [lo, hi].

        With ``prefix=True``, ``lo``/``hi`` are compared against the leading
        columns of composite keys only.
        """
        if lo is not None:
            lo = _as_key(lo)
        if hi is not None:
            hi = _as_key(hi)
        start_key = lo if lo is not None else ()
        node, _ = yield from self._descend(start_key)
        # Binary-search the starting leaf instead of walking it linearly.
        idx = (yield from self._probe(node, lo)) if lo is not None else 0
        nlo = len(lo) if lo is not None else 0
        nhi = len(hi) if hi is not None else 0
        while node is not None:
            keys = node.keys
            ptrs = node.ptrs
            n = len(keys)
            while idx < n:
                key = keys[idx]
                cut = key[:nlo] if prefix else key
                if lo is not None and (cut < lo or (not lo_incl and cut == lo)):
                    idx += 1
                    continue
                yield read(node.entry_addr(idx), ENTRY_BYTES, DataClass.INDEX)
                yield busy(self.cost.btree_leaf_step)
                cut_hi = key[:nhi] if prefix else key
                if hi is not None and (cut_hi > hi or (not hi_incl and cut_hi == hi)):
                    return
                yield ptrs[idx]
                idx += 1
            node = node.next_leaf
            idx = 0

    def full_scan(self):
        """Traced generator: every rid in key order (events interleaved)."""
        yield from self.scan_range()

    # -- traced maintenance --------------------------------------------------------------

    def insert(self, key, rid):
        """Traced generator: insert an entry, splitting nodes as needed."""
        key = _as_key(key)
        if len(key) != len(self.key_cols):
            raise ValueError(
                f"index {self.name}: key {key!r} has wrong arity"
            )
        leaf, path = yield from self._descend(key)
        # Keep low fences tight: a key below every separator lands in the
        # leftmost subtree, whose separator must drop to cover it.
        for parent, idx in path:
            if key < parent.keys[idx]:
                parent.keys[idx] = key
                yield write(parent.entry_addr(idx), ENTRY_BYTES, DataClass.INDEX)
        pos = bisect.bisect_left(leaf.keys, key)
        leaf.keys.insert(pos, key)
        leaf.ptrs.insert(pos, rid)
        yield write(leaf.entry_addr(pos), ENTRY_BYTES, DataClass.INDEX)
        yield busy(self.cost.btree_compare)
        self.n_entries += 1
        node = leaf
        while len(node.keys) > NODE_CAPACITY:
            sibling = self._split(node)
            yield write(sibling.addr, ENTRY_BYTES, DataClass.INDEX)
            if path:
                parent, idx = path.pop()
                parent.keys.insert(idx + 1, sibling.keys[0])
                parent.ptrs.insert(idx + 1, sibling)
                yield write(parent.entry_addr(idx + 1), ENTRY_BYTES, DataClass.INDEX)
                node = parent
            else:
                new_root = self._new_node(leaf=False)
                new_root.keys = [node.keys[0], sibling.keys[0]]
                new_root.ptrs = [node, sibling]
                self.root = new_root
                self.height += 1
                break

    def _split(self, node):
        mid = len(node.keys) // 2
        sibling = self._new_node(node.leaf)
        sibling.keys = node.keys[mid:]
        sibling.ptrs = node.ptrs[mid:]
        del node.keys[mid:]
        del node.ptrs[mid:]
        if node.leaf:
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling
        return sibling

    def delete(self, key, rid):
        """Traced generator: remove one (key, rid) entry (no rebalancing)."""
        key = _as_key(key)
        leaf, _ = yield from self._descend(key)
        while leaf is not None:
            pos = bisect.bisect_left(leaf.keys, key)
            while pos < len(leaf.keys) and leaf.keys[pos] == key:
                yield read(leaf.entry_addr(pos), ENTRY_BYTES, DataClass.INDEX)
                if leaf.ptrs[pos] == rid:
                    del leaf.keys[pos]
                    del leaf.ptrs[pos]
                    yield write(leaf.entry_addr(pos), ENTRY_BYTES, DataClass.INDEX)
                    self.n_entries -= 1
                    return True
                pos += 1
            if pos < len(leaf.keys):
                return False
            leaf = leaf.next_leaf
        return False

    # -- diagnostics ------------------------------------------------------------------

    def check_invariants(self):
        """Verify ordering, fanout and leaf-chain invariants (for tests)."""
        leaves = []

        def visit(node, lo, hi):
            assert node.keys == sorted(node.keys), "unsorted node"
            assert len(node.keys) <= NODE_CAPACITY, "overfull node"
            for k in node.keys:
                assert lo is None or k >= lo
                # Duplicate runs may extend up to (and include) the next
                # separator, hence <= rather than <.
                assert hi is None or k <= hi, f"key {k} above bound {hi}"
            if node.leaf:
                leaves.append(node)
                return
            assert len(node.keys) == len(node.ptrs)
            for i, child in enumerate(node.ptrs):
                child_lo = node.keys[i]
                child_hi = node.keys[i + 1] if i + 1 < len(node.keys) else hi
                visit(child, child_lo, child_hi)

        visit(self.root, None, None)
        chained = []
        node = leaves[0] if leaves else None
        while node is not None:
            chained.append(node)
            node = node.next_leaf
        assert chained == leaves, "leaf chain disagrees with tree order"
        assert sum(len(l.keys) for l in leaves) == self.n_entries
