"""Expression trees: predicates, arithmetic, and aggregate calls.

Expressions are small immutable dataclasses produced by the SQL parser and
consumed by the planner and executor.  For execution they are *compiled*
into plain Python closures over a row (a list of values), which keeps the
per-tuple interpretation overhead out of the simulation's hot loop.
"""

import operator
from dataclasses import dataclass
from typing import Any, Optional, Tuple

_CMP_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

AGG_FUNCS = ("SUM", "COUNT", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class Col:
    """A column reference (TPC-D prefixes make names globally unique)."""

    name: str


@dataclass(frozen=True)
class Const:
    """A literal value."""

    value: Any


@dataclass(frozen=True)
class BinOp:
    """Arithmetic: ``left op right`` with op in ``+ - * /``."""

    op: str
    left: Any
    right: Any


@dataclass(frozen=True)
class Cmp:
    """Comparison: ``left op right`` with op in ``= <> < <= > >=``."""

    op: str
    left: Any
    right: Any


@dataclass(frozen=True)
class And:
    """Conjunction of predicates."""

    parts: Tuple[Any, ...]


@dataclass(frozen=True)
class Or:
    """Disjunction of predicates."""

    parts: Tuple[Any, ...]


@dataclass(frozen=True)
class Not:
    """Negation."""

    part: Any


@dataclass(frozen=True)
class Between:
    """``expr BETWEEN lo AND hi`` (inclusive on both ends)."""

    expr: Any
    lo: Any
    hi: Any


@dataclass(frozen=True)
class InList:
    """``expr IN (v1, v2, ...)``."""

    expr: Any
    values: Tuple[Any, ...]


@dataclass(frozen=True)
class Like:
    """``expr LIKE 'pattern'`` with ``%`` wildcards."""

    expr: Any
    pattern: str


@dataclass(frozen=True)
class AggCall:
    """An aggregate function call; ``arg`` is ``None`` for ``COUNT(*)``."""

    func: str
    arg: Optional[Any] = None

    def __post_init__(self):
        if self.func not in AGG_FUNCS:
            raise ValueError(f"unknown aggregate {self.func!r}")


def columns_of(node):
    """Return the set of column names referenced by an expression."""
    if isinstance(node, Col):
        return {node.name}
    if isinstance(node, Const):
        return set()
    if isinstance(node, BinOp) or isinstance(node, Cmp):
        return columns_of(node.left) | columns_of(node.right)
    if isinstance(node, (And, Or)):
        out = set()
        for p in node.parts:
            out |= columns_of(p)
        return out
    if isinstance(node, Not):
        return columns_of(node.part)
    if isinstance(node, Between):
        return columns_of(node.expr) | columns_of(node.lo) | columns_of(node.hi)
    if isinstance(node, (InList, Like)):
        return columns_of(node.expr)
    if isinstance(node, AggCall):
        return columns_of(node.arg) if node.arg is not None else set()
    raise TypeError(f"not an expression: {node!r}")


def contains_agg(node):
    """Whether an expression contains an aggregate call."""
    if isinstance(node, AggCall):
        return True
    if isinstance(node, (Col, Const)):
        return False
    if isinstance(node, (BinOp, Cmp)):
        return contains_agg(node.left) or contains_agg(node.right)
    if isinstance(node, (And, Or)):
        return any(contains_agg(p) for p in node.parts)
    if isinstance(node, Not):
        return contains_agg(node.part)
    if isinstance(node, Between):
        return contains_agg(node.expr)
    if isinstance(node, (InList, Like)):
        return contains_agg(node.expr)
    raise TypeError(f"not an expression: {node!r}")


def op_count(node):
    """Rough number of primitive operations to evaluate an expression."""
    if isinstance(node, (Col, Const)):
        return 0
    if isinstance(node, (BinOp, Cmp)):
        return 1 + op_count(node.left) + op_count(node.right)
    if isinstance(node, (And, Or)):
        return sum(1 + op_count(p) for p in node.parts)
    if isinstance(node, Not):
        return 1 + op_count(node.part)
    if isinstance(node, Between):
        return 2 + op_count(node.expr)
    if isinstance(node, InList):
        return len(node.values) + op_count(node.expr)
    if isinstance(node, Like):
        return 4 + op_count(node.expr)
    if isinstance(node, AggCall):
        return 1 + (op_count(node.arg) if node.arg is not None else 0)
    raise TypeError(f"not an expression: {node!r}")


def like_matcher(pattern):
    """Compile a SQL LIKE pattern (``%`` wildcards only) to a predicate."""
    parts = pattern.split("%")
    if len(parts) == 1:
        return lambda s: s == pattern
    head, tail, middles = parts[0], parts[-1], [p for p in parts[1:-1] if p]

    def match(s):
        if not isinstance(s, str):
            return False
        if head and not s.startswith(head):
            return False
        if tail and not s.endswith(tail):
            return False
        pos = len(head)
        end = len(s) - len(tail)
        for mid in middles:
            found = s.find(mid, pos, end)
            if found < 0:
                return False
            pos = found + len(mid)
        return pos <= end

    return match


def compile_expr(node, positions):
    """Compile an expression into ``fn(row) -> value``.

    ``positions`` maps column names to indices in the row list.  Aggregate
    calls cannot be compiled here (the executor handles them separately).
    """
    if isinstance(node, Col):
        idx = positions[node.name]
        return lambda row: row[idx]
    if isinstance(node, Const):
        value = node.value
        return lambda row: value
    if isinstance(node, BinOp):
        fn = _ARITH_OPS[node.op]
        left = compile_expr(node.left, positions)
        right = compile_expr(node.right, positions)
        return lambda row: fn(left(row), right(row))
    if isinstance(node, Cmp):
        fn = _CMP_OPS[node.op]
        left = compile_expr(node.left, positions)
        right = compile_expr(node.right, positions)
        return lambda row: fn(left(row), right(row))
    if isinstance(node, And):
        parts = [compile_expr(p, positions) for p in node.parts]
        return lambda row: all(p(row) for p in parts)
    if isinstance(node, Or):
        parts = [compile_expr(p, positions) for p in node.parts]
        return lambda row: any(p(row) for p in parts)
    if isinstance(node, Not):
        part = compile_expr(node.part, positions)
        return lambda row: not part(row)
    if isinstance(node, Between):
        e = compile_expr(node.expr, positions)
        lo = compile_expr(node.lo, positions)
        hi = compile_expr(node.hi, positions)
        return lambda row: lo(row) <= e(row) <= hi(row)
    if isinstance(node, InList):
        e = compile_expr(node.expr, positions)
        values = frozenset(v.value if isinstance(v, Const) else v for v in node.values)
        return lambda row: e(row) in values
    if isinstance(node, Like):
        e = compile_expr(node.expr, positions)
        match = like_matcher(node.pattern)
        return lambda row: match(e(row))
    if isinstance(node, AggCall):
        raise TypeError("aggregate calls are evaluated by the executor, not compiled")
    raise TypeError(f"not an expression: {node!r}")
