"""The analysis engine: file collection, parallel per-file pass, project
pass, suppression and baseline application.

Per-file rules (DET, HOT, MP002/3) see one :class:`FileModel` at a time
and run in worker processes when the tree is big enough to pay for the
pool.  Project rules need the whole program: the per-file pass also
returns picklable *facts* -- three fragments per file, keyed ``"mp"``
(the MP001 call-graph fragment), ``"fx"`` (effect summaries for the
kernel state-equivalence rule), and ``"tn"`` (taint sources/calls/sinks
for the interprocedural determinism rule) -- plus the file's suppression
map, and the parent joins them: the same split the sweep engine uses for
simulation (workers produce, parent merges).  A project rule declares
which fragment it consumes via a ``facts_key`` attribute (default
``"mp"``).

Everything is deterministic: files sort before dispatch, findings sort
before reporting, and the worker pass is a pure function of file content
-- which is also what makes the incremental cache sound: entries are
keyed by content hash and replayed verbatim on a warm run.
"""

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis import baseline as baseline_mod
from repro.analysis import cache as cache_mod
from repro.analysis import (effects, rules_api, rules_det, rules_hot,
                            rules_mp, taint)
from repro.analysis.model import FileModel, Finding

FILE_RULES = (list(rules_det.RULES) + list(rules_hot.RULES)
              + list(rules_mp.FILE_RULES))
PROJECT_RULES = (list(rules_mp.PROJECT_RULES) + list(rules_api.PROJECT_RULES)
                 + list(effects.PROJECT_RULES) + list(taint.PROJECT_RULES))

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".trace-store", "build", "dist"}

#: Below this many files a pool costs more than it saves.
_PARALLEL_THRESHOLD = 8


def rule_catalogue():
    """``(id, title)`` for every registered rule, sorted by id."""
    pairs = [(r.id, r.title) for r in FILE_RULES + PROJECT_RULES]
    return sorted(pairs)


def collect_files(paths):
    """All ``.py`` files under ``paths``, absolute and sorted."""
    out = set()
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.add(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
                and not d.endswith(".egg-info"))
            for name in filenames:
                if name.endswith(".py"):
                    out.add(os.path.join(dirpath, name))
    return sorted(out)


def analyze_file(path):
    """The per-file pass: ``(findings, facts, suppressions, n_suppressed)``.

    ``facts`` is the dict of project-rule fragments (``"mp"``, ``"fx"``,
    ``"tn"``), or ``None`` for an unparseable file.  Pure function of the
    file's content -- safe to run in a pool worker and to cache by
    content hash.  Unparseable files yield a single ``PARSE`` finding so
    a syntax error fails the check instead of silently shrinking its
    coverage.
    """
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        model = FileModel(path, text)
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        line = getattr(exc, "lineno", None) or 0
        return ([Finding(rule="PARSE", path=os.path.abspath(path),
                         line=line, col=0,
                         message=f"file could not be analyzed: {exc}")],
                None, {}, 0)
    findings = []
    n_suppressed = 0
    for rule in FILE_RULES:
        for finding in rule.check(model):
            if model.is_suppressed(finding):
                n_suppressed += 1
            else:
                findings.append(finding)
    suppressions = {line: sorted(rules)
                    for line, rules in model.suppressions.items()}
    facts = {
        "mp": rules_mp.collect_facts(model),
        "fx": effects.collect_facts(model),
        "tn": taint.collect_facts(model),
    }
    return findings, facts, suppressions, n_suppressed


def _encode_result(result):
    """A cache-safe (JSON) form of one ``analyze_file`` result."""
    findings, facts, suppressions, n_suppressed = result
    return {
        "findings": [f.as_dict() for f in findings],
        "facts": facts,
        "suppressions": {str(k): v for k, v in suppressions.items()},
        "n_suppressed": n_suppressed,
    }


def _decode_result(entry):
    return ([Finding(**d) for d in entry["findings"]],
            entry["facts"],
            {int(k): v for k, v in entry["suppressions"].items()},
            entry["n_suppressed"])


def _run_files(files, *, jobs=None, cache_file=None):
    """Run the per-file pass over ``files``, through the cache when given.

    Returns ``(results, cache)`` with ``results`` aligned to ``files``;
    ``cache`` is the saved :class:`~repro.analysis.cache.AnalysisCache`
    (for hit/miss counts) or ``None``.
    """
    cache = None
    cached = {}
    keys = {}
    to_run = list(files)
    if cache_file:
        cache = cache_mod.AnalysisCache(cache_file)
        to_run = []
        for path in files:
            try:
                with open(path, "rb") as f:
                    data = f.read()
            except OSError:
                to_run.append(path)
                continue
            key = cache.key_for(path, data)
            keys[path] = key
            entry = cache.get(key)
            if entry is not None:
                cached[path] = _decode_result(entry)
            else:
                to_run.append(path)

    if jobs is None:
        jobs = 1 if len(to_run) < _PARALLEL_THRESHOLD \
            else min(os.cpu_count() or 1, 8)
    if jobs > 1 and len(to_run) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            fresh = dict(zip(to_run, pool.map(analyze_file, to_run)))
    else:
        fresh = {path: analyze_file(path) for path in to_run}

    if cache is not None:
        for path, result in fresh.items():
            if path in keys:
                cache.put(keys[path], _encode_result(result))
        cache.save()
    return [cached.get(path) or fresh[path] for path in files], cache


def gather_facts(paths, *, jobs=None, cache_file=None):
    """``(files, facts_list)`` for the fact-dump commands (effects/graph).

    Unparseable files are skipped (they carry no facts); the ``check``
    command is where parse errors become findings.
    """
    files = collect_files(paths)
    results, _cache = _run_files(files, jobs=jobs, cache_file=cache_file)
    facts = [r[1] for r in results if r[1] is not None]
    return files, facts


@dataclass
class CheckResult:
    """Everything one check run produced (before rendering)."""

    findings: list = field(default_factory=list)  #: new, sorted
    matched: int = 0        #: findings absorbed by the baseline
    suppressed: int = 0     #: findings silenced by inline allows
    files_checked: int = 0
    root: str = "."         #: display/baseline-relative root
    baseline_file: Optional[str] = None
    baseline_todos: int = 0  #: baseline entries still reading "TODO: justify"
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self):
        return not self.findings


def _project_findings(all_facts, paths, suppressions_by_path):
    """Run the project rules and apply inline suppressions to them.

    ``all_facts`` holds the per-file fragment dicts; each rule receives
    the fragment named by its ``facts_key`` (default ``"mp"``, the shape
    the original MP001 rule was written against).
    """
    findings = []
    for rule in PROJECT_RULES:
        if hasattr(rule, "check_project"):
            key = getattr(rule, "facts_key", "mp")
            rule_facts = [f[key] for f in all_facts if f and f.get(key)]
            findings.extend(rule.check_project(rule_facts))
        elif hasattr(rule, "check_project_paths"):
            findings.extend(rule.check_project_paths(paths))
    kept, n_suppressed = [], 0
    for finding in findings:
        suppressed = False
        per_file = suppressions_by_path.get(finding.path, {})
        for lineno in (finding.line, finding.line - 1):
            rules = per_file.get(lineno)
            if rules and (finding.rule in rules or "*" in rules):
                suppressed = True
                break
        if suppressed:
            n_suppressed += 1
        else:
            kept.append(finding)
    return kept, n_suppressed


def check(paths, *, jobs=None, baseline_file=None, use_baseline=True,
          select=None, cache_file=None):
    """Analyze ``paths`` and return a :class:`CheckResult`.

    ``jobs=None`` picks serial vs pooled automatically; ``select`` keeps
    only findings whose rule id starts with one of the given prefixes;
    ``cache_file`` enables the content-hash incremental cache.
    """
    files = collect_files(paths)

    findings = []
    all_facts = []
    suppressions_by_path = {}
    n_suppressed = 0
    results, run_cache = _run_files(files, jobs=jobs, cache_file=cache_file)
    for path, (file_findings, facts, suppressions, suppressed) in zip(
            files, results):
        findings.extend(file_findings)
        if facts is not None:
            all_facts.append(facts)
        suppressions_by_path[os.path.abspath(path)] = suppressions
        n_suppressed += suppressed

    project, project_suppressed = _project_findings(
        all_facts, files, suppressions_by_path)
    findings.extend(project)
    n_suppressed += project_suppressed

    if select:
        prefixes = tuple(select)
        findings = [f for f in findings if f.rule.startswith(prefixes)]

    # Baseline: nearest .analysis-baseline.json above the first path.
    matched = 0
    baseline_todos = 0
    if baseline_file is None and use_baseline and files:
        baseline_file = baseline_mod.find_baseline(
            os.path.dirname(files[0]) or ".")
    root = (os.path.dirname(os.path.abspath(baseline_file))
            if baseline_file else os.getcwd())
    if use_baseline and baseline_file and os.path.isfile(baseline_file):
        entries, base_root = baseline_mod.load(baseline_file)
        findings, absorbed = baseline_mod.apply(findings, entries, base_root)
        matched = len(absorbed)
        root = base_root
        baseline_todos = sum(
            1 for e in entries if "TODO: justify" in e.get("reason", ""))

    findings.sort(key=lambda f: f.sort_key())
    return CheckResult(findings=findings, matched=matched,
                       suppressed=n_suppressed, files_checked=len(files),
                       root=root, baseline_file=baseline_file,
                       baseline_todos=baseline_todos,
                       cache_hits=run_cache.hits if run_cache else 0,
                       cache_misses=run_cache.misses if run_cache else 0)
