"""Finding baseline: accepted pre-existing findings, committed to the repo.

A baseline entry matches a finding by ``(rule, path, content)`` -- the
stripped source text of the flagged line -- not by line number, so edits
elsewhere in a file never invalidate it.  ``path`` is stored relative to
the baseline file's directory (the repo root in practice) with posix
separators, so the file is machine-independent.

Matching is one-to-one: each entry absorbs at most ``count`` findings
(default 1), so a baselined pattern that *multiplies* resurfaces as new
findings instead of hiding behind the old entry.  Every entry carries a
``reason`` -- the baseline is a list of justified debts, not a mute
button; ``--write-baseline`` stamps ``TODO: justify`` on new entries so
unexplained ones are greppable.
"""

import json
import os

BASELINE_NAME = ".analysis-baseline.json"


def find_baseline(start_dir):
    """Walk upward from ``start_dir`` to the nearest baseline file."""
    d = os.path.abspath(start_dir)
    while True:
        candidate = os.path.join(d, BASELINE_NAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(d)
        if parent == d:
            return None
        d = parent


def _rel_posix(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


def load(path):
    """``(entries, root)`` from a baseline file."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    return data.get("entries", []), os.path.dirname(os.path.abspath(path))


def apply(findings, entries, root):
    """Split ``findings`` into ``(new, matched)`` against the baseline.

    Each entry matches at most ``count`` findings (one-to-one
    consumption); unmatched findings stay new.
    """
    budget = {}
    for entry in entries:
        key = (entry["rule"], entry["path"], entry["content"])
        budget[key] = budget.get(key, 0) + int(entry.get("count", 1))
    new, matched = [], []
    for finding in findings:
        key = (finding.rule, _rel_posix(finding.path, root),
               finding.content)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    return new, matched


def write(findings, path, reasons=None):
    """Record ``findings`` as the new baseline at ``path``.

    ``reasons`` maps ``(rule, relpath, content)`` to a justification;
    entries without one get a greppable ``TODO: justify``.  Identical
    findings collapse into one entry with a ``count``.
    """
    root = os.path.dirname(os.path.abspath(path))
    reasons = reasons or {}
    grouped = {}
    for finding in findings:
        key = (finding.rule, _rel_posix(finding.path, root),
               finding.content)
        grouped[key] = grouped.get(key, 0) + 1
    entries = []
    for (rule, relpath, content), count in sorted(grouped.items()):
        entry = {
            "rule": rule,
            "path": relpath,
            "content": content,
            "reason": reasons.get((rule, relpath, content),
                                  "TODO: justify"),
        }
        if count > 1:
            entry["count"] = count
        entries.append(entry)
    data = {
        "_comment": (
            "Accepted pre-existing findings of 'python -m repro.analysis "
            "check'. Entries match by (rule, path, line content), consume "
            "one finding each, and must carry a reason. Shrink this file; "
            "never grow it without a justification."),
        "entries": entries,
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    return entries
