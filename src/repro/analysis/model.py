"""Shared data model of the static-analysis pass.

A :class:`FileModel` is one parsed source file plus everything a rule needs
to judge it: the AST, the raw lines, the ``# repro: allow[RULE]``
suppression map, the ``# repro: hot`` region markers, and the file's dotted
module name (derived from the ``__init__.py`` chain, so the checker needs
no import machinery).  A :class:`Finding` is one rule violation, carrying
the stripped source line it fired on -- the baseline matches findings by
``(rule, path, content)``, not by line number, so unrelated edits above a
baselined site do not invalidate the baseline.
"""

import ast
import os
import re
from dataclasses import asdict, dataclass

#: Inline suppression: ``# repro: allow[DET002]`` or ``allow[DET002,MP001]``,
#: optionally followed by a justification.  A suppression applies to
#: findings on its own line and on the line directly below it, so it can
#: trail the offending statement or sit on its own line above it.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s*]+)\]")

#: Hot-region marker: ``# repro: hot`` on a loop or ``def`` line (or the
#: line directly above it) declares the construct's body a hot region.
_HOT_RE = re.compile(r"#\s*repro:\s*hot\b(?!\S)")

#: Kernel-equivalence contract: ``# repro: oracle-covered[l2.sets]`` (or
#: ``oracle-covered[l2.sets:append]``, or ``oracle-covered[*]``) on a
#: mutation site -- or the line directly above it -- declares that the
#: fast-path write to that oracle-state atom is deliberate and proven
#: equivalent to the scalar oracle (by the bit-identity suite).  The
#: kernel state-equivalence rule (KRN002) treats covered sites as
#: contract-bound instead of divergent.
_COVER_RE = re.compile(r"#\s*repro:\s*oracle-covered\[([A-Za-z0-9_.:,\s*-]+)\]")


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Stripped source text of ``line`` -- the baseline's matching key.
    content: str = ""

    def as_dict(self):
        return asdict(self)

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)


def module_name(path):
    """Dotted module name of ``path``, walked up the ``__init__.py`` chain.

    A file outside any package is its own bare stem; ``__init__.py``
    itself names the package.
    """
    path = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(path))[0]
    parts = [] if stem == "__init__" else [stem]
    d = os.path.dirname(path)
    while os.path.isfile(os.path.join(d, "__init__.py")):
        parts.insert(0, os.path.basename(d))
        parent = os.path.dirname(d)
        if parent == d:
            break
        d = parent
    return ".".join(parts) or stem


def parse_suppressions(lines):
    """``{line_number: set_of_rule_ids}`` for every allow comment."""
    out = {}
    for i, text in enumerate(lines, start=1):
        m = _ALLOW_RE.search(text)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            out.setdefault(i, set()).update(rules)
    return out


def parse_hot_markers(lines):
    """Line numbers carrying a ``# repro: hot`` marker."""
    return {i for i, text in enumerate(lines, start=1) if _HOT_RE.search(text)}


def parse_coverage(lines):
    """``{line_number: set_of_atoms}`` for every oracle-covered comment.

    Atoms are state names (``l2.sets``), optionally op-qualified
    (``l2.sets:append``); ``*`` covers everything on that line.
    """
    out = {}
    for i, text in enumerate(lines, start=1):
        m = _COVER_RE.search(text)
        if m:
            atoms = {a.strip() for a in m.group(1).split(",") if a.strip()}
            out.setdefault(i, set()).update(atoms)
    return out


class FileModel:
    """One analyzed source file (see module docstring)."""

    def __init__(self, path, text):
        self.path = os.path.abspath(path)
        self.text = text
        self.lines = text.splitlines()
        self.module = module_name(path)
        self.tree = ast.parse(text, filename=path)
        self.suppressions = parse_suppressions(self.lines)
        self.hot_markers = parse_hot_markers(self.lines)
        self.coverage = parse_coverage(self.lines)

    # -- helpers for rules -------------------------------------------------

    def line_content(self, lineno):
        """Stripped source text of ``lineno`` (1-based; '' out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule, node_or_line, message):
        """Build a :class:`Finding` anchored at an AST node or line number."""
        if isinstance(node_or_line, int):
            line, col = node_or_line, 0
        else:
            line, col = node_or_line.lineno, node_or_line.col_offset
        return Finding(rule=rule, path=self.path, line=line, col=col,
                       message=message, content=self.line_content(line))

    def is_suppressed(self, finding):
        """Whether an allow comment on the finding's line (or the line
        above it) names the finding's rule (or ``*``)."""
        for lineno in (finding.line, finding.line - 1):
            rules = self.suppressions.get(lineno)
            if rules and (finding.rule in rules or "*" in rules):
                return True
        return False

    def is_covered(self, lineno, atom, op):
        """Whether an oracle-covered comment on ``lineno`` (or the line
        above it) names ``atom`` (optionally ``atom:op``) or ``*``."""
        for ln in (lineno, lineno - 1):
            atoms = self.coverage.get(ln)
            if atoms and ("*" in atoms or atom in atoms
                          or f"{atom}:{op}" in atoms):
                return True
        return False

    def hot_regions(self):
        """``(node, start_line, end_line)`` for every marked hot construct.

        A marker on the construct's own first line or on the line directly
        above it counts; ``for``/``while`` loops and function definitions
        can be marked.
        """
        regions = []
        if not self.hot_markers:
            return regions
        kinds = (ast.For, ast.While, ast.FunctionDef, ast.AsyncFunctionDef)
        for node in ast.walk(self.tree):
            if isinstance(node, kinds):
                if (node.lineno in self.hot_markers
                        or node.lineno - 1 in self.hot_markers):
                    regions.append((node, node.lineno, node.end_lineno))
        return regions


def dotted_chain(node):
    """The dotted name of an attribute chain rooted at a plain name.

    ``a.b.c`` -> ``"a.b.c"``; returns ``None`` for anything rooted in a
    call, subscript, or other non-name expression.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree):
    """``{local_name: dotted_target}`` for a module's import statements.

    ``import a.b`` binds ``a`` to ``a``; ``import a.b as c`` binds ``c`` to
    ``a.b``; ``from a.b import c as d`` binds ``d`` to ``a.b.c``.  Relative
    imports are resolved by the caller (they need the importing module's
    package); here they keep a leading ``.`` per level.
    """
    out = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    out[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{prefix}.{alias.name}" if prefix else alias.name
                out[alias.asname or alias.name] = target
    return out


def resolve_relative(target, package):
    """Resolve a leading-dot import target against the containing package.

    ``package`` is the importing file's package (for ``pkg/__init__.py``
    the package itself, for ``pkg/mod.py`` still ``pkg``): one leading dot
    means ``package``, each further dot one level up.
    """
    if not target.startswith("."):
        return target
    level = len(target) - len(target.lstrip("."))
    base = package.split(".") if package else []
    if level > 1:
        base = base[: max(0, len(base) - (level - 1))]
    rest = target.lstrip(".")
    return ".".join(base + ([rest] if rest else []))
