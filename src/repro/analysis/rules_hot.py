"""HOT: hot-loop lint.

The interleaved dispatch loops in ``repro.memsim`` process one event per
simulated cycle across every CPU of every run in a sweep -- they dominate
wall-clock time, and PR 1's trace-replay work got its speedup precisely by
keeping them allocation-free and local-variable-bound.  A region opts in
with ``# repro: hot`` on (or directly above) a ``for``/``while``/``def``
line; inside it:

HOT001
    No allocating displays: list/dict/set literals, comprehensions,
    generator expressions, f-strings/``str.format``, or ``%``-formatting.
    Tuples are exempt (CPython free-lists them, and the hot paths key
    dicts with them); so is anything under ``raise``/``assert`` -- error
    paths are cold by definition -- and anything under a sanitizer gate
    (``if _sanitize:`` or similar), which is the escape hatch the runtime
    sanitizer uses.
HOT002
    No closure creation: ``lambda`` or nested ``def`` inside the region
    allocates a function object per iteration.
HOT003
    No repeated attribute chains: the same ``a.b`` (or deeper) chain
    loaded :data:`ATTR_THRESHOLD` or more times in one region means a
    missing ``x = obj.attr`` hoist.  Chains whose root is itself assigned
    inside the region are exempt (the root changes, so there is nothing
    to hoist).
HOT004
    No ``try``/``except`` inside the region: CPython pushes a handler
    block per entry, and the sanctioned pattern is hoisting the try
    around the loop (see ``interleave.run``).

The rules fire only inside marked regions, so the lint is opt-in per
loop and silent everywhere else.
"""

import ast

from repro.analysis.model import dotted_chain

#: HOT003 fires at this many loads of the same attribute chain in one
#: region.  Three is deliberate headroom: mutually exclusive branches can
#: legitimately repeat a chain once per arm (numa.write loads
#: ``self.lat_2hop`` three times across its branches).
ATTR_THRESHOLD = 4

#: ``if <gate>:`` guards whose body the lint skips entirely -- the runtime
#: sanitizer's hook point inside hot loops.
_SANITIZE_GATE = ("sanitize", "sanitise")


def _is_sanitizer_gate(node):
    """Whether ``node`` is an ``if`` whose test names the sanitizer flag."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        test = test.operand
    chain = dotted_chain(test)
    if chain is None:
        return False
    tail = chain.rsplit(".", 1)[-1].lower()
    return any(gate in tail for gate in _SANITIZE_GATE)


def _iter_region(node, *, skip_cold=True):
    """Walk a hot region's body, skipping cold subtrees.

    Cold subtrees: ``raise`` and ``assert`` statements (error paths),
    sanitizer-gated ``if`` bodies, and nested function definitions (HOT002
    reports the def itself; its body is a separate scope).
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if skip_cold and isinstance(child, (ast.Raise, ast.Assert)):
            continue
        if skip_cold and _is_sanitizer_gate(child):
            # The test expression is still hot (it's evaluated every
            # iteration); only the guarded body is cold.
            stack.append(child.test)
            stack.extend(child.orelse)
            continue
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


class HotAllocationRule:
    id = "HOT001"
    title = "allocation inside a hot region"

    _DISPLAYS = {
        ast.List: "list literal",
        ast.Dict: "dict literal",
        ast.Set: "set literal",
        ast.ListComp: "list comprehension",
        ast.SetComp: "set comprehension",
        ast.DictComp: "dict comprehension",
        ast.GeneratorExp: "generator expression",
        ast.JoinedStr: "f-string",
    }

    def check(self, model):
        out = []
        for region, _start, _end in model.hot_regions():
            for node in _iter_region(region):
                kind = self._DISPLAYS.get(type(node))
                if kind is not None:
                    out.append(model.finding(
                        self.id, node,
                        f"{kind} allocates every iteration; hoist it out "
                        "of the hot region or use a preallocated buffer"))
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Attribute)
                      and node.func.attr == "format"):
                    out.append(model.finding(
                        self.id, node,
                        "str.format() allocates every iteration; format "
                        "outside the hot region"))
                elif (isinstance(node, ast.BinOp)
                      and isinstance(node.op, ast.Mod)
                      and isinstance(node.left, (ast.Constant, ast.JoinedStr))
                      and isinstance(getattr(node.left, "value", None), str)):
                    out.append(model.finding(
                        self.id, node,
                        "%-formatting allocates every iteration; format "
                        "outside the hot region"))
        return out


class HotClosureRule:
    id = "HOT002"
    title = "closure created inside a hot region"

    def check(self, model):
        out = []
        for region, _start, _end in model.hot_regions():
            for node in _iter_region(region):
                if isinstance(node, ast.Lambda):
                    out.append(model.finding(
                        self.id, node,
                        "lambda builds a function object per iteration; "
                        "define it once outside the hot region"))
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    out.append(model.finding(
                        self.id, node,
                        f"nested def '{node.name}' builds a function "
                        "object per iteration; define it once outside "
                        "the hot region"))
        return out


class HotAttrReLookupRule:
    id = "HOT003"
    title = "repeated attribute chain inside a hot region"

    def check(self, model):
        out = []
        for region, _start, _end in model.hot_regions():
            # Roots rebound inside the region: their chains change value,
            # so repeated loads are not hoistable.
            rebound = set()
            for node in _iter_region(region, skip_cold=False):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.For)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for t in targets:
                        for leaf in ast.walk(t):
                            if isinstance(leaf, ast.Name):
                                rebound.add(leaf.id)
            # One expression ``a.b.c`` is one *outermost* attribute node
            # but performs a lookup of every prefix (a.b, then a.b.c), so
            # prefixes are counted individually.
            attrs = [node for node in _iter_region(region)
                     if isinstance(node, ast.Attribute)
                     and isinstance(node.ctx, ast.Load)]
            nested = set()
            for node in attrs:
                value = node.value
                while isinstance(value, ast.Attribute):
                    nested.add(id(value))
                    value = value.value
            counts = {}
            for node in attrs:
                if id(node) in nested:
                    continue
                chain = dotted_chain(node)
                if chain is None or chain.split(".")[0] in rebound:
                    continue
                parts = chain.split(".")
                for k in range(2, len(parts) + 1):
                    counts.setdefault(".".join(parts[:k]), []).append(node)
            for chain, nodes in sorted(counts.items()):
                if len(nodes) < ATTR_THRESHOLD:
                    continue
                # Prefer the most specific chain: skip when an extension
                # accounts for the same loads (report a.b.c, not a.b).
                if any(other.startswith(chain + ".")
                       and len(counts[other]) == len(nodes)
                       for other in counts):
                    continue
                first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
                out.append(model.finding(
                    self.id, first,
                    f"'{chain}' is looked up {len(nodes)} times in this "
                    "hot region; hoist it into a local before the loop"))
        return out


class HotTryExceptRule:
    id = "HOT004"
    title = "try/except inside a hot region"

    def check(self, model):
        out = []
        kinds = (ast.Try,) + ((ast.TryStar,) if hasattr(ast, "TryStar")
                              else ())
        for region, _start, _end in model.hot_regions():
            for node in _iter_region(region):
                if isinstance(node, kinds):
                    out.append(model.finding(
                        self.id, node,
                        "try/except pushes a handler block every "
                        "iteration; hoist the try around the hot region "
                        "(see interleave.run's StopIteration hoist)"))
        return out


RULES = [HotAllocationRule(), HotClosureRule(), HotAttrReLookupRule(),
         HotTryExceptRule()]
