"""API: drift detection against a recorded surface baseline.

``repro.core.__all__`` and ``repro.workload.__all__`` are the
compatibility contracts downstream scripts import against; ``RunConfig``
(the unified run API, PR 4) and the ``ScenarioSpec``/``TenantSpec`` pair
(the declarative workload API, PR 9) are the keyword surfaces callers
construct; the run report's ``SCHEMA_VERSION`` and the workload spec's
``SPEC_SCHEMA_VERSION`` are pinned to additive-only evolution.  All of
them can be broken silently by an innocent-looking edit.  This family
compares the current tree to ``api_baseline.json`` (committed next to
this module, regenerated with ``python -m repro.analysis api-baseline
--write``):

API001  a name recorded in the baseline vanished from a public
        ``__all__`` (export removal = downstream ImportError).
API002  a recorded config-dataclass field was removed or its annotation
        changed (field removal/retype = silent config drops for callers
        passing keywords).
API003  a schema version moved backwards, or changed at all without the
        baseline being regenerated in the same commit.

Additions are fine and never flagged -- regenerating the baseline when you
*intend* a surface change is the whole workflow.
"""

import ast
import json
import os

from repro.analysis.model import Finding

BASELINE_NAME = "api_baseline.json"

#: Module-relative file the baseline facts come from, keyed by fact.
_SOURCES = {
    "core_all": os.path.join("repro", "core", "__init__.py"),
    "workload_all": os.path.join("repro", "workload", "__init__.py"),
    "runconfig_fields": os.path.join("repro", "core", "run.py"),
    "scenariospec_fields": os.path.join("repro", "workload", "spec.py"),
    "tenantspec_fields": os.path.join("repro", "workload", "spec.py"),
    "report_schema_version": os.path.join("repro", "obs", "report.py"),
    "spec_schema_version": os.path.join("repro", "workload", "spec.py"),
}

#: API001 export lists: fact key -> (module shown in messages).
_ALL_FACTS = {
    "core_all": "repro.core",
    "workload_all": "repro.workload",
}

#: API002 keyword dataclasses: fact key -> class name.
_FIELD_FACTS = {
    "runconfig_fields": "RunConfig",
    "scenariospec_fields": "ScenarioSpec",
    "tenantspec_fields": "TenantSpec",
}

#: API003 schema-version constants: fact key -> (constant, label).
_VERSION_FACTS = {
    "report_schema_version": ("SCHEMA_VERSION", "run-report SCHEMA_VERSION"),
    "spec_schema_version": ("SPEC_SCHEMA_VERSION",
                            "workload-spec SPEC_SCHEMA_VERSION"),
}


def _find_source(paths, tail):
    tail = tail.replace("\\", "/")
    for path in paths:
        if path.replace("\\", "/").endswith(tail):
            return path
    return None


def _parse(path):
    with open(path, encoding="utf-8") as f:
        return ast.parse(f.read(), filename=path)


def _extract_all(tree):
    """``(sorted __all__ names, line)`` of a module, or ``None``."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets):
            names = [elt.value for elt in node.value.elts
                     if isinstance(elt, ast.Constant)]
            return sorted(names), node.lineno
    return None


def _extract_fields(tree, class_name):
    """``({field: annotation}, line)`` of a dataclass, or ``None``."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = {}
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name):
                    fields[item.target.id] = ast.unparse(item.annotation)
            return fields, node.lineno
    return None


def _extract_const(tree, const_name):
    """``(value, line)`` of a module-level constant, or ``None``."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == const_name
                for t in node.targets):
            if isinstance(node.value, ast.Constant):
                return node.value.value, node.lineno
    return None


def extract_api(paths):
    """The current API surface: ``(facts, locations)``.

    ``facts`` mirrors the baseline JSON; ``locations`` maps each fact key
    to the ``(path, line)`` its value was read from, for anchoring
    findings.  Missing source files yield missing keys (the check skips
    them rather than guessing).
    """
    facts = {}
    locations = {}
    trees = {}

    def tree_for(key):
        path = _find_source(paths, _SOURCES[key])
        if path is None:
            return None, None
        if path not in trees:
            trees[path] = _parse(path)
        return trees[path], path

    def record(key, extracted, path):
        if extracted is not None:
            facts[key], line = extracted
            locations[key] = (path, line)

    for key in _ALL_FACTS:
        tree, path = tree_for(key)
        if tree is not None:
            record(key, _extract_all(tree), path)
    for key, class_name in _FIELD_FACTS.items():
        tree, path = tree_for(key)
        if tree is not None:
            record(key, _extract_fields(tree, class_name), path)
    for key, (const_name, _label) in _VERSION_FACTS.items():
        tree, path = tree_for(key)
        if tree is not None:
            record(key, _extract_const(tree, const_name), path)

    return facts, locations


def baseline_path():
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        BASELINE_NAME)


def load_baseline(path=None):
    path = path or baseline_path()
    if not os.path.isfile(path):
        return None
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def write_baseline(paths, path=None):
    """Record the current surface as the new baseline; returns the facts."""
    facts, _locations = extract_api(paths)
    out = dict(facts, _comment=(
        "Recorded API surface. Regenerate deliberately with "
        "'python -m repro.analysis api-baseline --write' when a surface "
        "change is intended; the API rules flag any removal or retype "
        "relative to this file."))
    path = path or baseline_path()
    with open(path, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    return facts


class ApiDriftRule:
    """API001-003 -- a project rule over the analyzed file list."""

    id = "API"
    title = "API surface drift vs recorded baseline"

    def check_project_paths(self, paths):
        baseline = load_baseline()
        if baseline is None:
            return []
        facts, locations = extract_api(paths)
        out = []

        def anchor(key):
            return locations.get(key, ("<api-baseline>", 0))

        def both(key):
            return key in baseline and key in facts

        for key, module in _ALL_FACTS.items():
            if not both(key):
                continue
            removed = sorted(set(baseline[key]) - set(facts[key]))
            path, line = anchor(key)
            for name in removed:
                out.append(Finding(
                    rule="API001", path=path, line=line, col=0,
                    message=(f"'{name}' was removed from {module}."
                             "__all__; downstream imports break -- restore "
                             "it or regenerate the API baseline if the "
                             "removal is intended"),
                    content=f"__all__ -= {name}"))

        for key, class_name in _FIELD_FACTS.items():
            if not both(key):
                continue
            old, new = baseline[key], facts[key]
            path, line = anchor(key)
            for name in sorted(set(old) - set(new)):
                out.append(Finding(
                    rule="API002", path=path, line=line, col=0,
                    message=(f"{class_name} field '{name}' was removed; "
                             "callers passing it as a keyword break -- "
                             "restore it or regenerate the API baseline"),
                    content=f"{class_name} -= {name}"))
            for name in sorted(set(old) & set(new)):
                if old[name] != new[name]:
                    out.append(Finding(
                        rule="API002", path=path, line=line, col=0,
                        message=(f"{class_name} field '{name}' changed type "
                                 f"({old[name]} -> {new[name]}); "
                                 "regenerate the API baseline if intended"),
                        content=f"{class_name} {name}: {new[name]}"))

        for key, (const_name, label) in _VERSION_FACTS.items():
            if not both(key):
                continue
            old_v, new_v = baseline[key], facts[key]
            if new_v != old_v:
                path, line = anchor(key)
                direction = ("moved backwards" if new_v < old_v
                             else "changed without a baseline update")
                out.append(Finding(
                    rule="API003", path=path, line=line, col=0,
                    message=(f"{label} {direction} "
                             f"({old_v} -> {new_v}); the schema evolves "
                             "additively -- bump deliberately and "
                             "regenerate the API baseline in the same "
                             "commit"),
                    content=f"{const_name} = {new_v}"))

        return out


PROJECT_RULES = [ApiDriftRule()]
