"""API: drift detection against a recorded surface baseline.

``repro.core.__all__`` is the compatibility contract downstream scripts
import against, ``RunConfig`` is the unified run API (PR 4), and the run
report's ``SCHEMA_VERSION`` is pinned to additive-only evolution.  All
three can be broken silently by an innocent-looking edit.  This family
compares the current tree to ``api_baseline.json`` (committed next to
this module, regenerated with ``python -m repro.analysis api-baseline
--write``):

API001  a name recorded in the baseline vanished from
        ``repro.core.__all__`` (export removal = downstream ImportError).
API002  a recorded ``RunConfig`` field was removed or its annotation
        changed (field removal/retype = silent config drops for callers
        passing keywords).
API003  the run report ``SCHEMA_VERSION`` moved backwards, or changed at
        all without the baseline being regenerated in the same commit.

Additions are fine and never flagged -- regenerating the baseline when you
*intend* a surface change is the whole workflow.
"""

import ast
import json
import os

from repro.analysis.model import Finding

BASELINE_NAME = "api_baseline.json"

#: Module-relative file the baseline facts come from, keyed by fact.
_SOURCES = {
    "core_all": os.path.join("repro", "core", "__init__.py"),
    "runconfig_fields": os.path.join("repro", "core", "run.py"),
    "report_schema_version": os.path.join("repro", "obs", "report.py"),
}


def _find_source(paths, tail):
    tail = tail.replace("\\", "/")
    for path in paths:
        if path.replace("\\", "/").endswith(tail):
            return path
    return None


def _parse(path):
    with open(path, encoding="utf-8") as f:
        return ast.parse(f.read(), filename=path)


def extract_api(paths):
    """The current API surface: ``(facts, locations)``.

    ``facts`` mirrors the baseline JSON; ``locations`` maps each fact key
    to the ``(path, line)`` its value was read from, for anchoring
    findings.  Missing source files yield missing keys (the check skips
    them rather than guessing).
    """
    facts = {}
    locations = {}

    path = _find_source(paths, _SOURCES["core_all"])
    if path is not None:
        for node in _parse(path).body:
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in node.targets):
                names = [elt.value for elt in node.value.elts
                         if isinstance(elt, ast.Constant)]
                facts["core_all"] = sorted(names)
                locations["core_all"] = (path, node.lineno)

    path = _find_source(paths, _SOURCES["runconfig_fields"])
    if path is not None:
        for node in _parse(path).body:
            if isinstance(node, ast.ClassDef) and node.name == "RunConfig":
                fields = {}
                for item in node.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                            item.target, ast.Name):
                        fields[item.target.id] = ast.unparse(item.annotation)
                facts["runconfig_fields"] = fields
                locations["runconfig_fields"] = (path, node.lineno)

    path = _find_source(paths, _SOURCES["report_schema_version"])
    if path is not None:
        for node in _parse(path).body:
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "SCHEMA_VERSION"
                    for t in node.targets):
                if isinstance(node.value, ast.Constant):
                    facts["report_schema_version"] = node.value.value
                    locations["report_schema_version"] = (path, node.lineno)

    return facts, locations


def baseline_path():
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        BASELINE_NAME)


def load_baseline(path=None):
    path = path or baseline_path()
    if not os.path.isfile(path):
        return None
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def write_baseline(paths, path=None):
    """Record the current surface as the new baseline; returns the facts."""
    facts, _locations = extract_api(paths)
    out = dict(facts, _comment=(
        "Recorded API surface. Regenerate deliberately with "
        "'python -m repro.analysis api-baseline --write' when a surface "
        "change is intended; the API rules flag any removal or retype "
        "relative to this file."))
    path = path or baseline_path()
    with open(path, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    return facts


class ApiDriftRule:
    """API001-003 -- a project rule over the analyzed file list."""

    id = "API"
    title = "API surface drift vs recorded baseline"

    def check_project_paths(self, paths):
        baseline = load_baseline()
        if baseline is None:
            return []
        facts, locations = extract_api(paths)
        out = []

        def anchor(key):
            path, line = locations.get(key, ("<api-baseline>", 0))
            return path, line

        if "core_all" in baseline and "core_all" in facts:
            removed = sorted(set(baseline["core_all"])
                             - set(facts["core_all"]))
            path, line = anchor("core_all")
            for name in removed:
                out.append(Finding(
                    rule="API001", path=path, line=line, col=0,
                    message=(f"'{name}' was removed from repro.core."
                             "__all__; downstream imports break -- restore "
                             "it or regenerate the API baseline if the "
                             "removal is intended"),
                    content=f"__all__ -= {name}"))

        if "runconfig_fields" in baseline and "runconfig_fields" in facts:
            old = baseline["runconfig_fields"]
            new = facts["runconfig_fields"]
            path, line = anchor("runconfig_fields")
            for name in sorted(set(old) - set(new)):
                out.append(Finding(
                    rule="API002", path=path, line=line, col=0,
                    message=(f"RunConfig field '{name}' was removed; "
                             "callers passing it as a keyword break -- "
                             "restore it or regenerate the API baseline"),
                    content=f"RunConfig -= {name}"))
            for name in sorted(set(old) & set(new)):
                if old[name] != new[name]:
                    out.append(Finding(
                        rule="API002", path=path, line=line, col=0,
                        message=(f"RunConfig field '{name}' changed type "
                                 f"({old[name]} -> {new[name]}); "
                                 "regenerate the API baseline if intended"),
                        content=f"RunConfig {name}: {new[name]}"))

        if "report_schema_version" in baseline \
                and "report_schema_version" in facts:
            old_v = baseline["report_schema_version"]
            new_v = facts["report_schema_version"]
            if new_v != old_v:
                path, line = anchor("report_schema_version")
                direction = ("moved backwards" if new_v < old_v
                             else "changed without a baseline update")
                out.append(Finding(
                    rule="API003", path=path, line=line, col=0,
                    message=(f"run-report SCHEMA_VERSION {direction} "
                             f"({old_v} -> {new_v}); the schema evolves "
                             "additively -- bump deliberately and "
                             "regenerate the API baseline in the same "
                             "commit"),
                    content=f"SCHEMA_VERSION = {new_v}"))

        return out


PROJECT_RULES = [ApiDriftRule()]
