"""SARIF 2.1.0 export of analysis findings.

SARIF is the interchange format GitHub code scanning ingests, so CI can
upload the analysis run and findings appear as repository code-scanning
alerts instead of buried job logs.  The emitted document is minimal and
**deterministic** -- no timestamps, sorted rules, findings in engine
order (already sorted) -- so two runs over the same tree produce
byte-identical SARIF, which keeps report diffs meaningful.
"""

import os

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "repro-analysis"
TOOL_URI = "https://github.com/"  # filled by CI context; informational


def _rel_uri(path, root):
    if root:
        try:
            return os.path.relpath(path, root).replace(os.sep, "/")
        except ValueError:
            pass
    return path.replace(os.sep, "/")


def sarif_report(findings, *, root=None, rules=()):
    """The findings as a SARIF 2.1.0 ``dict`` (one run, one tool).

    ``rules`` is the ``(id, title)`` catalogue; every catalogued rule is
    declared even when it produced no results, so code scanning can show
    the full rule set.
    """
    rule_ids = sorted({rid for rid, _ in rules}
                      | {f.rule for f in findings})
    titles = dict(rules)
    descriptors = [
        {
            "id": rid,
            "name": rid,
            "shortDescription": {"text": titles.get(rid, rid)},
            "defaultConfiguration": {"level": "warning"},
        }
        for rid in rule_ids
    ]
    index = {rid: i for i, rid in enumerate(rule_ids)}
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": _rel_uri(f.path, root)},
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": f.col + 1,
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": descriptors,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
