"""Import-resolving call graph over the analyzed tree.

The whole-program rules (MP001 reachability, the effect-summary engine in
:mod:`repro.analysis.effects`, the taint engine in
:mod:`repro.analysis.taint`) all need the same two ingredients:

* a per-file :class:`Resolver` that turns a name/attribute chain into a
  fully-qualified dotted name by walking the module's imports (``from
  repro.memsim import batch; batch.trace_plan`` resolves to
  ``repro.memsim.batch.trace_plan``), and
* a project-level :class:`CallGraph` that joins the per-file fragments
  and resolves call targets across files -- exact qualified names first,
  then ``Class.method`` suffix matches, then (for dynamic dispatch on an
  unknown receiver) *every* class method of that name in the tree: the
  documented over-approximation fallback.

The graph is deterministic: nodes and edges sort, and resolution prefers
exact matches over suffix matches over dynamic fans.
"""

import ast
import os

from repro.analysis.model import dotted_chain, import_map, resolve_relative

#: Marker prefix for an unresolved-receiver method call recorded by the
#: extractors; ``~dyn:name`` resolves to every class method called
#: ``name`` in the analyzed tree (over-approximation).
DYN_PREFIX = "~dyn:"


def _package_of(model):
    """The package a file's relative imports resolve against."""
    if os.path.basename(model.path) == "__init__.py":
        return model.module
    return model.module.rsplit(".", 1)[0] if "." in model.module else ""


class Resolver:
    """Resolve a name/attribute chain to a fully-qualified dotted name."""

    def __init__(self, model):
        self.module = model.module
        self.package = _package_of(model)
        self.imports = import_map(model.tree)
        self.local_defs = {
            node.name for node in model.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))
        }

    def qualify(self, chain):
        """Fully qualify ``chain`` or return ``None`` if unresolvable."""
        if chain is None:
            return None
        root, _, rest = chain.partition(".")
        target = self.imports.get(root)
        if target is not None:
            resolved = resolve_relative(target, self.package)
            return f"{resolved}.{rest}" if rest else resolved
        if root in self.local_defs:
            return f"{self.module}.{chain}"
        return None


def iter_functions(model):
    """``(local_qualname, func_node, class_name)`` for every function.

    Top-level functions yield ``("f", node, None)``; methods yield
    ``("Cls.f", node, "Cls")``.  Nested defs are left to the caller (the
    extractors merge them into their parent, like MP001 does).
    """
    for node in model.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node, None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item, node.name


class CallGraph:
    """Joined call graph over per-file fact fragments.

    ``nodes`` maps fully-qualified function names to their fact dicts
    (whatever shape the extractor produced -- the graph only needs the
    names).  Targets recorded by the extractors come in three shapes:
    fully-qualified names, bare ``Class.method`` suffixes (self-calls and
    typed receivers), and ``~dyn:name`` dynamic-dispatch markers.
    """

    def __init__(self, nodes):
        self.nodes = dict(nodes)
        # Suffix index: "Cls.meth" -> [qualnames]; name index for ~dyn.
        self._suffix = {}
        self._methods = {}
        for qual in self.nodes:
            parts = qual.split(".")
            if len(parts) >= 2:
                self._suffix.setdefault(
                    ".".join(parts[-2:]), []).append(qual)
            if len(parts) >= 3:
                # module.Class.method shape: a class method.
                self._methods.setdefault(parts[-1], []).append(qual)

    def resolve(self, target):
        """All graph nodes a recorded call target may reach (sorted)."""
        if target in self.nodes:
            return [target]
        if target.startswith(DYN_PREFIX):
            return sorted(self._methods.get(target[len(DYN_PREFIX):], []))
        if "." in target:
            tail = ".".join(target.split(".")[-2:])
            return sorted(self._suffix.get(tail, []))
        return []

    def roots_matching(self, suffix):
        """Graph nodes whose qualname ends with ``suffix`` (sorted)."""
        out = [q for q in self.nodes
               if q == suffix or q.endswith("." + suffix)]
        return sorted(out)

    def edges(self, calls_of):
        """``{qual: sorted set of resolved callee quals}`` for the graph.

        ``calls_of(info)`` extracts the raw target list from a node's
        fact dict (the extractors store them under different keys).
        """
        out = {}
        for qual, info in self.nodes.items():
            seen = set()
            for target in calls_of(info):
                seen.update(self.resolve(target))
            out[qual] = sorted(seen)
        return out
