"""DET: determinism lint.

The paper's results rest on bit-exact simulation: the same sweep must hash
identically whether it ran serially, on four workers, or resumed from a
checkpoint (PRs 1-4 each prove this by hand).  Nondeterminism sneaks in
through a small set of well-known doors, and these rules bolt them:

DET001
    The process-global ``random`` module (or an unseeded ``Random()``):
    results then depend on call order across the whole process.  The
    sanctioned idiom is a locally seeded ``random.Random(seed)``
    (see ``repro.tpcd.queries``).
DET002
    Wall-clock reads (``time.time``, ``datetime.now``...): anything they
    feed differs run to run.  Monotonic clocks (``perf_counter``,
    ``monotonic``) are exempt -- timing *measurement* is fine; timing
    *data* is not.
DET003
    Ambient entropy: ``os.urandom``, ``uuid.uuid4``, ``secrets``.
DET004
    Object identity: ``id()`` is allocation-order-dependent and builtin
    ``hash()`` on strings varies per process (``PYTHONHASHSEED``), so
    neither may feed hashed or ordered results.  Content hashes go through
    ``hashlib`` (see ``repro.obs.report.summary_hash``).
DET005
    Iterating a set (or materializing one into a sequence) feeds
    hash-order into whatever consumes the loop.  Wrap the set in
    ``sorted()`` first.

Scope: the simulation and experiment layers (``repro/memsim/``,
``repro/core/``, ``repro/experiments/``) -- the observability layer
(``repro.obs``) legitimately reads wall clocks for report timestamps, and
``repro.tpcd`` owns the seeded RNG idiom the rules point at.
"""

import ast

from repro.analysis.model import dotted_chain, import_map

#: Path fragments (posix) a file must contain for the DET rules to apply.
DET_SCOPE = ("repro/memsim/", "repro/core/", "repro/experiments/",
             "repro/workload/")

#: Module-global RNG entry points that are fine: seeding/instantiating.
#: Public: the interprocedural taint engine (repro.analysis.taint) shares
#: these catalogs so the syntactic and flow-based views never disagree on
#: what counts as a source.
RANDOM_OK = {"random.Random", "random.SystemRandom", "random.seed",
             "random.getstate", "random.setstate"}

WALL_CLOCKS = {
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4", "os.getrandbits"}
ENTROPY_MODULES = ("secrets",)

_RANDOM_OK = RANDOM_OK
_WALL_CLOCKS = WALL_CLOCKS
_ENTROPY = ENTROPY
_ENTROPY_MODULES = ENTROPY_MODULES


def _in_scope(model):
    path = model.path.replace("\\", "/")
    return any(fragment in path for fragment in DET_SCOPE)


def _resolved_calls(model):
    """Yield ``(node, resolved_dotted_name)`` for every call in the file.

    A call's function expression is resolved through the module's imports:
    ``from time import time; time()`` resolves to ``time.time``, and
    ``import time; time.time()`` does too.
    """
    imports = import_map(model.tree)
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if chain is None:
            continue
        root, _, rest = chain.partition(".")
        target = imports.get(root)
        if target is None:
            resolved = chain
        else:
            resolved = f"{target}.{rest}" if rest else target
        yield node, resolved


class UnseededRandomRule:
    id = "DET001"
    title = "process-global or unseeded RNG"
    scope = DET_SCOPE

    def check(self, model):
        if not _in_scope(model):
            return []
        out = []
        for node, resolved in _resolved_calls(model):
            if resolved in ("random.Random", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    out.append(model.finding(
                        self.id, node,
                        f"{resolved}() without a seed draws entropy from "
                        "the OS; pass an explicit seed"))
            elif resolved in _RANDOM_OK:
                continue
            elif (resolved.startswith("random.")
                  and resolved.count(".") == 1):
                out.append(model.finding(
                    self.id, node,
                    f"{resolved}() uses the process-global RNG (results "
                    "depend on call order); use a locally seeded "
                    "random.Random(seed)"))
            elif resolved.startswith("numpy.random."):
                out.append(model.finding(
                    self.id, node,
                    f"{resolved}() uses numpy's global RNG; use "
                    "numpy.random.default_rng(seed)"))
        return out


class WallClockRule:
    id = "DET002"
    title = "wall-clock read in the deterministic core"
    scope = DET_SCOPE

    def check(self, model):
        if not _in_scope(model):
            return []
        out = []
        for node, resolved in _resolved_calls(model):
            if resolved in _WALL_CLOCKS:
                out.append(model.finding(
                    self.id, node,
                    f"{resolved}() reads the wall clock; simulated results "
                    "must not depend on it (use time.monotonic/perf_counter "
                    "for durations, or keep the value out of results)"))
        return out


class AmbientEntropyRule:
    id = "DET003"
    title = "ambient entropy source"
    scope = DET_SCOPE

    def check(self, model):
        if not _in_scope(model):
            return []
        out = []
        for node, resolved in _resolved_calls(model):
            if (resolved in _ENTROPY
                    or resolved.split(".")[0] in _ENTROPY_MODULES):
                out.append(model.finding(
                    self.id, node,
                    f"{resolved}() is an ambient entropy source; derive "
                    "identifiers from seeds or content hashes instead"))
        return out


class ObjectIdentityRule:
    id = "DET004"
    title = "object identity / salted hash in results"
    scope = DET_SCOPE

    def check(self, model):
        if not _in_scope(model):
            return []
        out = []
        for node in ast.walk(model.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)):
                continue
            if node.func.id == "id" and len(node.args) == 1:
                out.append(model.finding(
                    self.id, node,
                    "id() is allocation-order-dependent; key on stable "
                    "identity (a name, a tuple of fields) instead"))
            elif node.func.id == "hash" and len(node.args) == 1:
                out.append(model.finding(
                    self.id, node,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED); use hashlib for stable hashes"))
        return out


class SetIterationRule:
    id = "DET005"
    title = "set iteration feeding ordered output"
    scope = DET_SCOPE

    #: Wrappers that impose a deterministic order (or discard it).
    _ORDERING = {"sorted", "len", "sum", "min", "max", "any", "all",
                 "frozenset", "set"}
    #: Wrappers that materialize iteration order into a sequence.
    _MATERIALIZERS = {"list", "tuple", "enumerate"}

    def check(self, model):
        if not _in_scope(model):
            return []
        out = []
        for scope_node in ast.walk(model.tree):
            if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.Module)):
                out.extend(self._check_scope(model, scope_node))
        return out

    def _is_set_expr(self, node, tainted):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left, tainted)
                    or self._is_set_expr(node.right, tainted))
        return False

    def _check_scope(self, model, scope_node):
        body = (scope_node.body if isinstance(scope_node, ast.Module)
                else scope_node.body)
        # Names bound to set expressions directly in this scope.
        tainted = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and node is not scope_node:
                    break
                if isinstance(node, ast.Assign) and self._is_set_expr(
                        node.value, tainted):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tainted.add(target.id)
        out = []
        for stmt in body:
            for node in ast.walk(stmt):
                iters = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Name)
                      and node.func.id in self._MATERIALIZERS and node.args):
                    iters.append(node.args[0])
                for it in iters:
                    if isinstance(it, ast.Call) and isinstance(
                            it.func, ast.Name) \
                            and it.func.id in self._ORDERING:
                        continue
                    if self._is_set_expr(it, tainted):
                        out.append(model.finding(
                            self.id, node,
                            "iterating a set feeds hash order into the "
                            "result; wrap it in sorted() first"))
        return out


RULES = [UnseededRandomRule(), WallClockRule(), AmbientEntropyRule(),
         ObjectIdentityRule(), SetIterationRule()]
