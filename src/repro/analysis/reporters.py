"""Finding reporters: compiler-style text and an obs-convention JSON report.

The JSON shape follows ``repro.obs.report``: a ``kind`` tag, an explicit
``schema_version`` evolved additively, ``generated_at`` wall-clock stamp
(reports are observability, not results), and a ``summary_hash`` over the
canonicalized findings so two runs over the same tree can be compared by
one field.
"""

import json
import os
import time

#: Bump only when a field changes meaning or disappears; adding is free.
SCHEMA_VERSION = 1
REPORT_KIND = "repro-analysis-report"


def text_report(findings, *, root=None, matched=0, suppressed=0):
    """Compiler-style lines: ``path:line:col: RULE message``."""
    lines = []
    for f in findings:
        path = f.path
        if root:
            try:
                path = os.path.relpath(path, root)
            except ValueError:
                pass
        lines.append(f"{path}:{f.line}:{f.col}: {f.rule} {f.message}")
    noun = "finding" if len(findings) == 1 else "findings"
    tail = f"{len(findings)} {noun}"
    if matched:
        tail += f", {matched} baselined"
    if suppressed:
        tail += f", {suppressed} suppressed inline"
    lines.append(tail)
    return "\n".join(lines)


def _summary_hash(payload):
    # Same recipe as repro.obs.report.summary_hash: canonical JSON,
    # sha256, first 16 hex -- without importing repro.obs at lint time.
    import hashlib
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def json_report(findings, *, root=None, files_checked=0, matched=0,
                suppressed=0, rules=()):
    """The findings as an obs-convention report dict."""
    items = []
    for f in findings:
        d = f.as_dict()
        if root:
            try:
                d["path"] = os.path.relpath(d["path"], root).replace(
                    os.sep, "/")
            except ValueError:
                pass
        items.append(d)
    body = {
        "findings": items,
        "counts": {
            "new": len(items),
            "baselined": matched,
            "suppressed": suppressed,
            "files_checked": files_checked,
        },
        "rules": sorted(rules),
    }
    return {
        "kind": REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S",
                                      time.gmtime()) + "Z",
        "summary_hash": _summary_hash(body),
        **body,
    }
