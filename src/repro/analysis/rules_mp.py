"""MP: multiprocessing race / fork-safety lint.

The sweep engine (``repro.core.sweep``) runs points in spawned worker
processes.  Spawn semantics make two classes of bug easy to write and
hard to see:

MP001 (project rule)
    A function reachable from a pool entry point writes module-level
    mutable state.  Each worker has its own copy of the module, so the
    write silently diverges from the parent -- results that "work" serially
    drop data under ``--jobs N``.  The sanctioned channel for
    worker-to-parent state is the metrics registry merge path
    (``repro.obs.metrics``), which this rule exempts.  Entry points are
    discovered structurally -- every ``ProcessPoolExecutor(initializer=F)``
    and ``pool.submit(F, ...)`` site in the analyzed tree -- so new pool
    uses are covered without registration.
MP002 (file rule)
    A lambda or locally-defined function handed to ``submit``/
    ``initializer``: spawn pickles the callable by qualified name, so
    locals and lambdas fail (or worse, resolve to a stale module-level
    name).  Pool callables must be module-level functions.
MP003 (file rule)
    A ``".tmp"`` temp-path built without a per-process discriminator
    (``os.getpid``/``uuid``/``mkstemp``...): two workers writing the same
    temp name race on rename.  ``tracestore.save_trace`` shows the
    sanctioned shape: ``path + f".tmp.{os.getpid()}"``.
MP004 (file rule)
    ``pickle``/``marshal`` used inside the worker-fabric modules
    (``repro/core/backend.py``, ``repro/core/worker.py``).  The fabric's
    contract is ship-by-hash: traces cross the process boundary as store
    keys resolved against the spool directory, never as serialized
    arrays -- pickling them reintroduces the payload-on-the-pipe cost
    the backend exists to avoid, and pickled frames would not survive
    the protocol's CRC/JSON framing.  (``tracestore`` itself may pickle
    result rows inside its checksummed on-disk format; that is the
    sanctioned serialization layer.)

MP001 needs the whole program, so fact collection is split from
judgement: :func:`collect_facts` runs per file (in the parallel workers)
and returns a picklable summary -- the call graph fragment, global writes,
pool entry points; :class:`WorkerGlobalWriteRule` then joins the
fragments in the parent and walks reachability.
"""

import ast

from repro.analysis.callgraph import Resolver
from repro.analysis.model import Finding, dotted_chain, import_map

#: The sanctioned cross-process state channel: anything in these modules
#: may write its own globals (the registry is merged explicitly).
MERGE_PATH_MODULES = ("repro.obs.metrics",)

#: Mutating method names that count as writes to a mutable global.
_MUTATORS = {"append", "add", "update", "setdefault", "extend", "insert",
             "pop", "popitem", "remove", "discard", "clear", "appendleft"}

#: A temp path is considered guarded if the statement building it also
#: mentions one of these.
_TMP_GUARDS = {"getpid", "uuid1", "uuid4", "mkstemp", "mkdtemp",
               "NamedTemporaryFile", "TemporaryDirectory", "token_hex"}


# The chain-to-qualified-name resolver moved to repro.analysis.callgraph
# (the effect and taint engines share it); the old private name stays an
# alias so fact collection reads the same as before.
_Resolver = Resolver


def _mutable_globals(tree):
    """Module-level names bound to mutable containers."""
    mutable = set()
    ctors = {"dict", "list", "set", "deque", "defaultdict", "OrderedDict",
             "Counter", "bytearray"}
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        value = node.value
        is_mutable = isinstance(value, (ast.Dict, ast.List, ast.Set,
                                        ast.DictComp, ast.ListComp,
                                        ast.SetComp))
        if isinstance(value, ast.Call):
            chain = dotted_chain(value.func)
            if chain and chain.rsplit(".", 1)[-1] in ctors:
                is_mutable = True
        if is_mutable:
            for t in targets:
                if isinstance(t, ast.Name):
                    mutable.add(t.id)
    return mutable


def _binding_names(target):
    """Names a target actually binds -- descends destructuring only.

    ``x[k] = v`` and ``x.a = v`` bind nothing (they *mutate* ``x``), so
    subscript/attribute targets are deliberately not descended.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _binding_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _function_writes(func, mutable_globals, lines):
    """Global writes inside ``func``: ``(global_name, line, content)``."""
    declared = set()
    locals_ = set(a.arg for a in func.args.args + func.args.kwonlyargs
                  + func.args.posonlyargs)
    if func.args.vararg:
        locals_.add(func.args.vararg.arg)
    if func.args.kwarg:
        locals_.add(func.args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.For)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                locals_.update(_binding_names(t))
        elif isinstance(node, ast.With):
            for item in node.items:
                if item.optional_vars is not None:
                    locals_.update(_binding_names(item.optional_vars))
        elif isinstance(node, ast.NamedExpr):
            locals_.update(_binding_names(node.target))

    def content(lineno):
        return lines[lineno - 1].strip() if 1 <= lineno <= len(lines) else ""

    writes = []
    for node in ast.walk(func):
        # Rebinding a declared-global name.
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if isinstance(t, ast.Name) and t.id in declared:
                    writes.append((t.id, node.lineno, content(node.lineno)))
                elif isinstance(t, ast.Subscript) and isinstance(
                        t.value, ast.Name):
                    name = t.value.id
                    if name in mutable_globals and name not in locals_ \
                            or name in declared:
                        writes.append((name, node.lineno,
                                       content(node.lineno)))
        # Mutating-method call on a module-level container.
        elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute):
            if node.func.attr in _MUTATORS and isinstance(
                    node.func.value, ast.Name):
                name = node.func.value.id
                if (name in mutable_globals or name in declared) \
                        and name not in locals_:
                    writes.append((name, node.lineno, content(node.lineno)))
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                if isinstance(t, ast.Subscript) and isinstance(
                        t.value, ast.Name):
                    name = t.value.id
                    if (name in mutable_globals or name in declared) \
                            and name not in locals_:
                        writes.append((name, node.lineno,
                                       content(node.lineno)))
    return writes


def _function_calls(func, resolver, class_name):
    """Qualified call targets and instantiated classes inside ``func``."""
    calls = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if chain is None:
            continue
        if class_name and chain.startswith("self."):
            calls.add(f"{resolver.module}.{class_name}."
                      f"{chain.split('.', 1)[1]}")
            continue
        qualified = resolver.qualify(chain)
        if qualified is not None:
            calls.add(qualified)
    return calls


def collect_facts(model):
    """The file's MP001 call-graph fragment (picklable)."""
    resolver = _Resolver(model)
    mutable = _mutable_globals(model.tree)
    functions = {}

    def visit_function(func, qualname, class_name):
        writes = _function_writes(func, mutable, model.lines)
        calls = _function_calls(func, resolver, class_name)
        # A nested def's behavior belongs to its parent: merge it up.
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not func:
                writes.extend(_function_writes(node, mutable, model.lines))
                calls.update(_function_calls(node, resolver, class_name))
        functions[f"{model.module}.{qualname}"] = {
            "line": func.lineno,
            "writes": writes,
            "calls": sorted(calls),
        }

    for node in model.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_function(node, node.name, None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit_function(item, f"{node.name}.{item.name}",
                                   node.name)

    # Pool entry points: initializer= and submit() sites.
    entries = []
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if chain is not None:
            qualified = resolver.qualify(chain) or chain
            if qualified.rsplit(".", 1)[-1] == "ProcessPoolExecutor":
                for kw in node.keywords:
                    if kw.arg == "initializer":
                        target = resolver.qualify(dotted_chain(kw.value))
                        if target:
                            entries.append(target)
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "submit" and node.args:
            target = resolver.qualify(dotted_chain(node.args[0]))
            if target:
                entries.append(target)

    return {
        "module": model.module,
        "path": model.path,
        "functions": functions,
        "entries": sorted(set(entries)),
        "classes": sorted({
            node.name for node in model.tree.body
            if isinstance(node, ast.ClassDef)
        }),
    }


class WorkerGlobalWriteRule:
    """MP001 -- see the module docstring.  A project rule: ``check`` takes
    the full list of per-file fact dicts."""

    id = "MP001"
    title = "worker-reachable write to module-level state"

    def check_project(self, all_facts):
        table = {}
        class_methods = {}
        for facts in all_facts:
            classes = {f"{facts['module']}.{c}" for c in facts["classes"]}
            for qualname, info in facts["functions"].items():
                table[qualname] = dict(info, path=facts["path"],
                                       module=facts["module"])
                head = qualname.rpartition(".")[0]
                if head in classes:
                    class_methods.setdefault(head, []).append(qualname)

        entries = sorted({e for facts in all_facts for e in facts["entries"]})
        reachable = set()
        stack = [e for e in entries if e in table]
        while stack:
            qualname = stack.pop()
            if qualname in reachable:
                continue
            reachable.add(qualname)
            for call in table[qualname]["calls"]:
                if call in table:
                    stack.append(call)
                elif call in class_methods or call + ".__init__" in table:
                    # Instantiating a class makes its methods reachable.
                    for method in class_methods.get(call, []):
                        stack.append(method)

        out = []
        for qualname in sorted(reachable):
            info = table[qualname]
            if any(info["module"].startswith(m) for m in MERGE_PATH_MODULES):
                continue
            for name, line, content in info["writes"]:
                out.append(Finding(
                    rule=self.id, path=info["path"], line=line, col=0,
                    message=(f"'{qualname}' is reachable from a pool worker "
                             f"and writes module global '{name}'; worker "
                             "state must flow through the metrics-registry "
                             "merge path or stay process-local by design"),
                    content=content))
        return out


class PoolLocalCallableRule:
    id = "MP002"
    title = "fork-unsafe callable handed to the pool"

    def check(self, model):
        out = []
        # Names of functions defined inside other functions (not picklable
        # by qualified name under spawn).
        nested_names = set()
        for node in ast.walk(model.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if inner is not node and isinstance(
                            inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nested_names.add(inner.name)

        def judge(value, what):
            if isinstance(value, ast.Lambda):
                out.append(model.finding(
                    self.id, value,
                    f"lambda as {what} cannot be pickled by the spawn "
                    "pool; use a module-level function"))
            elif isinstance(value, ast.Name) and value.id in nested_names:
                out.append(model.finding(
                    self.id, value,
                    f"locally-defined function '{value.id}' as {what} "
                    "cannot be pickled by the spawn pool; move it to "
                    "module level"))

        for node in ast.walk(model.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain and chain.rsplit(".", 1)[-1] == "ProcessPoolExecutor":
                for kw in node.keywords:
                    if kw.arg == "initializer":
                        judge(kw.value, "pool initializer")
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "submit" and node.args:
                judge(node.args[0], "submitted task")
        return out


class UnguardedTempPathRule:
    id = "MP003"
    title = "temp path without a per-process discriminator"

    def _statements(self, model):
        for node in ast.walk(model.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                                 ast.Expr, ast.Return, ast.With)):
                yield node

    @staticmethod
    def _is_tmp_str(node):
        return (isinstance(node, ast.Constant)
                and isinstance(node.value, str) and ".tmp" in node.value)

    def _constructed_tmp_parts(self, stmt):
        """``".tmp"`` string constants that participate in *building* a
        path (concatenation, f-string, join/format) -- bare constants and
        docstrings are just documentation, not races."""
        for node in ast.walk(stmt):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                for side in (node.left, node.right):
                    if self._is_tmp_str(side):
                        yield side
            elif isinstance(node, ast.JoinedStr):
                for part in node.values:
                    if self._is_tmp_str(part):
                        yield part
            elif isinstance(node, ast.Call):
                chain = dotted_chain(node.func)
                tail = chain.rsplit(".", 1)[-1] if chain else ""
                if tail in ("join", "format"):
                    for arg in node.args:
                        if self._is_tmp_str(arg):
                            yield arg

    def check(self, model):
        out = []
        for stmt in self._statements(model):
            parts = list(self._constructed_tmp_parts(stmt))
            if not parts:
                continue
            guarded = False
            for node in ast.walk(stmt):
                chain = dotted_chain(node.func) if isinstance(
                    node, ast.Call) else None
                if chain and chain.rsplit(".", 1)[-1] in _TMP_GUARDS:
                    guarded = True
                    break
            if not guarded:
                out.append(model.finding(
                    self.id, parts[0],
                    "'.tmp' path has no per-process discriminator; two "
                    "workers would race on the same temp name -- append "
                    "f'.tmp.{os.getpid()}' (see tracestore.save_trace)"))
        return out


class BareTracePickleRule:
    """MP004 -- see the module docstring: ship-by-hash enforcement for the
    worker fabric."""

    id = "MP004"
    title = "bare pickle in ship-by-hash backend code"

    #: Path fragments (posix) the rule applies to.
    SCOPE = ("repro/core/backend.py", "repro/core/worker.py")

    #: Serialization entry points that move live objects as bytes.
    _FORBIDDEN = {"pickle", "cPickle", "marshal", "dill", "cloudpickle"}

    def check(self, model):
        path = model.path.replace("\\", "/")
        if not any(path.endswith(fragment) for fragment in self.SCOPE):
            return []
        out = []
        # Aliased imports must not dodge the rule: ``import pickle as pk;
        # pk.loads(...)`` and ``from pickle import loads; loads(...)``
        # both resolve back to the forbidden module.
        imports = import_map(model.tree)
        for node in ast.walk(model.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in self._FORBIDDEN:
                        out.append(model.finding(
                            self.id, node,
                            f"import of '{alias.name}' in backend code: "
                            "the worker fabric ships traces by store key "
                            "(spool + load_trace), never as pickled "
                            "arrays"))
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".", 1)[0]
                if root in self._FORBIDDEN:
                    out.append(model.finding(
                        self.id, node,
                        f"import from '{node.module}' in backend code: "
                        "the worker fabric ships traces by store key "
                        "(spool + load_trace), never as pickled arrays"))
            elif isinstance(node, ast.Call):
                chain = dotted_chain(node.func)
                if chain is None:
                    continue
                root, _, rest = chain.partition(".")
                resolved = imports.get(root, root)
                resolved = f"{resolved}.{rest}" if rest else resolved
                if resolved.split(".", 1)[0] in self._FORBIDDEN:
                    out.append(model.finding(
                        self.id, node,
                        f"'{chain}' call in backend code: trace payloads "
                        "must cross the process boundary as store keys, "
                        "not serialized objects"))
        return out


FILE_RULES = [PoolLocalCallableRule(), UnguardedTempPathRule(),
              BareTracePickleRule()]
PROJECT_RULES = [WorkerGlobalWriteRule()]
