"""Incremental analysis cache: skip files whose content has not changed.

The per-file pass (:func:`repro.analysis.engine.analyze_file`) is a pure
function of a file's bytes, so its whole output -- findings, the three
facts fragments, suppressions -- can be keyed by a content hash and
replayed on the next run.  A warm CI rerun then touches only the files
the commit changed, which is what keeps the analysis job sub-10-seconds.

Invalidation is handled by construction rather than bookkeeping:

* the entry key is ``relpath:sha256(content)`` -- any edit changes it;
* the store carries a *salt* hashed over the analyzer's own sources
  (every ``repro/analysis/*.py``), so changing a rule invalidates
  everything without anyone remembering to bump a version;
* the store records the absolute root it was written under -- findings
  and facts embed absolute paths, so a cache moved to a different
  checkout is discarded wholesale instead of replaying stale paths.

Writes are atomic (tempfile + ``os.replace``), same as every other
mutable store in the repo (MP003's rule).
"""

import hashlib
import json
import os

CACHE_NAME = ".analysis-cache.json"

#: Bump when the *entry* shape changes (the salt already covers rule
#: logic changes).
SCHEMA_VERSION = 1


def analyzer_salt():
    """Hash of the analyzer's own sources: rule changes invalidate all."""
    here = os.path.dirname(os.path.abspath(__file__))
    h = hashlib.sha256()
    for name in sorted(os.listdir(here)):
        if not name.endswith(".py"):
            continue
        h.update(name.encode("utf-8"))
        with open(os.path.join(here, name), "rb") as f:
            h.update(f.read())
    return h.hexdigest()[:16]


def content_key(path, data, root):
    """Cache key for one file: relative posix path + content hash."""
    rel = os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")
    return f"{rel}:{hashlib.sha256(data).hexdigest()}"


class AnalysisCache:
    """The on-disk store.  ``get``/``put`` entries, then ``save()``."""

    def __init__(self, path, salt=None):
        self.path = os.path.abspath(path)
        self.root = os.path.dirname(self.path)
        self.salt = salt if salt is not None else analyzer_salt()
        self.entries = {}
        self.hits = 0
        self.misses = 0
        self._used = set()
        try:
            with open(self.path, encoding="utf-8") as f:
                data = json.load(f)
            if (data.get("schema_version") == SCHEMA_VERSION
                    and data.get("salt") == self.salt
                    and data.get("root") == self.root):
                self.entries = data.get("entries", {})
        except (OSError, ValueError):
            pass

    def key_for(self, path, data):
        return content_key(path, data, self.root)

    def get(self, key):
        """The stored entry for ``key``, or None (counts hit/miss)."""
        self._used.add(key)
        entry = self.entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key, entry):
        self._used.add(key)
        self.entries[key] = entry

    def save(self):
        """Atomically persist, pruning entries not touched this run."""
        data = {
            "schema_version": SCHEMA_VERSION,
            "salt": self.salt,
            "root": self.root,
            "entries": {k: v for k, v in sorted(self.entries.items())
                        if k in self._used},
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(data, f, sort_keys=True)
            f.write("\n")
        os.replace(tmp, self.path)
