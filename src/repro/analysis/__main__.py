"""CLI: ``python -m repro.analysis <command>``.

Commands
--------
check [PATHS...]
    Analyze the given files/trees (default ``src/``) and print findings.
    Exit 0 when clean, 1 when new findings remain, 2 on usage error.
    ``--format {text,json,sarif}`` picks the report shape (``--json`` is
    a back-compat alias for ``--format json``); ``--cache FILE`` enables
    the content-hash incremental cache; ``--strict-todo`` fails the run
    while baseline entries still read ``TODO: justify``;
    ``--write-baseline`` records the current findings as accepted debt;
    ``--no-baseline`` shows everything the rules see.
effects [PATHS...]
    Print transitive effect summaries (which oracle-state atoms each
    function writes/reads, through calls).  ``--function SUBSTR``
    filters by qualified name; ``--format json`` dumps the raw
    summaries.
graph [PATHS...]
    Print the resolved call graph (``caller -> callee`` edges).
rules
    Print the rule catalogue.
api-baseline --write
    Re-record the API surface baseline (deliberate surface changes).
"""

import argparse
import json
import os
import sys

from repro.analysis import baseline as baseline_mod
from repro.analysis import effects, rules_api
from repro.analysis.engine import (check, collect_files, gather_facts,
                                   rule_catalogue)
from repro.analysis.reporters import json_report, text_report
from repro.analysis.sarif import sarif_report


def _cmd_check(args):
    fmt = "json" if args.json else args.format
    result = check(
        args.paths,
        jobs=args.jobs,
        baseline_file=args.baseline,
        use_baseline=not args.no_baseline,
        select=args.select.split(",") if args.select else None,
        cache_file=args.cache,
    )
    if args.write_baseline:
        path = args.baseline or baseline_mod.BASELINE_NAME
        entries = baseline_mod.write(result.findings, path)
        print(f"wrote {len(entries)} entries to {path} "
              "(grep 'TODO: justify' and fill in reasons)")
        return 0
    if fmt == "json":
        report = json_report(
            result.findings, root=result.root,
            files_checked=result.files_checked, matched=result.matched,
            suppressed=result.suppressed,
            rules=[rid for rid, _ in rule_catalogue()])
        print(json.dumps(report, indent=2, sort_keys=True))
    elif fmt == "sarif":
        print(json.dumps(sarif_report(result.findings, root=result.root,
                                      rules=rule_catalogue()),
                         indent=2, sort_keys=True))
    else:
        print(text_report(result.findings, root=result.root,
                          matched=result.matched,
                          suppressed=result.suppressed))
        if args.cache:
            print(f"cache: {result.cache_hits} hits, "
                  f"{result.cache_misses} misses")
    if result.baseline_todos and fmt == "text":
        print(f"warning: {result.baseline_todos} baseline entr"
              f"{'y' if result.baseline_todos == 1 else 'ies'} still "
              "read 'TODO: justify' -- fill in reasons "
              "(--strict-todo makes this an error)", file=sys.stderr)
    if args.strict_todo and result.baseline_todos:
        return 1
    return 0 if result.ok else 1


def _cmd_effects(args):
    _files, facts = gather_facts(args.paths, jobs=args.jobs,
                                 cache_file=args.cache)
    fx = [f["fx"] for f in facts if f.get("fx")]
    summaries, _graph = effects.summarize(fx)
    if args.format == "json":
        out = {
            qual: {
                "writes": {f"{atom}:{op}": sites
                           for (atom, op), sites in s["writes"].items()},
                "reads": sorted(s["reads"]),
            }
            for qual, s in summaries.items()
            if (not args.function or args.function in qual)
            and (s["writes"] or s["reads"])
        }
        print(json.dumps(out, indent=2, sort_keys=True))
    else:
        print(effects.format_summaries(summaries, match=args.function,
                                       root=os.getcwd()))
    return 0


def _cmd_graph(args):
    _files, facts = gather_facts(args.paths, jobs=args.jobs,
                                 cache_file=args.cache)
    fx = [f["fx"] for f in facts if f.get("fx")]
    graph = effects.build_graph(fx)
    edges = graph.edges(lambda info: [c[0] for c in info.get("calls", [])])
    if args.format == "json":
        print(json.dumps(edges, indent=2, sort_keys=True))
    else:
        for caller in sorted(edges):
            for callee in edges[caller]:
                print(f"{caller} -> {callee}")
    return 0


def _cmd_rules(_args):
    for rule_id, title in rule_catalogue():
        print(f"{rule_id:8s} {title}")
    return 0


def _cmd_api_baseline(args):
    if not args.write:
        facts = rules_api.load_baseline()
        if facts is None:
            print("no API baseline recorded", file=sys.stderr)
            return 2
        print(json.dumps(facts, indent=2, sort_keys=True))
        return 0
    files = collect_files(args.paths)
    facts = rules_api.write_baseline(files)
    print(f"recorded API baseline ({', '.join(sorted(facts))}) "
          f"at {rules_api.baseline_path()}")
    return 0


def _add_common(parser, formats=("text", "json")):
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--format", choices=formats, default="text",
                        help="output format (default: text)")
    parser.add_argument("--cache", metavar="FILE", default=None,
                        help="incremental cache file (content-hash keyed)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: auto)")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-aware static analysis for the simulator.")
    sub = parser.add_subparsers(dest="command")

    p_check = sub.add_parser("check", help="analyze a tree for findings")
    _add_common(p_check, formats=("text", "json", "sarif"))
    p_check.add_argument("--json", action="store_true",
                         help="alias for --format json")
    p_check.add_argument("--baseline", metavar="FILE", default=None,
                         help="baseline file (default: nearest "
                              ".analysis-baseline.json above the tree)")
    p_check.add_argument("--no-baseline", action="store_true",
                         help="ignore the baseline; show all findings")
    p_check.add_argument("--write-baseline", action="store_true",
                         help="record current findings as accepted debt")
    p_check.add_argument("--strict-todo", action="store_true",
                         help="fail while baseline entries lack reasons")
    p_check.add_argument("--select", default=None, metavar="PREFIXES",
                         help="comma-separated rule-id prefixes to keep "
                              "(e.g. DET,MP)")
    p_check.set_defaults(func=_cmd_check)

    p_fx = sub.add_parser("effects",
                          help="print transitive effect summaries")
    _add_common(p_fx)
    p_fx.add_argument("--function", default=None, metavar="SUBSTR",
                      help="only qualified names containing SUBSTR")
    p_fx.set_defaults(func=_cmd_effects)

    p_graph = sub.add_parser("graph", help="print the resolved call graph")
    _add_common(p_graph)
    p_graph.set_defaults(func=_cmd_graph)

    p_rules = sub.add_parser("rules", help="print the rule catalogue")
    p_rules.set_defaults(func=_cmd_rules)

    p_api = sub.add_parser("api-baseline",
                           help="show or re-record the API surface baseline")
    p_api.add_argument("paths", nargs="*", default=["src"])
    p_api.add_argument("--write", action="store_true",
                       help="record the current surface as the baseline")
    p_api.set_defaults(func=_cmd_api_baseline)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
