"""CLI: ``python -m repro.analysis <command>``.

Commands
--------
check [PATHS...]
    Analyze the given files/trees (default ``src/``) and print findings.
    Exit 0 when clean, 1 when new findings remain, 2 on usage error.
    ``--json`` emits the obs-convention report instead of text;
    ``--write-baseline`` records the current findings as accepted debt;
    ``--no-baseline`` shows everything the rules see.
rules
    Print the rule catalogue.
api-baseline --write
    Re-record the API surface baseline (deliberate surface changes).
"""

import argparse
import json
import sys

from repro.analysis import baseline as baseline_mod
from repro.analysis import rules_api
from repro.analysis.engine import check, collect_files, rule_catalogue
from repro.analysis.reporters import json_report, text_report


def _cmd_check(args):
    result = check(
        args.paths,
        jobs=args.jobs,
        baseline_file=args.baseline,
        use_baseline=not args.no_baseline,
        select=args.select.split(",") if args.select else None,
    )
    if args.write_baseline:
        path = args.baseline or baseline_mod.BASELINE_NAME
        entries = baseline_mod.write(result.findings, path)
        print(f"wrote {len(entries)} entries to {path} "
              "(grep 'TODO: justify' and fill in reasons)")
        return 0
    if args.json:
        report = json_report(
            result.findings, root=result.root,
            files_checked=result.files_checked, matched=result.matched,
            suppressed=result.suppressed,
            rules=[rid for rid, _ in rule_catalogue()])
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(text_report(result.findings, root=result.root,
                          matched=result.matched,
                          suppressed=result.suppressed))
    return 0 if result.ok else 1


def _cmd_rules(_args):
    for rule_id, title in rule_catalogue():
        print(f"{rule_id:8s} {title}")
    return 0


def _cmd_api_baseline(args):
    if not args.write:
        facts = rules_api.load_baseline()
        if facts is None:
            print("no API baseline recorded", file=sys.stderr)
            return 2
        print(json.dumps(facts, indent=2, sort_keys=True))
        return 0
    files = collect_files(args.paths)
    facts = rules_api.write_baseline(files)
    print(f"recorded API baseline ({', '.join(sorted(facts))}) "
          f"at {rules_api.baseline_path()}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-aware static analysis for the simulator.")
    sub = parser.add_subparsers(dest="command")

    p_check = sub.add_parser("check", help="analyze a tree for findings")
    p_check.add_argument("paths", nargs="*", default=["src"],
                         help="files or directories (default: src)")
    p_check.add_argument("--json", action="store_true",
                         help="emit an obs-convention JSON report")
    p_check.add_argument("--baseline", metavar="FILE", default=None,
                         help="baseline file (default: nearest "
                              ".analysis-baseline.json above the tree)")
    p_check.add_argument("--no-baseline", action="store_true",
                         help="ignore the baseline; show all findings")
    p_check.add_argument("--write-baseline", action="store_true",
                         help="record current findings as accepted debt")
    p_check.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: auto)")
    p_check.add_argument("--select", default=None, metavar="PREFIXES",
                         help="comma-separated rule-id prefixes to keep "
                              "(e.g. DET,MP)")
    p_check.set_defaults(func=_cmd_check)

    p_rules = sub.add_parser("rules", help="print the rule catalogue")
    p_rules.set_defaults(func=_cmd_rules)

    p_api = sub.add_parser("api-baseline",
                           help="show or re-record the API surface baseline")
    p_api.add_argument("paths", nargs="*", default=["src"])
    p_api.add_argument("--write", action="store_true",
                       help="record the current surface as the baseline")
    p_api.set_defaults(func=_cmd_api_baseline)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
