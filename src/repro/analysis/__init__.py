"""repro.analysis -- repo-aware static analysis for the simulator.

The paper's numbers rest on bit-exact, deterministic simulation; this
package encodes the invariants PRs 1-4 verified by hand as machine-checked
lint rules, run as ``python -m repro.analysis check src/`` (blocking in
CI) or through the library API below.

Rule families (see each module's docstring for the catalogue):

* ``DET`` -- determinism (:mod:`repro.analysis.rules_det`)
* ``HOT`` -- hot-loop hygiene in ``# repro: hot`` regions
  (:mod:`repro.analysis.rules_hot`)
* ``MP``  -- multiprocessing races / fork safety
  (:mod:`repro.analysis.rules_mp`)
* ``API`` -- surface drift vs a recorded baseline
  (:mod:`repro.analysis.rules_api`)
* ``KRN`` -- kernel state-equivalence: the fast replay paths' transitive
  effect summaries vs the scalar oracle (:mod:`repro.analysis.effects`)
* ``TNT`` -- interprocedural determinism taint: nondeterministic sources
  flowing to result-affecting sinks (:mod:`repro.analysis.taint`)

The whole-program core under the KRN/TNT rules -- the import-resolving
call graph (:mod:`repro.analysis.callgraph`) and per-function effect
summaries -- is also queryable directly via the ``effects`` and ``graph``
CLI commands; the ``--cache`` flag keys a persistent store by file
content hash (:mod:`repro.analysis.cache`) for sub-second warm reruns,
and ``--format sarif`` exports for code scanning
(:mod:`repro.analysis.sarif`).

Findings are silenced either inline (``# repro: allow[RULE] why``) or via
the committed ``.analysis-baseline.json`` (:mod:`repro.analysis.baseline`).
"""

from repro.analysis.engine import (CheckResult, analyze_file, check,
                                   collect_files, gather_facts,
                                   rule_catalogue)
from repro.analysis.model import FileModel, Finding
from repro.analysis.reporters import json_report, text_report
from repro.analysis.sarif import sarif_report

__all__ = [
    "CheckResult",
    "FileModel",
    "Finding",
    "analyze_file",
    "check",
    "collect_files",
    "gather_facts",
    "json_report",
    "rule_catalogue",
    "sarif_report",
    "text_report",
]
