"""TNT: interprocedural determinism taint analysis.

The syntactic DET rules flag nondeterministic *sources* wherever they
appear inside the deterministic core.  This engine tracks the *flows*:
a wall-clock read, an unseeded RNG draw, a pid, an environment read, or
set-iteration order is only a correctness bug when its value reaches a
**result-affecting sink** -- trace encoding, metric counters, report
hashes, or ledger records.  Flows are tracked through assignments,
containers, and *across function boundaries* via the call graph: a
helper that returns ``time.time()`` taints every caller's use of it, and
a wrapper that forwards its argument into ``summary_hash`` makes every
tainted call site a finding.

The model is deliberately conservative in one direction each way:

* **Sources under-approximate nothing**: every catalog hit registers,
  and a call that cannot be resolved to analyzed code is treated as a
  *passthrough* (tainted arguments taint the result) -- the dynamic-
  dispatch over-approximation.
* **Sinks are an explicit catalog**: result-affecting call targets, not
  "anything that writes".

Suppressions: an existing ``# repro: allow[DET00x]`` (or
``allow[TNT001]``, or ``allow[*]``) on the *source* line defuses the
source itself; the engine's standard line/line-1 suppression at the
*sink* finding works too -- that is suppression at the taint edge.
``sorted(...)`` strips set-order taint (it re-imposes a deterministic
order) while passing every other kind through.

Fixpoints are computed over three monotone predicates per function:
returns-tainted (R), parameter-flows-to-return (PR), and parameter-
flows-to-sink (PS); cycles in the call graph converge because the
predicates only grow.
"""

import ast

from repro.analysis import effects, rules_det
from repro.analysis.callgraph import DYN_PREFIX, CallGraph, Resolver, \
    iter_functions
from repro.analysis.model import Finding, dotted_chain, resolve_relative

RULE_ID = "TNT001"

#: Source kinds and the allow-comment ids that defuse them at the source
#: line (TNT001 and * always work).
_SOURCE_DET = {"wall-clock": "DET002", "rng": "DET001", "entropy": "DET003",
               "pid": None, "env": None, "set-order": "DET005"}

#: Fully-qualified call targets that are result-affecting sinks.
SINK_FUNCTIONS = {
    "repro.obs.report.summary_hash": "summary_hash (report result hash)",
    "repro.core.tracestore.save_trace": "save_trace (trace encoding)",
}

#: Method-call tails that are result-affecting sinks wherever they
#: resolve (metric mutation, trace recording, ledger completion).
SINK_METHODS = {
    "summary_hash": "summary_hash (report result hash)",
    "save_trace": "save_trace (trace encoding)",
    "record": "record (trace recording)",
    "inc": "inc (metric counter)",
    "observe": "observe (metric histogram)",
    "complete": "complete (ledger record)",
}

#: pid-style sources beyond the DET catalogs.
_PID_SOURCES = {"os.getpid", "os.getppid", "threading.get_ident",
                "threading.get_native_id"}

_ENV_CALLS = {"os.getenv", "os.environ.get", "os.environ.items",
              "os.environ.keys"}

#: Container-mutator method names: calling one with a tainted argument
#: taints the receiver (the container now *contains* the taint).
_CONTAINER_MUT = {"append", "appendleft", "add", "insert", "extend",
                  "update", "setdefault", "push"}


def _is_set_expr(node, set_names):
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


class _FunctionTaint:
    """Extract one function's taint facts: sources, calls, sinks, return.

    Tokens are JSON-able: ``["s", i]`` (source i), ``["p", j]`` (parameter
    j), ``["c", k]`` (the return value of call k).
    """

    def __init__(self, model, resolver, class_name):
        self.model = model
        self.resolver = resolver
        self.class_name = class_name
        self.env = {}          # name -> frozenset of token tuples
        self.set_names = set()
        self.sources = []
        self.calls = []
        self.sinks = []
        self.ret = set()

    # -- bookkeeping -------------------------------------------------------

    def _source(self, kind, line, label):
        det = _SOURCE_DET.get(kind)
        allowed = {RULE_ID, "*"}
        if det:
            allowed.add(det)
        suppressed = any(
            self.model.suppressions.get(ln, set()) & allowed
            for ln in (line, line - 1))
        idx = len(self.sources)
        self.sources.append({"kind": kind, "line": line, "label": label,
                             "suppressed": suppressed})
        return frozenset({("s", idx)})

    def _record_call(self, target, line, arg_tokens, extra_tokens):
        idx = len(self.calls)
        self.calls.append({
            "target": target or "",
            "line": line,
            "args": [sorted(map(list, toks)) for toks in arg_tokens],
            "extra": sorted(map(list, extra_tokens)),
        })
        return frozenset({("c", idx)})

    def _record_sink(self, name, line, tokens):
        self.sinks.append({"name": name, "line": line,
                           "content": self.model.line_content(line),
                           "tokens": sorted(map(list, tokens))})

    # -- expression walk ---------------------------------------------------

    def tokens(self, node):  # noqa: C901 -- one dispatch table, kept flat
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return frozenset()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Call):
            return self._call_tokens(node)
        if isinstance(node, ast.Attribute):
            chain = dotted_chain(node)
            if chain is not None:
                resolved = self._resolve_chain(chain)
                if resolved == "os.environ":
                    return self._source("env", node.lineno, chain)
            return self.tokens(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return self._comp_tokens(node)
        if isinstance(node, ast.IfExp):
            return (self.tokens(node.test) | self.tokens(node.body)
                    | self.tokens(node.orelse))
        if isinstance(node, ast.NamedExpr):
            toks = self.tokens(node.value)
            if isinstance(node.target, ast.Name):
                self._assign_name(node.target.id, toks)
            return toks
        out = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.tokens(child)
        return out

    def _resolve_chain(self, chain):
        if chain is None:
            return None
        root, _, rest = chain.partition(".")
        if root in self.env:
            return None  # shadowed by a local binding
        target = self.resolver.imports.get(root)
        if target is None:
            if root in self.resolver.local_defs:
                return f"{self.resolver.module}.{chain}"
            return chain
        resolved = resolve_relative(target, self.resolver.package)
        return f"{resolved}.{rest}" if rest else resolved

    def _source_for_call(self, node, resolved):
        """A source token set if this call reads a nondeterminism source."""
        if resolved is None:
            return None
        if resolved in rules_det.WALL_CLOCKS:
            return self._source("wall-clock", node.lineno, resolved)
        if resolved in _PID_SOURCES:
            return self._source("pid", node.lineno, resolved)
        if resolved in _ENV_CALLS or resolved == "os.environ":
            return self._source("env", node.lineno, resolved)
        if (resolved in rules_det.ENTROPY
                or resolved.split(".")[0] in rules_det.ENTROPY_MODULES):
            return self._source("entropy", node.lineno, resolved)
        if resolved in ("random.Random", "numpy.random.default_rng"):
            if not node.args and not node.keywords:
                return self._source("rng", node.lineno, resolved)
            return frozenset()  # seeded: deterministic
        if resolved in rules_det.RANDOM_OK:
            return frozenset()
        if resolved.startswith("random.") and resolved.count(".") == 1:
            return self._source("rng", node.lineno, resolved)
        return None

    def _call_tokens(self, node):
        arg_tokens = [self.tokens(a) for a in node.args]
        extra = frozenset()
        for kw in node.keywords:
            extra |= self.tokens(kw.value)

        func = node.func
        chain = dotted_chain(func)
        resolved = None
        if isinstance(func, ast.Name):
            if func.id == "sorted" and arg_tokens:
                # sorted() re-imposes a deterministic order: strip
                # set-order taint, pass every other kind through.
                kept = {tok for tok in arg_tokens[0]
                        if not (tok[0] == "s" and self.sources[tok[1]]
                                ["kind"] == "set-order")}
                for toks in arg_tokens[1:]:
                    kept |= toks
                return frozenset(kept) | extra
            resolved = self._resolve_chain(func.id)
        elif chain is not None:
            if chain.startswith("self.") and self.class_name:
                resolved = (f"{self.resolver.module}.{self.class_name}."
                            f"{chain.split('.', 1)[1]}")
            else:
                resolved = self._resolve_chain(chain)

        src = self._source_for_call(node, resolved)
        if src is not None:
            return src | extra

        # Materializing a set feeds hash order into a sequence (DET005's
        # flow form).
        if isinstance(func, ast.Name) and func.id in ("list", "tuple") \
                and node.args and _is_set_expr(node.args[0], self.set_names):
            arg_tokens[0] = arg_tokens[0] | self._source(
                "set-order", node.lineno, f"{func.id}(set)")

        # Mutating a named container with tainted arguments taints the
        # container (rows.append(t); save_trace(rows) must flow).
        if isinstance(func, ast.Attribute) and func.attr in _CONTAINER_MUT \
                and isinstance(func.value, ast.Name):
            poured = frozenset().union(frozenset(), *arg_tokens) | extra
            if poured:
                self._assign_name(func.value.id, poured)

        # Sink?
        sink_name = None
        if resolved in SINK_FUNCTIONS:
            sink_name = SINK_FUNCTIONS[resolved]
        elif isinstance(func, ast.Attribute) and func.attr in SINK_METHODS:
            sink_name = SINK_METHODS[func.attr]
        if sink_name is not None:
            all_tokens = frozenset().union(frozenset(), *arg_tokens) | extra
            self._record_sink(sink_name, node.lineno, all_tokens)

        # Record the call for interprocedural propagation.  Unresolvable
        # targets ("" or a method on an unknown receiver) become
        # passthroughs / dynamic fans in the solver; container-method
        # names (DYN_NOISE) stay passthroughs -- ``.get()`` on a dict must
        # not fan to every analyzed ``get`` method.
        target = resolved or ""
        if not target and isinstance(func, ast.Attribute) \
                and func.attr not in effects.DYN_NOISE \
                and not func.attr.startswith("__"):
            target = DYN_PREFIX + func.attr
        return self._record_call(target, node.lineno, arg_tokens, extra)

    def _comp_tokens(self, node):
        saved = dict(self.env)
        out = frozenset()
        for gen in node.generators:
            iter_toks = self.tokens(gen.iter)
            if _is_set_expr(gen.iter, self.set_names):
                iter_toks |= self._source("set-order", node.lineno,
                                          "set iteration")
            for name in _names_of(gen.target):
                self.env[name] = iter_toks
            for cond in gen.ifs:
                out |= self.tokens(cond)
        if isinstance(node, ast.DictComp):
            out |= self.tokens(node.key) | self.tokens(node.value)
        else:
            out |= self.tokens(node.elt)
        self.env = saved
        return out

    # -- statements --------------------------------------------------------

    def _assign_name(self, name, toks):
        # Union, never overwrite: a taint acquired on one branch survives
        # a clean rebinding on another (monotone over-approximation).
        self.env[name] = self.env.get(name, frozenset()) | toks

    def exec_stmt(self, stmt):  # noqa: C901 -- one dispatch table
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(stmt, "value", None)
            toks = self.tokens(value)
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if isinstance(target, ast.Name) and value is not None \
                        and _is_set_expr(value, self.set_names):
                    self.set_names.add(target.id)
                for name in _names_of(target):
                    self._assign_name(name, toks)
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name):
                    # d[k] = tainted taints the container d.
                    self._assign_name(target.value.id, toks)
            if isinstance(stmt, ast.AugAssign) \
                    and isinstance(stmt.target, ast.Name):
                self._assign_name(stmt.target.id, toks)
        elif isinstance(stmt, ast.Return):
            self.ret |= self.tokens(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.tokens(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_toks = self.tokens(stmt.iter)
            if _is_set_expr(stmt.iter, self.set_names):
                iter_toks |= self._source("set-order", stmt.iter.lineno,
                                          "set iteration")
            for name in _names_of(stmt.target):
                self._assign_name(name, iter_toks)
            for _ in range(2):
                for s in stmt.body:
                    self.exec_stmt(s)
            for s in stmt.orelse:
                self.exec_stmt(s)
        elif isinstance(stmt, ast.While):
            self.tokens(stmt.test)
            for _ in range(2):
                for s in stmt.body:
                    self.exec_stmt(s)
            for s in stmt.orelse:
                self.exec_stmt(s)
        elif isinstance(stmt, ast.If):
            self.tokens(stmt.test)
            for s in stmt.body:
                self.exec_stmt(s)
            for s in stmt.orelse:
                self.exec_stmt(s)
        elif isinstance(stmt, ast.Try):
            for s in stmt.body:
                self.exec_stmt(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self.exec_stmt(s)
            for s in stmt.orelse:
                self.exec_stmt(s)
            for s in stmt.finalbody:
                self.exec_stmt(s)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                toks = self.tokens(item.context_expr)
                if item.optional_vars is not None:
                    for name in _names_of(item.optional_vars):
                        self._assign_name(name, toks)
            for s in stmt.body:
                self.exec_stmt(s)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: its flows belong to its parent (closures run in
            # the parent's data space); walk with the shared env.
            for s in stmt.body:
                self.exec_stmt(s)
        elif isinstance(stmt, (ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.tokens(child)

    def run(self, func):
        params = [a.arg for a in (func.args.posonlyargs + func.args.args
                                  + func.args.kwonlyargs)]
        for j, name in enumerate(params):
            self.env[name] = frozenset({("p", j)})
        for _ in range(2):
            for stmt in func.body:
                self.exec_stmt(stmt)
        return params


def _names_of(target):
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _names_of(elt)
    elif isinstance(target, ast.Starred):
        yield from _names_of(target.value)


def collect_facts(model):
    """The file's taint fragment (picklable, JSON-able)."""
    resolver = Resolver(model)
    functions = {}
    for local_qual, func, class_name in iter_functions(model):
        try:
            ft = _FunctionTaint(model, resolver, class_name)
            params = ft.run(func)
            info = {
                "line": func.lineno,
                "method": class_name is not None,
                "n_params": len(params),
                "sources": ft.sources,
                "calls": ft.calls,
                "sinks": ft.sinks,
                "ret": sorted(map(list, ft.ret)),
            }
        except Exception as exc:  # noqa: BLE001 -- never fail the pass
            info = {"line": func.lineno, "method": class_name is not None,
                    "n_params": 0, "sources": [], "calls": [], "sinks": [],
                    "ret": [], "error": f"{type(exc).__name__}: {exc}"}
        functions[f"{model.module}.{local_qual}"] = info
    return {"module": model.module, "path": model.path,
            "functions": functions}


# -- project-level solving -------------------------------------------------


class _Solver:
    def __init__(self, tn_list):
        nodes = {}
        for facts in tn_list:
            for qual, info in facts["functions"].items():
                nodes[qual] = dict(info, path=facts["path"],
                                   module=facts["module"])
        self.graph = CallGraph(nodes)
        self.nodes = self.graph.nodes
        for info in self.nodes.values():
            for rec in info["calls"]:
                target = rec["target"]
                resolved = self.graph.resolve(target) if target else []
                if target.startswith(DYN_PREFIX):
                    # A dynamic fan means a *method* call on an unknown
                    # receiver: module-level functions sharing the name
                    # (repro.experiments.fig12.run) are not candidates.
                    resolved = [q for q in resolved
                                if self.nodes[q].get("method")]
                rec["_resolved"] = resolved
                rec["_args"] = [[tuple(t) for t in toks]
                                for toks in rec["args"]]
                rec["_extra"] = [tuple(t) for t in rec["extra"]]
        self.R = {}    # qual -> witness string (returns tainted)
        self.PR = {qual: set() for qual in self.nodes}
        self.PS = {qual: {} for qual in self.nodes}
        self._pf = {}  # qual -> {call token: param set}, post-PR
        self._wit = {}  # qual -> {call token: witness}, post-R

    # -- per-function local fixpoints --------------------------------------
    #
    # Within one function the token graph (calls referencing argument
    # tokens, which may reference other call tokens -- including cycles
    # through loop-carried variables) is solved to a local fixpoint.  The
    # global passes then only iterate over *functions*, which keeps the
    # whole solve linear-ish instead of re-walking token chains per query.

    def _shift(self, callee):
        return 1 if self.nodes[callee].get("method") else 0

    def _pf_map(self, qual):
        """``{call token: set of this function's param indices}``."""
        info = self.nodes[qual]
        pf = {}

        def tok_pf(tok):
            if tok[0] == "p":
                return {tok[1]}
            if tok[0] != "c":
                return set()
            return pf.get(tok, set())

        changed = True
        while changed:
            changed = False
            for k, rec in enumerate(info["calls"]):
                args, extra = rec["_args"], rec["_extra"]
                new = set(pf.get(("c", k), set()))
                callees = rec["_resolved"]
                if not callees:
                    # Passthrough: any argument may reach the result.
                    for toks in args + [extra]:
                        for tok in toks:
                            new |= tok_pf(tok)
                else:
                    for callee in callees:
                        shift = self._shift(callee)
                        prset = self.PR.get(callee, ())
                        for j in prset:
                            ai = j - shift
                            if 0 <= ai < len(args):
                                for tok in args[ai]:
                                    new |= tok_pf(tok)
                        if prset:
                            for tok in extra:
                                new |= tok_pf(tok)
                if new != pf.get(("c", k), set()):
                    pf[("c", k)] = new
                    changed = True
        return pf

    def _wit_map(self, qual):
        """``{call token: witness string}`` for tainted call results."""
        info = self.nodes[qual]
        wit = {}

        def tok_wit(tok):
            if tok[0] == "s":
                src = info["sources"][tok[1]]
                if src["suppressed"]:
                    return None
                return (f"{src['kind']} source ({src['label']}, "
                        f"line {src['line']})")
            if tok[0] != "c":
                return None
            return wit.get(tok)

        changed = True
        while changed:
            changed = False
            for k, rec in enumerate(info["calls"]):
                if ("c", k) in wit:
                    continue
                args, extra = rec["_args"], rec["_extra"]
                callees = rec["_resolved"]
                w = None
                if not callees:
                    for toks in args + [extra]:
                        for tok in toks:
                            w = w or tok_wit(tok)
                else:
                    for callee in callees:
                        if self.R.get(callee):
                            w = f"{callee}() -> {self.R[callee]}"
                            break
                        shift = self._shift(callee)
                        prset = self.PR.get(callee, ())
                        for j in prset:
                            ai = j - shift
                            if 0 <= ai < len(args):
                                for tok in args[ai]:
                                    w = w or tok_wit(tok)
                        if prset:
                            for tok in extra:
                                w = w or tok_wit(tok)
                        if w:
                            break
                if w:
                    wit[("c", k)] = w
                    changed = True
        return wit

    def _token_witness(self, qual, tok):
        tok = tuple(tok)
        if tok[0] == "s":
            src = self.nodes[qual]["sources"][tok[1]]
            if src["suppressed"]:
                return None
            return (f"{src['kind']} source ({src['label']}, "
                    f"line {src['line']})")
        return self._wit[qual].get(tok)

    # -- global fixpoints --------------------------------------------------

    def solve(self):
        # PR: parameter -> return (independent of sources).
        changed = True
        while changed:
            changed = False
            for qual, info in self.nodes.items():
                pf = self._pf_map(qual)
                flow = set()
                for tok in info["ret"]:
                    tok = tuple(tok)
                    flow |= ({tok[1]} if tok[0] == "p"
                             else pf.get(tok, set()))
                if not flow <= self.PR[qual]:
                    self.PR[qual] |= flow
                    changed = True
        self._pf = {qual: self._pf_map(qual) for qual in self.nodes}

        # R: returns-tainted, with witnesses (uses PR).
        changed = True
        while changed:
            changed = False
            for qual, info in self.nodes.items():
                if qual in self.R:
                    continue
                wit = self._wit_map(qual)
                for tok in info["ret"]:
                    tok = tuple(tok)
                    w = (wit.get(tok) if tok[0] == "c"
                         else self._source_witness(info, tok))
                    if w:
                        self.R[qual] = w
                        changed = True
                        break
        self._wit = {qual: self._wit_map(qual) for qual in self.nodes}

        # PS: parameter -> sink (uses the stable pf maps).
        changed = True
        while changed:
            changed = False
            for qual, info in self.nodes.items():
                pf = self._pf[qual]

                def flow_of(tok, _pf=pf):
                    tok = tuple(tok)
                    return ({tok[1]} if tok[0] == "p"
                            else _pf.get(tok, set()))

                for sink in info["sinks"]:
                    for tok in sink["tokens"]:
                        for j in flow_of(tok):
                            slot = self.PS[qual].setdefault(j, set())
                            if sink["name"] not in slot:
                                slot.add(sink["name"])
                                changed = True
                for rec in info["calls"]:
                    args, extra = rec["_args"], rec["_extra"]
                    for callee in rec["_resolved"]:
                        shift = self._shift(callee)
                        for j, names in self.PS.get(callee, {}).items():
                            ai = j - shift
                            toks = (args[ai]
                                    if 0 <= ai < len(args) else extra)
                            for tok in toks:
                                for i in flow_of(tok):
                                    slot = self.PS[qual].setdefault(
                                        i, set())
                                    if not names <= slot:
                                        slot |= names
                                        changed = True
        return self

    @staticmethod
    def _source_witness(info, tok):
        if tok[0] != "s":
            return None
        src = info["sources"][tok[1]]
        if src["suppressed"]:
            return None
        return f"{src['kind']} source ({src['label']}, line {src['line']})"

    # -- findings ----------------------------------------------------------

    def findings(self):
        out = []
        seen = set()

        def emit(path, line, content, sink_name, w):
            key = (path, line, sink_name)
            if key in seen:
                return
            seen.add(key)
            out.append(Finding(
                rule=RULE_ID, path=path, line=line, col=0,
                message=(f"nondeterministic value reaches {sink_name}: "
                         f"{w}; break the flow, seed/monotonic-ize the "
                         "source, or add '# repro: allow[TNT001] "
                         "<reason>' at the source or sink"),
                content=content))

        for qual, info in sorted(self.nodes.items()):
            for sink in info["sinks"]:
                for tok in sink["tokens"]:
                    w = self._token_witness(qual, tok)
                    if w:
                        emit(info["path"], sink["line"], sink["content"],
                             sink["name"], w)
                        break
            for rec in info["calls"]:
                args, extra = rec["_args"], rec["_extra"]
                for callee in rec["_resolved"]:
                    shift = self._shift(callee)
                    for j, names in self.PS.get(callee, {}).items():
                        ai = j - shift
                        toks = (args[ai]
                                if 0 <= ai < len(args) else extra)
                        for tok in toks:
                            w = self._token_witness(qual, tok)
                            if w:
                                name = sorted(names)[0]
                                emit(info["path"], rec["line"],
                                     "", f"{name} via {callee}()", w)
                                break
        out.sort(key=lambda f: f.sort_key())
        return out


def solve(tn_list):
    """Run the interprocedural taint solve; returns sorted findings."""
    return _Solver(tn_list).solve().findings()


class TaintFlowRule:
    """TNT001 -- a project rule over the per-file taint fragments."""

    id = RULE_ID
    title = "nondeterministic source flows to a result-affecting sink"
    facts_key = "tn"

    def check_project(self, tn_list):
        return solve(tn_list)


PROJECT_RULES = [TaintFlowRule()]
