"""Per-function effect summaries over oracle-visible simulator state.

The replay kernels are only trustworthy because they mutate *exactly* the
state the scalar oracle mutates (PR 6/7's bit-identity suite proves it at
runtime, query by query).  This module proves a necessary condition
statically: it extracts, for every function in the tree, which **atoms**
of oracle state the function may read or write, propagates the summaries
bottom-up through the call graph (fixpoint over cycles), and lets the
kernel state-equivalence rule diff the scalar engine's transitive
summary against the fast paths'.

Atoms name the machine state the paper's numbers depend on::

    stats.<counter>      MachineStats slots (l1_reads, l2_read_misses...)
    cpu.<slot>           CpuStats slots (busy, msync, mem_by_class...)
    l1.sets/seen/inv     L1 tag state (per-set LRU lists, footprint sets)
    l2.sets/seen/inv     L2 tag state
    cache.sets/...       a Cache whose level could not be determined
    wb.entries/completion/stall_cycles    write-buffer state
    dir.sharers/dirty    directory state
    machine.pending/port machine-level fill/port bookkeeping
    mirror.tags          the numpy L1 tag mirror -- kernel-private, exempt

Ops distinguish *how* state moves: container-method names (``append``,
``insert``, ``remove``, ``pop``, ``popleft``, ``add``, ``discard``,
``clear``, ``setdefault``, ``update``, ``extend``, ``appendleft``,
``popitem``), ``setitem``/``delitem`` for subscripts, and ``store`` for
attribute stores.  The (atom, op) pair is the diff granularity: PR 7's
unsound victim probe *appended* to an L2 set -- an op the scalar oracle
never performs on ``l2.sets`` (it only front-inserts, removes and pops),
so the probe diffs even though the atom itself is shared.

Tracking is a small abstract interpreter per function body: parameters
named/typed as machine objects seed abstract values, and assignments,
tuple packing/unpacking (the kernels' per-CPU context tuples), list
comprehensions, bound-method aliases and branch merges propagate them.
Unknown receivers *under*-approximate writes (we never claim a write we
cannot see) but *over*-approximate calls: a method call on an unknown
receiver fans out to every same-named class method in the tree (see
:mod:`repro.analysis.callgraph`), so a dynamically-dispatched helper's
effects still reach its callers' summaries.
"""

import ast
import os

from repro.analysis.callgraph import DYN_PREFIX, CallGraph, Resolver, \
    iter_functions
from repro.analysis.model import Finding, dotted_chain

#: Atom prefixes that are kernel-private by design: fast paths own them,
#: the scalar oracle never sees them, equivalence rules skip them.
KERNEL_PRIVATE = ("mirror.",)

#: Container methods that mutate their receiver (the op name is the
#: method name).
MUTATORS = {"append", "appendleft", "add", "insert", "remove", "discard",
            "pop", "popleft", "popitem", "clear", "update", "setdefault",
            "extend"}

#: Mutators that also *return* an element of the receiver, so the result
#: keeps the receiver's atom (``holders = sharers.setdefault(k, set())``).
_ELEMENT_RETURNING = {"get", "setdefault", "pop", "popleft", "popitem"}

#: Method names that never resolve to user code worth fanning out to.
#: Method names too common to dynamic-dispatch on: a ``.get()`` or
#: ``.append()`` on an unknown receiver is a container operation, not a
#: call into analyzed code.  Public: the taint engine shares the list.
DYN_NOISE = MUTATORS | {
    "get", "keys", "values", "items", "copy", "count", "index", "sort",
    "join", "split", "strip", "format", "encode", "decode", "startswith",
    "endswith", "read", "write", "flush", "close", "bit_length",
}
_DYN_NOISE = DYN_NOISE

_STATS_FIELDS = ("l1_reads", "l1_writes", "l2_reads", "l1_read_misses",
                 "l2_read_misses", "l1_write_misses", "l2_write_misses",
                 "prefetches_issued", "prefetch_late_cycles")
_CPU_FIELDS = ("busy", "msync", "mem_by_class", "finish_time", "events")


def _cache_attrs(prefix):
    return {
        "_sets": ("lst", ("st", f"{prefix}.sets")),
        "_seen": ("st", f"{prefix}.seen"),
        "_invalidated": ("st", f"{prefix}.inv"),
        "size": None, "line_size": None, "line_shift": None,
        "assoc": None, "n_sets": None, "_set_mask": None, "name": None,
    }


#: Abstract object kinds: per-kind attribute map, class name for method
#: fallback, and (for Cache kinds) the atom prefix its methods bind to.
#: ``@cache`` is the parametric prefix used inside ``Cache`` methods; call
#: edges substitute it with the receiver's level (l1/l2) at propagation.
_OBJ_SPEC = {
    "machine": {
        "class": "NumaMachine",
        "attrs": {
            "stats": ("obj", "stats"),
            "l1": ("lst", ("obj", "l1cache")),
            "l2": ("lst", ("obj", "l2cache")),
            "wb": ("lst", ("obj", "wb")),
            "directory": ("obj", "dir"),
            "_l1_sets": ("lst", ("lst", ("st", "l1.sets"))),
            "_l2_sets": ("lst", ("lst", ("st", "l2.sets"))),
            "_l1_tags": ("st", "mirror.tags"),
            "_pending_fill": ("st", "machine.pending"),
            "_port_free": ("st", "machine.port"),
            "config": None, "home_fn": None,
            "_l1_shift": None, "_l2_shift": None, "_ratio_shift": None,
            "_l1_mask": None, "_l2_mask": None, "_l1_nsets": None,
            "_wb_retire": None, "_prefetch_data": None,
            "lat_l2": None, "lat_local": None, "lat_2hop": None,
            "lat_3hop": None,
        },
    },
    "stats": {
        "class": "MachineStats",
        "attrs": {f: ("st", f"stats.{f}") for f in _STATS_FIELDS},
    },
    "cpu": {
        "class": "CpuStats",
        "attrs": {f: ("st", f"cpu.{f}") for f in _CPU_FIELDS},
    },
    "l1cache": {"class": "Cache", "prefix": "l1",
                "attrs": _cache_attrs("l1")},
    "l2cache": {"class": "Cache", "prefix": "l2",
                "attrs": _cache_attrs("l2")},
    "cache_self": {"class": "Cache", "prefix": "@cache",
                   "attrs": _cache_attrs("@cache")},
    "wb": {
        "class": "WriteBuffer",
        "attrs": {"entries": ("st", "wb.entries"),
                  "_last_completion": ("st", "wb.completion"),
                  "stall_cycles": ("st", "wb.stall_cycles"),
                  "capacity": None},
    },
    "dir": {
        "class": "Directory",
        "attrs": {"_sharers": ("st", "dir.sharers"),
                  "_dirty": ("st", "dir.dirty"),
                  "n_nodes": None},
    },
    "interleaver": {
        "class": "Interleaver",
        "attrs": {"machine": ("obj", "machine"), "spin_interval": None},
    },
    "runresult": {
        "class": "RunResult",
        "attrs": {"machine": ("obj", "machine"),
                  "cpu_stats": ("lst", ("obj", "cpu"))},
    },
}

#: ``self`` inside these classes is the given abstract object.
_CLASS_SELF = {spec["class"]: kind for kind, spec in _OBJ_SPEC.items()}

#: Instantiating these classes yields the given abstract object.
_CLASS_INSTANCE = {"NumaMachine": "machine", "MachineStats": "stats",
                   "CpuStats": "cpu", "WriteBuffer": "wb",
                   "Directory": "dir", "Interleaver": "interleaver",
                   "RunResult": "runresult"}

#: Parameters seeding abstract values by name (module-level helpers that
#: take the machine explicitly, e.g. the batch/horizon planners).
_PARAM_SEEDS = {"machine": ("obj", "machine")}


def _merge_av(a, b):
    """Join two abstract values from merging branches.

    Prefers the known side (``x if cond else None`` keeps ``x``'s value);
    conflicting known values fall to unknown -- the extractor never
    over-claims a write.
    """
    if a == b:
        return a
    if a is None:
        return b
    if b is None:
        return a
    if (isinstance(a, tuple) and isinstance(b, tuple)
            and a[0] == b[0] == "tup" and len(a[1]) == len(b[1])):
        return ("tup", tuple(_merge_av(x, y) for x, y in zip(a[1], b[1])))
    if (isinstance(a, tuple) and isinstance(b, tuple)
            and a[0] == b[0] == "lst"):
        return ("lst", _merge_av(a[1], b[1]))
    return None


class _FunctionExtractor:
    """One function body's abstract walk: effects, calls, reads."""

    def __init__(self, model, resolver, class_name):
        self.model = model
        self.resolver = resolver
        self.class_name = class_name
        self.env = {}
        self.writes = {}   # (atom, op, line) -> (content, covered)
        self.reads = {}    # atom -> first line
        self.calls = {}    # (target, prefix, line) kept insertion-ordered

    # -- recording ---------------------------------------------------------

    def _write(self, atom, op, line):
        key = (atom, op, line)
        if key not in self.writes:
            self.writes[key] = (self.model.line_content(line),
                                self.model.is_covered(line, atom, op))

    def _read(self, atom, line):
        self.reads.setdefault(atom, line)

    def _call(self, target, prefix, line):
        self.calls.setdefault((target, prefix or "", line), None)

    # -- abstract evaluation ----------------------------------------------

    def eval(self, node):  # noqa: C901 -- one dispatch table, kept flat
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Tuple):
            return ("tup", tuple(self.eval(e) for e in node.elts))
        if isinstance(node, ast.List):
            elem = None
            for e in node.elts:
                elem = _merge_av(elem, self.eval(e))
            return ("lst", elem)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return _merge_av(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.BinOp):
            left, right = self.eval(node.left), self.eval(node.right)
            if (isinstance(node.op, ast.Add)
                    and isinstance(left, tuple) and isinstance(right, tuple)
                    and left[0] == right[0] == "tup"):
                return ("tup", left[1] + right[1])
            return None
        if isinstance(node, ast.BoolOp):
            out = None
            for v in node.values:
                out = _merge_av(out, self.eval(v))
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp(node)
        if isinstance(node, ast.DictComp):
            self._eval_comp(node)
            return None
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = value
            return value
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for c in node.comparators:
                self.eval(c)
            return None
        if isinstance(node, (ast.UnaryOp,)):
            self.eval(node.operand)
            return None
        if isinstance(node, ast.Lambda):
            return None
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                self.eval(v)
            return None
        if isinstance(node, ast.FormattedValue):
            self.eval(node.value)
            return None
        if isinstance(node, (ast.Dict, ast.Set)):
            for child in ast.iter_child_nodes(node):
                self.eval(child)
            return None
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                self.eval(part)
            return None
        return None

    def _state_of(self, av, line):
        """Record a read and return the atom if ``av`` is oracle state."""
        if isinstance(av, tuple) and av[0] == "st":
            self._read(av[1], line)
            return av[1]
        return None

    def _eval_attribute(self, node):
        base = self.eval(node.value)
        if isinstance(base, tuple) and base[0] == "obj":
            spec = _OBJ_SPEC[base[1]]
            attrs = spec.get("attrs", {})
            if node.attr in attrs:
                av = attrs[node.attr]
                self._state_of(av, node.lineno)
                return av
            cls = spec.get("class")
            if cls:
                return ("fn", f"{cls}.{node.attr}", spec.get("prefix"))
            return None
        if isinstance(base, tuple) and base[0] == "st":
            # A container method pulled off oracle state without being
            # called yet: a bound mutator/reader alias (wb_pop/wb_app).
            return ("bm", base[1], node.attr)
        return None

    def _eval_subscript(self, node):
        base = self.eval(node.value)
        self.eval(node.slice)
        if isinstance(base, tuple):
            if base[0] == "lst":
                if isinstance(base[1], tuple) and base[1][0] == "st":
                    self._state_of(base[1], node.lineno)
                return base[1]
            if base[0] == "st":
                # Indexing into oracle state yields oracle state (grid
                # rows, per-set ways lists, directory values).
                self._state_of(base, node.lineno)
                return base
            if base[0] == "tup" and isinstance(node.slice, ast.Constant) \
                    and isinstance(node.slice.value, int):
                idx = node.slice.value
                if 0 <= idx < len(base[1]):
                    return base[1][idx]
        return None

    def _eval_comp(self, node):
        saved = dict(self.env)
        for gen in node.generators:
            elem = self._iter_elem(self.eval(gen.iter))
            self._bind(gen.target, elem)
            for cond in gen.ifs:
                self.eval(cond)
        if isinstance(node, ast.DictComp):
            self.eval(node.key)
            result = None
            self.eval(node.value)
        else:
            result = ("lst", self.eval(node.elt))
        self.env = saved
        return result

    def _iter_elem(self, av):
        if isinstance(av, tuple):
            if av[0] == "lst":
                return av[1]
            if av[0] == "st":
                return av
        return None

    def _eval_call(self, node):
        for arg in node.args:
            self.eval(arg)
        for kw in node.keywords:
            self.eval(kw.value)
        func = node.func
        if isinstance(func, ast.Name):
            return self._call_name(node, func)
        if isinstance(func, ast.Attribute):
            return self._call_attribute(node, func)
        # Calling the result of an expression (ctx[3](), chained calls):
        # dispatch on the callee's abstract value.
        callee = self.eval(func)
        return self._call_av(node, callee)

    def _call_av(self, node, callee):
        if isinstance(callee, tuple):
            if callee[0] == "bm":
                return self._method_effect(callee[1], callee[2],
                                           node.lineno)
            if callee[0] == "fn":
                self._call(callee[1], callee[2], node.lineno)
                return None
        return None

    def _call_name(self, node, func):
        av = self.env.get(func.id)
        if av is not None:
            return self._call_av(node, av)
        qualified = self.resolver.qualify(func.id)
        tail = (qualified or func.id).rsplit(".", 1)[-1]
        if tail in _CLASS_INSTANCE:
            return ("obj", _CLASS_INSTANCE[tail])
        if qualified is not None:
            self._call(qualified, None, node.lineno)
        return None

    def _call_attribute(self, node, func):
        chain = dotted_chain(func)
        if chain is not None and not chain.startswith("self."):
            root = chain.partition(".")[0]
            if root not in self.env:
                qualified = self.resolver.qualify(chain)
                if qualified is not None:
                    tail = qualified.rsplit(".", 1)[-1]
                    if tail in _CLASS_INSTANCE:
                        return ("obj", _CLASS_INSTANCE[tail])
                    self._call(qualified, None, node.lineno)
                    return None
        base = self.eval(func.value)
        if isinstance(base, tuple) and base[0] == "st":
            return self._method_effect(base[1], func.attr, node.lineno)
        if isinstance(base, tuple) and base[0] == "obj":
            spec = _OBJ_SPEC[base[1]]
            attrs = spec.get("attrs", {})
            if func.attr in attrs:
                av = attrs[func.attr]
                if isinstance(av, tuple) and av[0] == "st":
                    return self._method_effect(av[1], func.attr,
                                               node.lineno)
                return None
            cls = spec.get("class")
            if cls:
                self._call(f"{cls}.{func.attr}", spec.get("prefix"),
                           node.lineno)
            return None
        if isinstance(base, tuple) and base[0] == "lst" \
                and func.attr == "append" and isinstance(func.value,
                                                         ast.Name):
            # Accumulator refinement: appending to a tracked local list
            # widens its element value (the kernels' ctxs pattern).
            arg = self.eval(node.args[0]) if node.args else None
            self.env[func.value.id] = ("lst", _merge_av(base[1], arg))
            return None
        if base is None and func.attr not in _DYN_NOISE \
                and not func.attr.startswith("__"):
            # Unknown receiver: over-approximate via dynamic dispatch.
            self._call(DYN_PREFIX + func.attr, None, node.lineno)
        return None

    def _method_effect(self, atom, method, line):
        if method in MUTATORS:
            self._write(atom, method, line)
            if method in _ELEMENT_RETURNING:
                return ("st", atom)
            return None
        if method in _ELEMENT_RETURNING:
            return ("st", atom)
        return None

    # -- statements --------------------------------------------------------

    def _bind(self, target, av):
        if isinstance(target, ast.Name):
            self.env[target.id] = av
        elif isinstance(target, (ast.Tuple, ast.List)):
            avs = av[1] if (isinstance(av, tuple) and av[0] == "tup"
                            and len(av[1]) == len(target.elts)) else None
            for i, elt in enumerate(target.elts):
                self._bind(elt, avs[i] if avs else None)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._store(target)

    def _store(self, target):
        """A subscript/attribute store target: record the write."""
        if isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            self.eval(target.slice)
            atom = None
            if isinstance(base, tuple):
                if base[0] == "st":
                    atom = base[1]
                elif base[0] == "lst" and isinstance(base[1], tuple) \
                        and base[1][0] == "st":
                    # Storing into a list-of-state slot replaces a state
                    # container wholesale; count it against the atom.
                    atom = base[1][1]
            if atom:
                self._write(atom, "setitem", target.lineno)
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value)
            if isinstance(base, tuple) and base[0] == "obj":
                av = _OBJ_SPEC[base[1]].get("attrs", {}).get(target.attr)
                if isinstance(av, tuple) and av[0] == "st":
                    self._write(av[1], "store", target.lineno)
                elif av is not None:
                    # Rebinding a structural attribute (machine.stats = ...)
                    self._write(f"{base[1]}.{target.attr}", "store",
                                target.lineno)
            elif isinstance(base, tuple) and base[0] == "st":
                self._write(base[1], "store", target.lineno)

    def exec_stmt(self, stmt):  # noqa: C901 -- one dispatch table
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            value = self.eval(stmt.value) if stmt.value else None
            self._bind(stmt.target, value)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
            if isinstance(stmt.target, (ast.Subscript, ast.Attribute)):
                self._store(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    base = self.eval(target.value)
                    self.eval(target.slice)
                    if isinstance(base, tuple) and base[0] == "st":
                        self._write(base[1], "delitem", target.lineno)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            elem = self._iter_elem(self.eval(stmt.iter))
            self._bind(stmt.target, elem)
            # Two passes approximate the loop fixpoint: aliases defined
            # late in the body are visible on the second pass.
            for _ in range(2):
                for s in stmt.body:
                    self.exec_stmt(s)
            for s in stmt.orelse:
                self.exec_stmt(s)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            for _ in range(2):
                for s in stmt.body:
                    self.exec_stmt(s)
            for s in stmt.orelse:
                self.exec_stmt(s)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            before = dict(self.env)
            for s in stmt.body:
                self.exec_stmt(s)
            after_body = self.env
            self.env = dict(before)
            for s in stmt.orelse:
                self.exec_stmt(s)
            merged = {}
            for name in sorted(set(after_body) | set(self.env)):
                in_body = after_body.get(name, before.get(name))
                in_else = self.env.get(name, before.get(name))
                merged[name] = _merge_av(in_body, in_else)
            self.env = merged
        elif isinstance(stmt, ast.Try):
            for s in stmt.body:
                self.exec_stmt(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self.exec_stmt(s)
            for s in stmt.orelse:
                self.exec_stmt(s)
            for s in stmt.finalbody:
                self.exec_stmt(s)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None)
            for s in stmt.body:
                self.exec_stmt(s)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def's effects belong to its parent (same rule as
            # MP001): walk its body with a copy of the current env.
            saved = dict(self.env)
            for s in stmt.body:
                self.exec_stmt(s)
            self.env = saved
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def run(self, func):
        args = func.args
        for a in (args.posonlyargs + args.args + args.kwonlyargs):
            if a.arg == "self" and self.class_name in _CLASS_SELF:
                self.env[a.arg] = ("obj", _CLASS_SELF[self.class_name])
            elif a.arg in _PARAM_SEEDS:
                self.env[a.arg] = _PARAM_SEEDS[a.arg]
        # Two passes over the body: forward references through aliases
        # bound later (helper lambdas, late ctx construction) resolve on
        # the second pass; effect sites dedupe by (atom, op, line).
        for _ in range(2):
            for stmt in func.body:
                self.exec_stmt(stmt)


def collect_facts(model):
    """The file's effect-summary fragment (picklable, JSON-able)."""
    resolver = Resolver(model)
    functions = {}
    for local_qual, func, class_name in iter_functions(model):
        try:
            ex = _FunctionExtractor(model, resolver, class_name)
            ex.run(func)
            info = {
                "line": func.lineno,
                "writes": sorted(
                    [atom, op, line, content, covered]
                    for (atom, op, line), (content, covered)
                    in ex.writes.items()),
                "reads": sorted([atom, line]
                                for atom, line in ex.reads.items()),
                "calls": sorted([target, prefix, line]
                                for target, prefix, line in ex.calls),
            }
        except Exception as exc:  # noqa: BLE001 -- never fail the pass
            info = {"line": func.lineno, "writes": [], "reads": [],
                    "calls": [], "error": f"{type(exc).__name__}: {exc}"}
        functions[f"{model.module}.{local_qual}"] = info
    return {"module": model.module, "path": model.path,
            "functions": functions}


# -- project-level propagation --------------------------------------------

_SITE_CAP = 8


def _subst(atom, prefix):
    """Substitute the parametric ``@cache`` prefix at a call edge."""
    if atom.startswith("@cache."):
        return (prefix or "cache") + atom[len("@cache"):]
    return atom


def build_graph(fx_list):
    """Join per-file fragments into a :class:`CallGraph`."""
    nodes = {}
    for facts in fx_list:
        for qual, info in facts["functions"].items():
            nodes[qual] = dict(info, path=facts["path"],
                               module=facts["module"])
    return CallGraph(nodes)


def summarize(fx_list):
    """Transitive effect summaries: ``(summaries, graph)``.

    ``summaries[qual]["writes"]`` maps ``(atom, op)`` to a site list
    (``[path, line, content, covered]``, capped); ``["reads"]`` is the
    transitive atom set.  Bottom-up fixpoint over the call graph --
    cycles converge because summaries only grow.
    """
    graph = build_graph(fx_list)
    summaries = {}
    edges = {}
    for qual, info in graph.nodes.items():
        writes = {}
        for atom, op, line, content, covered in info.get("writes", ()):
            writes.setdefault((atom, op), []).append(
                [info["path"], line, content, covered])
        summaries[qual] = {
            "writes": writes,
            "reads": {atom for atom, _line in info.get("reads", ())},
        }
        out = []
        for target, prefix, _line in info.get("calls", ()):
            for callee in graph.resolve(target):
                if callee != qual:
                    out.append((callee, prefix))
        edges[qual] = sorted(set(out))

    order = sorted(summaries)
    changed = True
    while changed:
        changed = False
        for qual in order:
            summary = summaries[qual]
            for callee, prefix in edges[qual]:
                callee_summary = summaries[callee]
                for (atom, op), sites in callee_summary["writes"].items():
                    key = (_subst(atom, prefix), op)
                    slot = summary["writes"].setdefault(key, [])
                    for site in sites:
                        if site not in slot:
                            if len(slot) < _SITE_CAP:
                                slot.append(site)
                                changed = True
                for atom in callee_summary["reads"]:
                    atom = _subst(atom, prefix)
                    if atom not in summary["reads"]:
                        summary["reads"].add(atom)
                        changed = True
    return summaries, graph


def format_summaries(summaries, *, match=None, root=None):
    """Human-readable effect summaries for the ``effects`` CLI command."""
    lines = []
    for qual in sorted(summaries):
        if match and match not in qual:
            continue
        summary = summaries[qual]
        if not summary["writes"] and not summary["reads"]:
            continue
        lines.append(qual)
        for (atom, op), sites in sorted(summary["writes"].items()):
            site = sites[0]
            path = site[0]
            if root:
                try:
                    path = os.path.relpath(path, root)
                except ValueError:
                    pass
            suffix = " oracle-covered" if all(s[3] for s in sites) else ""
            lines.append(f"  W {atom}:{op}  ({len(sites)} site"
                         f"{'s' if len(sites) != 1 else ''}, e.g. "
                         f"{path}:{site[1]}){suffix}")
        reads = sorted(summary["reads"])
        if reads:
            lines.append(f"  R {', '.join(reads)}")
    return "\n".join(lines) if lines else "(no oracle-state effects)"


class KernelEquivalenceRule:
    """KRN001/KRN002 -- kernel state-equivalence vs the scalar oracle.

    KRN001
        A function in a *planner* module (``repro.memsim.batch``,
        ``repro.memsim.horizon``) transitively writes oracle state.
        Planners run at trace-combination time and are memoized across
        replays; a write would leak one replay's state into the next.
        Kernel-private atoms (the numpy tag mirror) are exempt.
    KRN002
        A fast-path engine's transitive write set contains an
        ``(atom, op)`` pair the scalar oracle's does not, and the
        mutation site carries no ``# repro: oracle-covered[...]``
        contract.  This is the static form of the bit-identity suite:
        PR 7's victim-only eviction probe (pop + *append* on an L2 way
        list, an op the oracle never performs) diffs here instead of
        surfacing as one wrong counter in Q1.
    """

    id = "KRN"
    title = "kernel state-equivalence vs the scalar oracle " \
            "(KRN001 planner purity, KRN002 fast-path divergence)"
    facts_key = "fx"

    def __init__(self, scalar_roots=("Interleaver._run_traces_scalar",),
                 fast_roots=(("batched", "Interleaver._run_traces_batched"),
                             ("horizon", "Interleaver._run_traces_horizon")),
                 planner_modules=("repro.memsim.batch",
                                  "repro.memsim.horizon"),
                 private_prefixes=KERNEL_PRIVATE):
        self.scalar_roots = scalar_roots
        self.fast_roots = fast_roots
        self.planner_modules = planner_modules
        self.private_prefixes = tuple(private_prefixes)

    def _private(self, atom):
        return atom.startswith(self.private_prefixes)

    def check_project(self, fx_list):
        summaries, graph = summarize(fx_list)
        out = []

        for qual, info in sorted(graph.nodes.items()):
            if info["module"] not in self.planner_modules:
                continue
            seen = set()
            for (atom, op), sites in sorted(
                    summaries[qual]["writes"].items()):
                if self._private(atom) or (atom, op) in seen:
                    continue
                seen.add((atom, op))
                path, line, content, _covered = sites[0]
                out.append(Finding(
                    rule="KRN001", path=path, line=line, col=0,
                    message=(f"planner function '{qual}' may mutate oracle "
                             f"state '{atom}' ({op}); planner results are "
                             "memoized across replays, so planners must "
                             "be pure readers of machine state"),
                    content=content))

        scalar_pairs = set()
        scalar_found = False
        for suffix in self.scalar_roots:
            for root in graph.roots_matching(suffix):
                scalar_found = True
                scalar_pairs.update(summaries[root]["writes"])
        if not scalar_found:
            return out

        for kernel, suffix in self.fast_roots:
            for root in graph.roots_matching(suffix):
                for (atom, op), sites in sorted(
                        summaries[root]["writes"].items()):
                    if (atom, op) in scalar_pairs or self._private(atom):
                        continue
                    for path, line, content, covered in sites:
                        if covered:
                            continue
                        out.append(Finding(
                            rule="KRN002", path=path, line=line, col=0,
                            message=(f"{kernel} fast path ('{root}') "
                                     f"mutates oracle state '{atom}' via "
                                     f"'{op}', which the scalar oracle "
                                     "never does; fall back to the scalar "
                                     "path there, or prove bit-identity "
                                     "and declare the contract with "
                                     f"'# repro: oracle-covered"
                                     f"[{atom}:{op}]'"),
                            content=content))
        return out


PROJECT_RULES = [KernelEquivalenceRule()]
