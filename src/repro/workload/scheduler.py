"""Session scheduler: hundreds of logical clients onto N simulated CPUs.

The paper's machine runs one database process per processor; a scenario
keeps that shape (one backend per CPU) and multiplexes its logical
clients onto the CPUs round-robin, in tenant declaration order.  The
resulting *canonical schedule* is the scenario's single source of truth:
a flat list of :class:`SessionOp` records sorted by
``(arrival, cpu, client, seq)``, which is both the order the recorder
executes operations in (so database mutations from UF1/UF2 are observed
identically everywhere) and the order idle gaps are derived from.

Fairness is by construction and pinned by tests: global round-robin
assignment means per-CPU client counts differ by at most one, and --
because each tenant's clients occupy a contiguous run of the global
client sequence -- the same holds per tenant per CPU.
"""

import zlib
from dataclasses import dataclass

from repro.workload.arrival import client_arrivals, client_ops
from repro.workload.spec import UPDATE_OPS


@dataclass(frozen=True)
class SessionOp:
    """One scheduled operation of one logical client.

    ``client`` is the global client index (stable across tenants);
    ``seq`` the operation's index within that client's session.
    ``op_seed`` parameterizes the operation deterministically: the TPC-D
    substitution parameters for a query, the batch content for UF1/UF2.
    """

    arrival: int
    cpu: int
    tenant: str
    client: int
    seq: int
    op: str
    op_seed: int

    @property
    def is_update(self):
        return self.op in UPDATE_OPS


def assign_clients(spec):
    """``[(tenant, global_client_index, cpu), ...]`` round-robin over CPUs."""
    out = []
    g = 0
    for tenant in spec.tenants:
        for _ in range(tenant.clients):
            out.append((tenant, g, g % spec.cpus))
            g += 1
    return out


def build_schedule(spec):
    """The canonical schedule: every operation of every client, sorted.

    Ties on ``arrival`` resolve by ``(cpu, client, seq)``, so the order is
    total and identical in every process that holds the same spec.
    """
    ops = []
    per_tenant_index = {}
    for tenant, client, cpu in assign_clients(spec):
        local = per_tenant_index.get(tenant.name, 0)
        per_tenant_index[tenant.name] = local + 1
        arrivals = client_arrivals(tenant, spec.seed, local)
        chosen = client_ops(tenant, spec.seed, local)
        for seq, (arrival, op) in enumerate(zip(arrivals, chosen)):
            token = f"{spec.seed}/{tenant.name}/{client}/{seq}/{op}"
            ops.append(SessionOp(
                arrival=arrival, cpu=cpu, tenant=tenant.name,
                client=client, seq=seq, op=op,
                op_seed=zlib.crc32(token.encode()) & 0xFFFFFFFF))
    ops.sort(key=lambda o: (o.arrival, o.cpu, o.client, o.seq))
    return ops


def schedule_digest(spec):
    """A stable fingerprint of the canonical schedule (determinism tests
    compare this across processes and backends)."""
    parts = [f"{o.arrival}:{o.cpu}:{o.tenant}:{o.client}:{o.seq}:"
             f"{o.op}:{o.op_seed}" for o in build_schedule(spec)]
    return zlib.crc32("|".join(parts).encode()) & 0xFFFFFFFF
