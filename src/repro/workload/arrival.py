"""Seeded arrival models: when each client issues each operation.

An arrival schedule is *nominal* time -- offsets in simulated cycles that
exist before any machine is chosen.  That is what keeps a scenario's
traces machine-independent (the property the whole trace/replay substrate
rests on, and the paper's own Mint-then-memory-model separation): the
generator fixes a canonical order and the idle gaps between operations;
the memory system resolves actual timing at replay.  Concretely:

``closed``
    A closed loop with ``think_time`` cycles between a client's
    operations: operation *k* arrives at ``k * think_time``.
``poisson``
    An open model: inter-arrival gaps drawn from an exponential
    distribution with mean ``mean_gap`` cycles, cumulated per client.
``trace``
    Trace-driven: the spec lists the exact offsets.

All draws come from ``random.Random`` seeded by a CRC of the scenario
seed, tenant name and client index, so the schedule is identical across
processes, platforms and backends -- the determinism the hypothesis tests
in ``tests/test_workload_sched.py`` pin.
"""

import random
import zlib


def client_seed(scenario_seed, tenant_name, client_index):
    """The per-client RNG seed: stable across processes and platforms."""
    token = f"{scenario_seed}/{tenant_name}/{client_index}"
    return zlib.crc32(token.encode()) & 0xFFFFFFFF


def client_arrivals(tenant, scenario_seed, client_index):
    """Arrival offsets (cycles) for one client's operations.

    Returns a nondecreasing list of ``tenant.ops_per_client`` integers.
    """
    n = tenant.ops_per_client
    if tenant.arrival == "closed":
        return [k * tenant.think_time for k in range(n)]
    if tenant.arrival == "trace":
        return list(tenant.arrivals)
    if tenant.arrival == "poisson":
        rng = random.Random(client_seed(scenario_seed, tenant.name,
                                        client_index))
        now = 0
        out = []
        for _ in range(n):
            now += int(rng.expovariate(1.0 / tenant.mean_gap))
            out.append(now)
        return out
    raise ValueError(f"unknown arrival model {tenant.arrival!r}")


def client_ops(tenant, scenario_seed, client_index):
    """The operation drawn for each slot of one client, from the mix.

    Weighted draws from the tenant's (sorted, frozen) mix with a seeded
    RNG; a single-entry mix short-circuits to a constant sequence.
    """
    ops = [op for op, _w in tenant.mix]
    if len(ops) == 1:
        return ops * tenant.ops_per_client
    weights = [w for _op, w in tenant.mix]
    rng = random.Random(client_seed(scenario_seed, tenant.name,
                                    client_index) ^ 0x5EED)
    return rng.choices(ops, weights=weights, k=tenant.ops_per_client)
