"""Declarative workload specifications: ``ScenarioSpec`` / ``TenantSpec``.

The paper ran four single-query streams -- one query type, one instance per
processor.  A *scenario* generalizes that workload to the shape a DSS
server actually faces: several tenants, each a population of logical
clients issuing a seeded mix of the 17 read-only TPC-D queries plus the
TPC-D update functions (UF1/UF2), under an open (Poisson or trace-driven)
or closed arrival model, multiplexed onto the N simulated processors.

A scenario is *data*: a frozen dataclass with a canonical JSON round-trip
(:meth:`ScenarioSpec.as_dict` / :meth:`ScenarioSpec.from_dict`), validated
eagerly like :class:`~repro.core.run.RunConfig`, and identified by a
content hash (:meth:`ScenarioSpec.spec_hash`) so the sweep engine, trace
store, checkpoint ledger and worker fabric consume it unchanged -- the
scenario's per-CPU event traces are stored and shipped under the qid
``scn:<hash>`` exactly like a query's (see :mod:`repro.workload.session`).

Spec files are schema-versioned (``SPEC_SCHEMA_VERSION``) with additive
evolution; ``python -m repro.workload validate <spec.json>`` checks a file
without running anything.  Committed examples live under ``examples/``.
"""

import hashlib
import json
from dataclasses import dataclass, field, fields

from repro.tpcd.queries import QUERY_IDS

#: Version stamp written into (and required of) every spec file.  Bump it
#: deliberately when the schema changes shape; additions of optional
#: fields with defaults do not need a bump.
SPEC_SCHEMA_VERSION = 1

#: The update functions of TPC-D, executable alongside the queries.
UPDATE_OPS = ("UF1", "UF2")

#: Everything a tenant mix may reference.
VALID_OPS = tuple(QUERY_IDS) + UPDATE_OPS

#: Supported arrival models (see :mod:`repro.workload.arrival`).
ARRIVAL_MODELS = ("closed", "poisson", "trace")


class SpecError(ValueError):
    """A workload spec failed validation."""


def _freeze_mix(mix):
    """Normalize a mix mapping/sequence into a sorted tuple of pairs."""
    if isinstance(mix, dict):
        items = mix.items()
    else:
        items = [tuple(entry) for entry in mix]
    return tuple(sorted((str(op), float(w)) for op, w in items))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a population of identical stochastic clients.

    ``mix`` maps operations (query ids, ``UF1``, ``UF2``) to positive
    weights; each client draws ``ops_per_client`` operations from it.
    ``arrival`` selects the model: ``closed`` clients issue operations
    back-to-back with ``think_time`` simulated cycles between them;
    ``poisson`` clients draw inter-arrival gaps from an exponential with
    mean ``mean_gap`` cycles; ``trace`` clients follow the explicit
    ``arrivals`` offsets (cycles, nondecreasing, one per operation).
    ``update_batch`` sizes UF1/UF2 batches (rows inserted / orders
    deleted per operation).
    """

    name: str
    clients: int
    mix: tuple = field(default_factory=tuple)
    arrival: str = "closed"
    think_time: int = 0
    mean_gap: float = 0.0
    ops_per_client: int = 1
    arrivals: tuple = field(default_factory=tuple)
    update_batch: int = 1

    def __post_init__(self):
        object.__setattr__(self, "mix", _freeze_mix(self.mix))
        object.__setattr__(self, "arrivals",
                           tuple(int(a) for a in self.arrivals))

    def validate(self):
        """Raise :class:`SpecError` on the first invalid field."""
        if not self.name or not isinstance(self.name, str):
            raise SpecError("tenant name must be a non-empty string")
        if not isinstance(self.clients, int) or self.clients < 1:
            raise SpecError(f"tenant {self.name!r}: clients must be a "
                            f"positive integer, got {self.clients!r}")
        if not self.mix:
            raise SpecError(f"tenant {self.name!r}: empty mix")
        for op, weight in self.mix:
            if op not in VALID_OPS:
                raise SpecError(
                    f"tenant {self.name!r}: unknown operation {op!r} "
                    f"(queries Q1..Q17 or update functions UF1/UF2)")
            if not weight > 0:
                raise SpecError(f"tenant {self.name!r}: weight for {op} "
                                f"must be positive, got {weight!r}")
        if self.arrival not in ARRIVAL_MODELS:
            raise SpecError(f"tenant {self.name!r}: unknown arrival model "
                            f"{self.arrival!r} (one of {ARRIVAL_MODELS})")
        if not isinstance(self.think_time, int) or self.think_time < 0:
            raise SpecError(f"tenant {self.name!r}: think_time must be a "
                            "non-negative integer (cycles)")
        if not isinstance(self.ops_per_client, int) or self.ops_per_client < 1:
            raise SpecError(f"tenant {self.name!r}: ops_per_client must be "
                            "a positive integer")
        if self.arrival == "poisson" and not self.mean_gap > 0:
            raise SpecError(f"tenant {self.name!r}: poisson arrivals need "
                            "mean_gap > 0 (cycles)")
        if self.arrival == "trace":
            if len(self.arrivals) != self.ops_per_client:
                raise SpecError(
                    f"tenant {self.name!r}: trace arrivals must list one "
                    f"offset per operation ({self.ops_per_client}), got "
                    f"{len(self.arrivals)}")
            if any(a < 0 for a in self.arrivals) or \
                    list(self.arrivals) != sorted(self.arrivals):
                raise SpecError(f"tenant {self.name!r}: trace arrivals must "
                                "be nondecreasing offsets >= 0")
        elif self.arrivals:
            raise SpecError(f"tenant {self.name!r}: arrivals are only "
                            "meaningful with arrival='trace'")
        if not isinstance(self.update_batch, int) or self.update_batch < 1:
            raise SpecError(f"tenant {self.name!r}: update_batch must be a "
                            "positive integer")

    def as_dict(self):
        return {
            "name": self.name,
            "clients": self.clients,
            "mix": {op: w for op, w in self.mix},
            "arrival": self.arrival,
            "think_time": self.think_time,
            "mean_gap": self.mean_gap,
            "ops_per_client": self.ops_per_client,
            "arrivals": list(self.arrivals),
            "update_batch": self.update_batch,
        }

    @classmethod
    def from_dict(cls, data):
        return _from_mapping(cls, data, "tenant")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative multi-tenant workload.

    ``cpus`` is the number of simulated processors the session scheduler
    maps clients onto (one backend per CPU, like the paper's one-process-
    per-processor setup); it must not exceed the machine's node count
    (``machine`` overrides, default 4).  ``seed`` drives every stochastic
    choice -- arrival gaps, mix draws, operation parameters -- so a spec
    is a complete, bit-reproducible description of the workload.
    ``machine`` holds :class:`~repro.memsim.numa.MachineConfig` overrides
    applied on top of the scale baseline, exactly like
    :class:`~repro.core.sweep.SweepPoint.machine`.
    """

    name: str
    tenants: tuple = field(default_factory=tuple)
    cpus: int = 4
    seed: int = 0
    machine: tuple = field(default_factory=tuple)
    schema_version: int = SPEC_SCHEMA_VERSION

    def __post_init__(self):
        tenants = tuple(
            t if isinstance(t, TenantSpec) else TenantSpec.from_dict(t)
            for t in self.tenants)
        object.__setattr__(self, "tenants", tenants)
        machine = self.machine
        if isinstance(machine, dict):
            machine = machine.items()
        object.__setattr__(self, "machine",
                           tuple(sorted((str(k), v) for k, v in machine)))

    def validate(self):
        """Raise :class:`SpecError` on the first invalid field; return self."""
        from repro.memsim.numa import MachineConfig

        if not self.name or not isinstance(self.name, str):
            raise SpecError("scenario name must be a non-empty string")
        if self.schema_version != SPEC_SCHEMA_VERSION:
            raise SpecError(
                f"spec schema version {self.schema_version!r} not supported "
                f"by this validator ({SPEC_SCHEMA_VERSION})")
        if not isinstance(self.cpus, int) or self.cpus < 1:
            raise SpecError(f"cpus must be a positive integer, "
                            f"got {self.cpus!r}")
        if not isinstance(self.seed, int):
            raise SpecError(f"seed must be an integer, got {self.seed!r}")
        known = set(MachineConfig.__dataclass_fields__)
        for key, _value in self.machine:
            if key not in known:
                raise SpecError(f"unknown machine override {key!r}")
        n_nodes = dict(self.machine).get("n_nodes", 4)
        if self.cpus > n_nodes:
            raise SpecError(f"cpus={self.cpus} exceeds the machine's "
                            f"{n_nodes} nodes")
        if not self.tenants:
            raise SpecError("a scenario needs at least one tenant")
        seen = set()
        for tenant in self.tenants:
            if tenant.name in seen:
                raise SpecError(f"duplicate tenant name {tenant.name!r}")
            seen.add(tenant.name)
            tenant.validate()
        return self

    # -- canonical serialization ------------------------------------------------

    def as_dict(self):
        """Plain-dict view; ``from_dict`` round-trips it exactly."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "cpus": self.cpus,
            "seed": self.seed,
            "machine": {k: v for k, v in self.machine},
            "tenants": [t.as_dict() for t in self.tenants],
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a spec from :meth:`as_dict` output (or a spec file's
        parsed JSON).  Unknown keys raise -- a validator that silently
        dropped a typoed field would defeat its purpose."""
        return _from_mapping(cls, data, "scenario")

    def to_json(self):
        """Canonical JSON: sorted keys, no whitespace -- the hash input."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def spec_hash(self):
        """Content identity: SHA-256 of the canonical JSON, 12 hex digits.

        Two specs with equal hashes describe byte-identical workloads;
        the hash names the scenario's traces in the trace store
        (``scn:<hash>``, see :mod:`repro.workload.session`).
        """
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:12]

    def total_clients(self):
        return sum(t.clients for t in self.tenants)


def _from_mapping(cls, data, what):
    if not isinstance(data, dict):
        raise SpecError(f"{what} spec must be a JSON object, "
                        f"got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(f"unknown {what} spec key(s) {unknown}; "
                        f"known keys: {sorted(known)}")
    try:
        return cls(**data)
    except TypeError as exc:
        raise SpecError(f"incomplete {what} spec: {exc}") from None


def load_spec(path):
    """Load and validate one scenario spec file; returns the spec."""
    with open(path, encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except ValueError as exc:
            raise SpecError(f"{path}: not valid JSON: {exc}") from exc
    spec = ScenarioSpec.from_dict(data)
    spec.validate()
    return spec
