"""Deterministic multi-tenant workload generation behind declarative specs.

``repro.workload`` turns a workload into *data*: a frozen, JSON-round-trip
:class:`ScenarioSpec` (tenants, query/update mixes, arrival models, think
times, client populations, CPUs) that the whole PR 1-8 substrate -- sweep
engine, trace store, checkpoint ledger, worker fabric -- consumes
unchanged, because a scenario's recorded per-CPU traces travel under an
ordinary trace identity (``scn:<spec-hash>``).

Typical use::

    from repro.workload import ScenarioSpec, TenantSpec, run_scenario

    spec = ScenarioSpec(name="mixed", cpus=4, tenants=(
        TenantSpec(name="readers", clients=12, mix={"Q6": 2, "Q3": 1},
                   think_time=500, ops_per_client=2),
        TenantSpec(name="writers", clients=4, mix={"UF1": 1, "UF2": 1},
                   arrival="poisson", mean_gap=2000.0),
    ))
    results = run_scenario(spec)

or, from the CLI, ``repro-experiments --scenario spec.json`` /
``python -m repro.workload validate spec.json``.  The ``mixed-rw``
experiment family (:mod:`repro.experiments.mixed_rw`) sweeps generated
specs over update fraction x client count x CPUs.
"""

from repro.workload.arrival import client_arrivals, client_ops
from repro.workload.scheduler import (
    SessionOp, assign_clients, build_schedule, schedule_digest,
)
from repro.workload.session import (
    clear_scenarios, is_scenario_qid, register_scenario, scenario_qid,
)
from repro.workload.spec import (
    ARRIVAL_MODELS, SPEC_SCHEMA_VERSION, UPDATE_OPS, VALID_OPS,
    ScenarioSpec, SpecError, TenantSpec, load_spec,
)

__all__ = [
    "ARRIVAL_MODELS",
    "SPEC_SCHEMA_VERSION",
    "UPDATE_OPS",
    "VALID_OPS",
    "ScenarioSpec",
    "SessionOp",
    "SpecError",
    "TenantSpec",
    "assign_clients",
    "build_schedule",
    "client_arrivals",
    "client_ops",
    "clear_scenarios",
    "is_scenario_qid",
    "load_spec",
    "register_scenario",
    "run_scenario",
    "scenario_qid",
    "scenario_report",
    "schedule_digest",
]


def run_scenario(spec, scale="small", jobs=None, config=None):
    """Run one scenario through the sweep engine; return its results dict.

    The spec becomes a single :class:`~repro.core.sweep.SweepPoint`
    (qid ``scn:<hash>``, the spec's machine overrides, one trace per CPU),
    so every execution path -- in-process, ``--jobs N`` pool, the workers
    backend, checkpoint resume -- behaves exactly as it does for query
    sweeps, bit-identically.
    """
    from repro.core.sweep import SweepPoint, run_sweep

    qid = register_scenario(spec)
    point = SweepPoint(key=spec.name, qid=qid, machine=dict(spec.machine),
                       n_procs=spec.cpus)
    out = run_sweep([point], scale=scale, jobs=jobs, config=config)
    return {
        "name": spec.name,
        "qid": qid,
        "spec": spec.as_dict(),
        "summary": out[spec.name],
    }


def scenario_report(results):
    """Render one :func:`run_scenario` outcome: execution breakdown plus
    the lock-line and coherence behaviour multi-tenant traffic exists to
    measure."""
    from repro.core.report import format_table, percent

    s = results["summary"]
    spec = results["spec"]
    rows = [[
        results["name"],
        f"{spec['cpus']}",
        f"{sum(t['clients'] for t in spec['tenants'])}",
        f"{s['exec_time']}",
        percent(s["breakdown"]["Busy"]),
        percent(s["breakdown"]["MSync"]),
        percent(s["breakdown"]["Mem"]),
    ]]
    table = format_table(
        ["Scenario", "CPUs", "Clients", "Cycles", "Busy", "MSync", "Mem"],
        rows, title=f"Scenario {results['name']} ({results['qid']})",
    )
    l2_total = sum(sum(v) for v in s["l2_grouped"].values()) or 1
    l2_cohe = sum(v[2] for v in s["l2_grouped"].values())
    lock_misses = s["l2_by_class"].get("LockSLock", 0)
    lock_cohe = s.get("l2_cohe_by_class", {}).get("LockSLock", 0)
    return (table
            + f"\nL2 misses: {l2_total}  coherence {100 * l2_cohe / l2_total:.1f}%"
            + f"  lock-line {lock_misses} ({lock_cohe} coherence)")
