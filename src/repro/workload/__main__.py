"""``python -m repro.workload validate <spec.json>`` -- spec validation CLI.

The workload twin of ``python -m repro.obs validate``: loads each file,
checks the schema version and every field, and prints a one-line summary
(name, hash, tenants, clients, operations) per valid spec.  Exit status 1
on the first invalid file.
"""

import argparse
import sys


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description="Validate declarative workload scenario specs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    val = sub.add_parser("validate", help="validate spec file(s)")
    val.add_argument("specs", nargs="+", metavar="SPEC.json")
    args = parser.parse_args(argv)

    from repro.workload import SpecError, load_spec, scenario_qid
    from repro.workload.scheduler import build_schedule

    status = 0
    for path in args.specs:
        try:
            spec = load_spec(path)
        except (OSError, SpecError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            status = 1
            continue
        schedule = build_schedule(spec)
        updates = sum(1 for op in schedule if op.is_update)
        print(f"{path}: ok  name={spec.name} qid={scenario_qid(spec)} "
              f"schema=v{spec.schema_version} tenants={len(spec.tenants)} "
              f"clients={spec.total_clients()} cpus={spec.cpus} "
              f"ops={len(schedule)} (updates={updates})")
    return status


if __name__ == "__main__":
    sys.exit(main())
