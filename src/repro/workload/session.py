"""Scenario session recorder: one canonical pass, N machine-ready traces.

Update-bearing workloads break the assumption the query trace cache lives
on: a DML statement mutates shared engine state, so the event stream one
client emits depends on what ran before it.  The recorder restores
machine-independence by *defining* a scenario's semantics as its canonical
serialization: operations execute one at a time, to completion, in the
schedule order fixed by :func:`repro.workload.scheduler.build_schedule`
(arrival, then CPU, client, sequence) against a **fresh** database --
never the shared read-only cache of
:func:`repro.core.experiment.workload_database`.  Each operation's events
are routed into its CPU's stream, with the nominal idle gap between
consecutive arrivals on that CPU inserted as a busy interval.

The per-CPU streams are then fixed data, exactly like a recorded query
trace: replay against any machine configuration is deterministic, and the
cross-CPU coherence traffic, lock-line handoffs and invalidations the
mixed-rw experiments measure emerge at replay from the recorded address
streams.  This is the paper's own methodology (trace generation separated
from memory-system simulation) extended to multi-tenant update traffic.

Integration is by *qid*: a scenario's traces are cached, stored, shipped
and lease-journaled under ``scn:<spec-hash>`` through the ordinary
:class:`~repro.core.tracecache.TraceCache` / trace-store / worker-fabric
paths -- :meth:`TraceCache._record` recognizes the prefix and delegates
here.  Recording happens only where a spec has been registered (the sweep
parent; pool workers receive shipped bytes and ``repro-sweep-worker``
processes strict-load from the spool, so neither ever records).
"""

from repro.memsim.events import busy
from repro.obs.metrics import registry
from repro.obs.spans import span
from repro.tpcd.queries import query_instance
from repro.workload.scheduler import build_schedule

#: Scenario qids carry this prefix in every trace identity.
SCENARIO_QID_PREFIX = "scn:"

#: ``qid -> ScenarioSpec``: specs known to this process.  Populated by
#: :func:`register_scenario` (the experiment family or ``--scenario``
#: loader) before any sweep needs the traces.
_SCENARIOS = {}

#: ``(qid, scale, db_seed, arena, lock_check) -> {cpu: QueryTrace}``.
#: One recording pass serves every per-CPU ``TraceCache.get``.
_RECORDINGS = {}


def scenario_qid(spec):
    """The trace-fabric identity of a spec: ``scn:<content-hash>``."""
    return SCENARIO_QID_PREFIX + spec.spec_hash()


def is_scenario_qid(qid):
    return isinstance(qid, str) and qid.startswith(SCENARIO_QID_PREFIX)


def register_scenario(spec):
    """Validate and register ``spec``; returns its qid.

    Registration is idempotent (the qid is a content hash, so a re-register
    of an equal spec is a no-op) and required before the trace layer can
    *record* the scenario -- replaying from a warm store or shipped bytes
    needs no registration.
    """
    spec.validate()
    qid = scenario_qid(spec)
    _SCENARIOS[qid] = spec
    return qid


def get_scenario(qid):
    """The registered spec behind ``qid``; raises ``KeyError`` if unknown."""
    try:
        return _SCENARIOS[qid]
    except KeyError:
        raise KeyError(
            f"scenario {qid!r} is not registered in this process; call "
            "repro.workload.register_scenario(spec) before recording "
            "(stored traces replay without registration)") from None


def clear_scenarios():
    """Drop registered specs and memoized recordings (test hygiene)."""
    _SCENARIOS.clear()
    _RECORDINGS.clear()


def _drain_into(gen, bucket):
    """Run a traced generator appending its events to ``bucket``; return
    its result value."""
    while True:
        try:
            bucket.append(next(gen))
        except StopIteration as stop:
            return stop.value


def record_scenario(qid, scale, db_seed, arena_size, lock_check=True):
    """Record every per-CPU trace of one scenario; ``{cpu: QueryTrace}``.

    Builds a private database (``scale`` sizing, ``db_seed`` generation
    seed -- the same identity the trace-store key carries), one backend
    per CPU, and executes the canonical schedule.  Memoized per
    ``(qid, scale, db_seed, arena, lock_check)``: the N per-CPU
    ``TraceCache`` misses of one sweep point trigger a single pass.
    """
    from repro.core.tracecache import record
    from repro.tpcd.dbgen import build_database
    from repro.tpcd.scales import get_scale

    scale = get_scale(scale)
    mkey = (qid, scale.name, db_seed, arena_size, bool(lock_check))
    traces = _RECORDINGS.get(mkey)
    if traces is not None:
        return traces
    spec = get_scenario(qid)
    schedule = build_schedule(spec)
    with span("record-scenario", qid=qid, name=spec.name,
              ops=len(schedule), cpus=spec.cpus):
        with span("dbgen", scale=scale.name, seed=db_seed,
                  variant="scenario"):
            db = build_database(sf=scale.sf, seed=db_seed)
        db.lock_check_per_rescan = bool(lock_check)
        backends = {cpu: db.backend(cpu, arena_size=arena_size)
                    for cpu in range(spec.cpus)}
        events = {cpu: [] for cpu in range(spec.cpus)}
        results = {cpu: [] for cpu in range(spec.cpus)}
        cursor = {cpu: 0 for cpu in range(spec.cpus)}
        for op in schedule:
            cpu = op.cpu
            gap = op.arrival - cursor[cpu]
            if gap > 0:
                events[cpu].append(busy(gap))
                cursor[cpu] = op.arrival
            value = _drain_into(
                _op_stream_bound(db, backends[cpu], op, spec), events[cpu])
            results[cpu].append((op.op, value))
            backends[cpu].priv.reset_heap()
        traces = {cpu: record(_emit(events[cpu], results[cpu]))
                  for cpu in range(spec.cpus)}
    # Recording is parent-side only: pool/fabric workers receive scenario
    # traces as shipped bytes and never reach this memo, so the global
    # stays process-local by design.
    _RECORDINGS[mkey] = traces  # repro: allow[MP001] parent-side memo
    registry().counter("workload.scenario.recordings").inc()
    registry().counter("workload.scenario.ops").inc(len(schedule))
    return traces


def _emit(evts, rows):
    """Wrap a pre-collected event list as a traced generator for
    :func:`repro.core.tracecache.record`."""
    for ev in evts:
        yield ev
    return rows


def _op_stream_bound(db, backend, op, spec):
    """Like :func:`_op_stream` with the tenant's update batch resolved."""
    if op.op in ("UF1", "UF2"):
        from repro.tpcd.updates import uf1_statements, uf2_statements

        batch = next(t.update_batch for t in spec.tenants
                     if t.name == op.tenant)
        build = uf1_statements if op.op == "UF1" else uf2_statements
        return _dml_stream(db, backend, build, batch, op.op_seed)
    qi = query_instance(op.op, seed=op.op_seed)
    return _query_stream(db, backend, qi)


def _query_stream(db, backend, qi):
    rows = yield from db.execute(qi.sql, backend, hints=qi.hints)
    return len(rows)


def _dml_stream(db, backend, build, batch, seed):
    total = 0
    for sql in build(db, batch=batch, seed=seed):
        total += yield from db.execute(sql, backend)
    return total
