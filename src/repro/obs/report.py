"""Structured run reports: one machine-readable artifact per run.

``repro-experiments ... --report-out FILE`` writes a schema-versioned JSON
document capturing everything a CI job or a benchmarking trajectory used to
scrape from stdout: the resolved run configuration, per-experiment wall
times and result hashes, the full metrics registry, the phase-span tree,
and the supervisor's recovery events.  Consumers read one file; the
rendered tables stay human-only.

Schema version policy
---------------------

``SCHEMA_VERSION`` is a single integer with additive-only evolution:

- *Adding* a field (top-level or nested) does **not** bump the version;
  validators must ignore fields they do not know.
- *Removing, renaming, or retyping* any documented field bumps the
  version.
- A validator accepts any report whose ``schema_version`` is at most its
  own and rejects newer ones (it cannot know what changed ahead of it).

Reports are pure observations: writing one never alters simulated results
(the acceptance bar is bit-identical counters with reporting on and off).

``python -m repro.obs.report validate FILE`` exits non-zero if ``FILE`` is
not a valid report -- the CI smoke job runs exactly that against its
uploaded artifact.
"""

import hashlib
import json
import time

SCHEMA_VERSION = 1

REPORT_KIND = "repro-run-report"


class ReportValidationError(ValueError):
    """A run report does not conform to the documented schema.

    ``problems`` lists every violation found, not just the first."""

    def __init__(self, problems):
        self.problems = list(problems)
        super().__init__("invalid run report: " + "; ".join(self.problems))


def jsonable(obj):
    """Coerce ``obj`` into JSON-encodable plain data, deterministically.

    Dict keys become strings (non-string keys via ``repr``), tuples become
    lists, and objects exposing ``as_dict()`` (``CpuStats``,
    ``MachineStats``, ``RunConfig``) serialize through it.  Anything else
    falls back to ``repr`` -- a report must never fail to encode.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        return {(k if isinstance(k, str) else repr(k)): jsonable(v)
                for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    as_dict = getattr(obj, "as_dict", None)
    if callable(as_dict):
        return jsonable(as_dict())
    return repr(obj)


def summary_hash(obj):
    """A stable content hash of one experiment's results.

    Canonical JSON (sorted keys, no whitespace) over :func:`jsonable`
    data, SHA-256, first 16 hex digits -- enough to compare two runs'
    simulated output without shipping the full result dicts.
    """
    blob = json.dumps(jsonable(obj), sort_keys=True,
                      separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def build_report(config=None, experiments=(), metrics=None, spans=None,
                 events=None, interrupted=False):
    """Assemble a schema-``SCHEMA_VERSION`` report dict.

    ``experiments`` is an iterable of ``(name, results, seconds)``;
    results are hashed, not embedded.  ``metrics`` is a
    :class:`~repro.obs.metrics.MetricsRegistry` or its ``as_dict()``;
    ``spans`` a span forest (:meth:`~repro.obs.spans.SpanTracer.tree`);
    ``events`` the recorded supervisor events.
    """
    if metrics is not None and not isinstance(metrics, dict):
        metrics = metrics.as_dict()
    exp_rows = [
        {"name": name, "seconds": round(seconds, 6),
         "result_hash": summary_hash(results)}
        for name, results, seconds in experiments
    ]
    return {
        "kind": REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        # repro: allow[DET002] report metadata only -- generated_unix is
        # never hashed (result_hash covers just each experiment's results)
        "generated_unix": time.time(),
        "config": jsonable(config) if config is not None else {},
        "experiments": exp_rows,
        "interrupted": bool(interrupted),
        "metrics": metrics or {"counters": {}, "gauges": {},
                               "histograms": {}, "uniques": {}},
        "spans": jsonable(spans or []),
        "events": jsonable(events or []),
        "totals": {"seconds": round(sum(r["seconds"] for r in exp_rows), 6)},
    }


def write_report(path, report):
    """Validate ``report`` and write it to ``path`` (2-space indent)."""
    validate_report(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


# -- validation --------------------------------------------------------------

_NUM = (int, float)


def _check_span(span, path, problems):
    if not isinstance(span, dict):
        problems.append(f"{path}: span is not an object")
        return
    for field, types in (("name", str), ("wall_s", _NUM), ("cpu_s", _NUM)):
        if not isinstance(span.get(field), types):
            problems.append(f"{path}.{field}: missing or wrong type")
    for i, child in enumerate(span.get("children", [])):
        _check_span(child, f"{path}.children[{i}]", problems)


def validate_report(report):
    """Check ``report`` against the documented schema; return it.

    Raises :class:`ReportValidationError` carrying *every* violation.
    Unknown extra fields are ignored (see the version policy above).
    """
    problems = []
    if not isinstance(report, dict):
        raise ReportValidationError(["report is not a JSON object"])
    if report.get("kind") != REPORT_KIND:
        problems.append(f"kind: expected {REPORT_KIND!r}")
    version = report.get("schema_version")
    if not isinstance(version, int):
        problems.append("schema_version: missing or not an integer")
    elif version > SCHEMA_VERSION:
        problems.append(f"schema_version: {version} is newer than this "
                        f"validator ({SCHEMA_VERSION})")
    if not isinstance(report.get("generated_unix"), _NUM):
        problems.append("generated_unix: missing or not a number")
    if not isinstance(report.get("config"), dict):
        problems.append("config: missing or not an object")
    if not isinstance(report.get("interrupted"), bool):
        problems.append("interrupted: missing or not a boolean")

    experiments = report.get("experiments")
    if not isinstance(experiments, list):
        problems.append("experiments: missing or not a list")
    else:
        for i, row in enumerate(experiments):
            if not isinstance(row, dict):
                problems.append(f"experiments[{i}]: not an object")
                continue
            if not isinstance(row.get("name"), str):
                problems.append(f"experiments[{i}].name: missing or not a "
                                "string")
            if not isinstance(row.get("seconds"), _NUM):
                problems.append(f"experiments[{i}].seconds: missing or not "
                                "a number")
            if not isinstance(row.get("result_hash"), str):
                problems.append(f"experiments[{i}].result_hash: missing or "
                                "not a string")

    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics: missing or not an object")
    else:
        for group in ("counters", "gauges"):
            section = metrics.get(group)
            if not isinstance(section, dict):
                problems.append(f"metrics.{group}: missing or not an object")
                continue
            for name, value in section.items():
                if not isinstance(value, _NUM):
                    problems.append(f"metrics.{group}.{name}: not a number")
        hists = metrics.get("histograms")
        if not isinstance(hists, dict):
            problems.append("metrics.histograms: missing or not an object")
        else:
            for name, h in hists.items():
                ok = (isinstance(h, dict)
                      and isinstance(h.get("buckets"), list)
                      and isinstance(h.get("counts"), list)
                      and len(h["counts"]) == len(h["buckets"]) + 1
                      and isinstance(h.get("total"), _NUM)
                      and isinstance(h.get("sum"), _NUM))
                if not ok:
                    problems.append(f"metrics.histograms.{name}: malformed")

    spans = report.get("spans")
    if not isinstance(spans, list):
        problems.append("spans: missing or not a list")
    else:
        for i, span in enumerate(spans):
            _check_span(span, f"spans[{i}]", problems)

    events = report.get("events")
    if not isinstance(events, list):
        problems.append("events: missing or not a list")
    else:
        for i, ev in enumerate(events):
            if not (isinstance(ev, dict) and isinstance(ev.get("kind"), str)
                    and isinstance(ev.get("t_s"), _NUM)):
                problems.append(f"events[{i}]: malformed")

    totals = report.get("totals")
    if not (isinstance(totals, dict) and isinstance(totals.get("seconds"),
                                                    _NUM)):
        problems.append("totals.seconds: missing or not a number")

    if problems:
        raise ReportValidationError(problems)
    return report


def main(argv=None):
    """``python -m repro.obs.report validate FILE`` -- the CI gate."""
    import sys

    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2 or argv[0] != "validate":
        print("usage: python -m repro.obs.report validate FILE",
              file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"{argv[1]}: unreadable report: {exc}", file=sys.stderr)
        return 2
    try:
        validate_report(report)
    except ReportValidationError as exc:
        print(f"{argv[1]}: INVALID", file=sys.stderr)
        for problem in exc.problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    n_exp = len(report["experiments"])
    print(f"{argv[1]}: valid run report (schema v{report['schema_version']}, "
          f"{n_exp} experiment(s), {report['totals']['seconds']:.2f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
