"""Run events: the supervisor's recovery actions as a observable stream.

The sweep supervisor already *does* the interesting things -- retries,
pool respawns, timeouts, in-process fallbacks, checkpoint resumes -- but
used to report them only as end-of-run counter totals.  This module gives
those moments a live channel: the supervisor calls :func:`emit`, and

- subscribed listeners (the ``--progress`` display) see each event as it
  happens, and
- when observability is on, events are recorded (kind, relative timestamp,
  detail dict) and land in the run report's ``"events"`` list, so a CI
  trajectory can ask "how many respawns did that run take, and when?"
  without parsing stdout.

With observability off and no listeners, :func:`emit` is two truth tests.
Events never influence execution; they are strictly write-only telemetry.
"""

import time

#: Recorded events (``record`` mode only): list of plain dicts.
_RECORDED = []
_RECORDING = False
_LISTENERS = []
_T0 = None


def set_recording(on):
    """Turn event recording on/off (the report path); clears the buffer."""
    global _RECORDING, _T0
    _RECORDING = bool(on)
    _RECORDED.clear()
    _T0 = time.monotonic() if on else None


def subscribe(listener):
    """Register ``listener(kind, detail_dict)`` for live events."""
    _LISTENERS.append(listener)


def unsubscribe(listener):
    try:
        _LISTENERS.remove(listener)
    except ValueError:
        pass


def emit(kind, **detail):
    """Publish one event to listeners and (when recording) the buffer."""
    if _LISTENERS:
        for listener in list(_LISTENERS):
            listener(kind, detail)
    if _RECORDING:
        _RECORDED.append({"kind": kind,
                          "t_s": round(time.monotonic() - _T0, 6),
                          "detail": detail})


def recorded():
    """The recorded event list (shared; callers must not mutate)."""
    return list(_RECORDED)
