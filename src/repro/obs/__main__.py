"""``python -m repro.obs validate report.json`` -- report validation CLI.

Delegates to :func:`repro.obs.report.main`; the package-level entry avoids
the double-import warning ``python -m repro.obs.report`` prints when the
package initializer has already loaded the submodule.
"""

import sys

from repro.obs.report import main

sys.exit(main())
