"""Metrics registry: the one place runtime counters live.

The paper's contribution is systematic *measurement*; the harness applies
the same discipline to itself.  Every counter the pipeline used to thread
through ad-hoc module dicts (``sweep._SUP_STATS``, ``tracestore._CORRUPTION``,
the trace-cache traffic fields) registers here instead, under hierarchical
dotted names (``tracestore.corrupt.checksum``, ``sweep.point.retries``), so
``repro-experiments --time``, the structured run report, and tests all read
one coherent namespace instead of scraping module globals.

Four instrument kinds:

``Counter``
    A monotonically increasing integer (``inc``).
``Gauge``
    A point-in-time value (``set``); merges take the elementwise max, the
    useful semantics for high-water marks across processes.
``Histogram``
    Fixed bucket boundaries chosen at creation; ``observe`` drops a sample
    into the first bucket whose upper bound holds it (the last bucket is
    the overflow).  Boundaries are part of the identity: re-registering a
    histogram with different buckets is an error, so merged histograms
    always add bucket-for-bucket.
``UniqueCounter``
    Counts *distinct* keys (``add``), for "per unique point, not per
    attempt" accounting -- e.g. a trace re-recorded on every retry of a
    crashing sweep point is one damaged artifact, not three.

Registries are cheap plain-dict machines with no locks: each process owns
one (the module-global :func:`registry`), and cross-process aggregation is
explicit -- a worker exports :meth:`MetricsRegistry.as_dict` and the parent
:meth:`MetricsRegistry.merge`\\ s it.  Counters and histogram buckets add,
gauges max, unique counters union by key.
"""

import re

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


class MetricError(ValueError):
    """A metric was registered or used inconsistently (bad name, kind
    collision, mismatched histogram buckets)."""


def _check_name(name):
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise MetricError(
            f"bad metric name {name!r}: expected dotted lowercase segments "
            "like 'tracestore.corrupt.checksum'")
    return name


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        if n < 0:
            raise MetricError(f"counter {self.name}: negative increment {n}")
        self.value += n
        return self.value


class Gauge:
    """A point-in-time value; merge takes the max (high-water mark)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value
        return value


class Histogram:
    """Sample distribution over fixed bucket boundaries.

    ``buckets`` are the inclusive upper bounds of the first ``len(buckets)``
    buckets; one implicit overflow bucket catches everything above the last
    boundary.  ``counts`` therefore has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("name", "buckets", "counts", "total", "sum")
    kind = "histogram"

    def __init__(self, name, buckets):
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise MetricError(
                f"histogram {name}: bucket boundaries must be a non-empty "
                f"ascending sequence, got {bounds!r}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value):
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += value


class UniqueCounter:
    """Counts distinct keys; re-adding a seen key is a no-op.

    Keys are canonicalized with ``repr`` so tuples, lists, and strings that
    denote the same identity collapse, and so the key set survives a JSON
    round trip (:meth:`MetricsRegistry.as_dict`).
    """

    __slots__ = ("name", "keys")
    kind = "unique"

    def __init__(self, name):
        self.name = name
        self.keys = set()

    def add(self, key):
        self.keys.add(repr(key))
        return len(self.keys)

    @property
    def value(self):
        return len(self.keys)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
          "unique": UniqueCounter}


class MetricsRegistry:
    """A namespace of named instruments (see module docstring).

    Accessors are create-or-get: ``registry.counter("sweep.point.retries")``
    registers on first use and returns the same object afterwards.  Asking
    for an existing name as a different kind -- or as a histogram with
    different boundaries -- raises :class:`MetricError`: a name means one
    thing for the whole process.
    """

    def __init__(self):
        self._metrics = {}

    # -- registration ------------------------------------------------------

    def _get(self, name, kind, factory):
        _check_name(name)
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif metric.kind != kind:
            raise MetricError(
                f"metric {name!r} is a {metric.kind}, not a {kind}")
        return metric

    def counter(self, name):
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name):
        return self._get(name, "gauge", lambda: Gauge(name))

    def histogram(self, name, buckets):
        hist = self._get(name, "histogram", lambda: Histogram(name, buckets))
        if hist.buckets != tuple(buckets):
            raise MetricError(
                f"histogram {name!r} registered with buckets {hist.buckets}, "
                f"asked for {tuple(buckets)}")
        return hist

    def unique(self, name):
        return self._get(name, "unique", lambda: UniqueCounter(name))

    # -- reading -----------------------------------------------------------

    def value(self, name, default=0):
        """The scalar value of a counter/gauge/unique (histograms have no
        scalar; ask for the object)."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.value

    def items(self, prefix=""):
        """``(name, metric)`` pairs, optionally under a dotted prefix."""
        want = prefix + "." if prefix and not prefix.endswith(".") else prefix
        return sorted((n, m) for n, m in self._metrics.items()
                      if not want or n.startswith(want) or n == prefix)

    def __contains__(self, name):
        return name in self._metrics

    def __len__(self):
        return len(self._metrics)

    # -- snapshot / merge --------------------------------------------------

    def as_dict(self):
        """JSON-ready snapshot, grouped by kind.

        The exact inverse of :meth:`from_dict`; the run report embeds this
        under its ``"metrics"`` key.
        """
        out = {"counters": {}, "gauges": {}, "histograms": {}, "uniques": {}}
        for name, m in sorted(self._metrics.items()):
            if m.kind == "counter":
                out["counters"][name] = m.value
            elif m.kind == "gauge":
                out["gauges"][name] = m.value
            elif m.kind == "histogram":
                out["histograms"][name] = {
                    "buckets": list(m.buckets), "counts": list(m.counts),
                    "total": m.total, "sum": m.sum,
                }
            else:
                out["uniques"][name] = {"count": len(m.keys),
                                        "keys": sorted(m.keys)}
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild a registry from an :meth:`as_dict` snapshot."""
        reg = cls()
        for name, value in data.get("counters", {}).items():
            reg.counter(name).inc(value)
        for name, value in data.get("gauges", {}).items():
            reg.gauge(name).set(value)
        for name, h in data.get("histograms", {}).items():
            hist = reg.histogram(name, h["buckets"])
            hist.counts = list(h["counts"])
            hist.total = h["total"]
            hist.sum = h["sum"]
        for name, u in data.get("uniques", {}).items():
            reg.unique(name).keys.update(u.get("keys", ()))
        return reg

    def merge(self, other):
        """Fold another registry (or an :meth:`as_dict` snapshot) into this
        one: counters and histogram buckets add, gauges take the max,
        unique counters union their key sets.

        This is the cross-process aggregation path: a sweep worker snapshots
        its registry with :meth:`as_dict` and the parent merges it.
        """
        if isinstance(other, dict):
            other = MetricsRegistry.from_dict(other)
        for name, m in other._metrics.items():
            if m.kind == "counter":
                self.counter(name).inc(m.value)
            elif m.kind == "gauge":
                mine = self.gauge(name)
                mine.set(max(mine.value, m.value))
            elif m.kind == "histogram":
                mine = self.histogram(name, m.buckets)
                for i, n in enumerate(m.counts):
                    mine.counts[i] += n
                mine.total += m.total
                mine.sum += m.sum
            else:
                self.unique(name).keys.update(m.keys)
        return self

    def reset(self):
        """Drop every registered metric (tests; never during a run)."""
        self._metrics.clear()


#: The process-wide registry every instrumented module writes to.
_REGISTRY = MetricsRegistry()


def registry():
    """This process's :class:`MetricsRegistry`."""
    return _REGISTRY
