"""Live progress for long sweeps, driven by supervisor events.

``repro-experiments --progress`` attaches a :class:`ProgressReporter` to
the event stream (:mod:`repro.obs.events`): each completed, retried, or
recovered sweep point updates a single carriage-return status line on
stderr, so a paper-scale run shows where it is instead of going silent for
minutes.  Output is throttled (one redraw per ``min_interval`` seconds,
plus every terminal state change), overwrites in place, and ends with a
newline when the sweep finishes, so logs stay readable when stderr is a
file.

Progress is strictly a listener: it never touches sweep state, and with
the flag off no reporter is subscribed and the event emitter short-circuits.
"""

import sys
import time

from repro.obs import events


class ProgressReporter:
    """Renders sweep/experiment events as one updating status line."""

    def __init__(self, stream=None, min_interval=0.2):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_draw = 0.0
        self._dirty_line = False
        self._experiment = None
        self._reset_sweep()

    def _reset_sweep(self):
        self._total = 0
        self._done = 0
        self._retries = 0
        self._respawns = 0
        self._fallbacks = 0
        self._resumed = 0
        self._requeued = 0
        self._workers_live = 0
        self._worker_deaths = 0
        self._worker_stale = 0
        self._t0 = time.perf_counter()

    # -- wiring ------------------------------------------------------------

    def attach(self):
        events.subscribe(self)
        return self

    def detach(self):
        events.unsubscribe(self)
        self.end_line()

    # -- event sink --------------------------------------------------------

    def __call__(self, kind, detail):
        if kind == "experiment.start":
            self._experiment = detail.get("name")
        elif kind == "experiment.end":
            self.end_line()
            self._experiment = None
        elif kind == "sweep.start":
            self._reset_sweep()
            self._total = detail.get("total", 0)
            self._draw(force=True)
        elif kind == "point.done":
            self._done += 1
            self._draw(force=self._done == self._total)
        elif kind == "point.retry":
            self._retries += 1
            self._draw()
        elif kind == "pool.respawn":
            self._respawns += 1
            self._draw()
        elif kind == "point.fallback":
            self._fallbacks += 1
            self._draw()
        elif kind == "points.resumed":
            self._resumed += detail.get("count", 0)
            self._draw()
        elif kind == "points.requeued":
            self._requeued += detail.get("count", 0)
            self._draw()
        elif kind == "worker.spawn":
            self._workers_live += 1
            self._draw()
        elif kind == "worker.dead":
            self._workers_live = max(0, self._workers_live - 1)
            self._worker_deaths += 1
            self._draw()
        elif kind == "worker.stale":
            self._worker_stale += 1
            self._draw()
        elif kind == "sweep.end":
            self._draw(force=True)
            self.end_line()

    # -- rendering ---------------------------------------------------------

    def _draw(self, force=False):
        now = time.perf_counter()
        if not force and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        name = self._experiment or "sweep"
        line = (f"{name}: {self._done}/{self._total} points"
                f" | {now - self._t0:.1f}s")
        if self._workers_live or self._worker_deaths:
            line += f" | {self._workers_live} workers"
        extras = [(self._retries, "retries"), (self._respawns, "respawns"),
                  (self._fallbacks, "fallbacks"), (self._resumed, "resumed"),
                  (self._requeued, "requeued"),
                  (self._worker_deaths, "worker deaths"),
                  (self._worker_stale, "stale")]
        for count, label in extras:
            if count:
                line += f" | {count} {label}"
        self.stream.write("\r" + line.ljust(78))
        self.stream.flush()
        self._dirty_line = True

    def end_line(self):
        if self._dirty_line:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty_line = False
