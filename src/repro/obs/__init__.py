"""Unified observability layer: metrics, phase spans, events, run reports.

The reproduction's subject is measurement, and this package turns the same
lens on the harness itself:

- :mod:`repro.obs.metrics` -- the process-wide :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms, unique counters) that absorbs
  every ad-hoc ``--time`` counter under hierarchical names;
- :mod:`repro.obs.spans` -- start/stop phase tracing (``dbgen``,
  ``record``, ``encode``, ``replay``, ``sweep-point``, ...) with wall and
  CPU time and parent-child nesting;
- :mod:`repro.obs.events` -- the supervisor's recovery actions as a live,
  recordable event stream;
- :mod:`repro.obs.report` -- the schema-versioned JSON run report
  (``--report-out``) that CI and benchmark trajectories consume;
- :mod:`repro.obs.progress` -- the ``--progress`` status line for long
  sweeps.

Gating: metrics are always on (they replace counters that were always on
and cost the same dict increments).  Spans, event recording, and progress
are off by default and switched on by :func:`enable` (the runner does this
for ``--report-out``/``--progress``); when off, the instrumented code
paths are no-ops and sweep results are bit-identical either way --
observability never touches simulation state.
"""

from repro.obs.metrics import MetricError, MetricsRegistry, registry
from repro.obs.progress import ProgressReporter
from repro.obs.report import (
    SCHEMA_VERSION,
    ReportValidationError,
    build_report,
    summary_hash,
    validate_report,
    write_report,
)
from repro.obs.spans import SpanTracer, span, tracer
from repro.obs import events

__all__ = [
    "MetricError",
    "MetricsRegistry",
    "registry",
    "ProgressReporter",
    "SCHEMA_VERSION",
    "ReportValidationError",
    "build_report",
    "summary_hash",
    "validate_report",
    "write_report",
    "SpanTracer",
    "span",
    "tracer",
    "events",
    "enable",
    "disable",
    "enabled",
]


def enable(record_events=True):
    """Switch span tracing (and, by default, event recording) on."""
    tracer().enabled = True
    if record_events:
        events.set_recording(True)


def disable():
    """Switch span tracing and event recording off (the default state)."""
    tracer().enabled = False
    events.set_recording(False)


def enabled():
    """Whether phase tracing is currently on."""
    return tracer().enabled
