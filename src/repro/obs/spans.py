"""Phase spans: start/stop tracing around the pipeline stages.

A span measures one phase of the run -- ``dbgen``, ``record``, ``encode``,
``replay``, ``sweep-point``, ``checkpoint-append``, ``pool-respawn``,
``experiment`` -- with wall-clock *and* CPU time, nested parent-child the
way the phases actually contain each other (a ``sweep-point`` contains its
``replay``; an ``experiment`` contains its points).  The finished tree is
emitted into the structured run report and renders the same execution-time
decomposition for the harness that Figure 6 renders for the simulated
machine.

Tracing is *gated*: with observability off (the default), ``span()``
returns a shared no-op context manager and the instrumented code paths pay
one attribute load and a truth test -- measured in nanoseconds, so sweep
hot paths stay within the ≤2% overhead budget, and nothing here ever
touches simulation state (results are bit-identical either way).

Spans are process-local.  ``spawn`` pool workers trace into their own
tracer, which dies with them; the parent supervises per-point wall time
itself (the ``sweep.point.seconds`` histogram), so the report still
accounts for pool-side work.
"""

import time
from contextlib import contextmanager


class Span:
    """One timed phase: name, optional metadata, timings, children."""

    __slots__ = ("name", "meta", "wall_s", "cpu_s", "children",
                 "_t0_wall", "_t0_cpu")

    def __init__(self, name, meta=None):
        self.name = name
        self.meta = meta or {}
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.children = []
        self._t0_wall = time.perf_counter()
        self._t0_cpu = time.process_time()

    def finish(self):
        self.wall_s = time.perf_counter() - self._t0_wall
        self.cpu_s = time.process_time() - self._t0_cpu

    def as_dict(self):
        out = {"name": self.name, "wall_s": self.wall_s, "cpu_s": self.cpu_s}
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out


class _NullContext:
    """The disabled-tracing span: enter/exit do nothing, one shared
    instance, no allocation per call."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullContext()


class SpanTracer:
    """Collects a forest of :class:`Span` trees for one process.

    ``enabled`` gates everything: a disabled tracer's :meth:`span` is a
    no-op.  Nesting is by dynamic extent -- a span opened while another is
    active becomes its child -- which matches the pipeline's call
    structure.
    """

    def __init__(self, enabled=False):
        self.enabled = enabled
        self.roots = []
        self._stack = []

    def span(self, name, /, **meta):
        """Context manager timing one phase (no-op when disabled).

        ``name`` is positional-only so metadata keys are unrestricted
        (``span("experiment", name="fig8")`` tags the phase with a
        ``name`` attribute).
        """
        if not self.enabled:
            return _NULL
        return self._span(name, meta)

    @contextmanager
    def _span(self, name, meta):
        span = Span(name, meta)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self.roots).append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.finish()
            self._stack.pop()

    def current(self):
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def tree(self):
        """The completed span forest as a list of nested plain dicts."""
        return [s.as_dict() for s in self.roots]

    def reset(self):
        self.roots = []
        self._stack = []


#: The process-wide tracer; :func:`repro.obs.enable` switches it on.
_TRACER = SpanTracer()


def tracer():
    """This process's :class:`SpanTracer`."""
    return _TRACER


def span(name, /, **meta):
    """Open a phase span on the process tracer (no-op unless enabled)."""
    return _TRACER.span(name, **meta)
