"""Figure 7: read misses by data structure and miss type, L1 and L2.

For each query, the misses in the primary and secondary caches are
classified by the structure missed on (Priv, Data, Index, BufDesc, BufLook,
LockHash, XidHash, LockSLock) and by type (cold / conflict / coherence).
Also reports the absolute miss rates quoted in section 5.1.
"""

from repro.core.report import format_table
from repro.experiments.families import baseline_workloads
from repro.memsim.events import CLASS_NAMES, DataClass, N_CLASSES

QUERIES = ["Q3", "Q6", "Q12"]


def run(scale="small", db=None):
    """Collect the per-structure, per-type miss classification."""
    results = {}
    for qid, w in baseline_workloads(QUERIES, scale, db).items():
        s = w.stats
        results[qid] = {
            "l1": _per_class(s.l1_read_misses),
            "l2": _per_class(s.l2_read_misses),
            "l1_grouped": s.grouped("l1"),
            "l2_grouped": s.grouped("l2"),
            "l1_miss_rate": s.l1_miss_rate(),
            "l2_miss_rate": s.l2_miss_rate(),
        }
    return results


def _per_class(grid):
    return {
        CLASS_NAMES[DataClass(c)]: {"Cold": grid[c][0], "Conf": grid[c][1],
                                    "Cohe": grid[c][2]}
        for c in range(N_CLASSES)
    }


def report(results):
    """Render one normalized table per query and cache level."""
    parts = []
    for qid, r in results.items():
        for level in ("l1", "l2"):
            total = sum(sum(v.values()) for v in r[level].values()) or 1
            rows = []
            for cls, types in r[level].items():
                if sum(types.values()) == 0:
                    continue
                rows.append([
                    cls,
                    100.0 * types["Cold"] / total,
                    100.0 * types["Conf"] / total,
                    100.0 * types["Cohe"] / total,
                ])
            parts.append(format_table(
                ["Structure", "Cold", "Conf", "Cohe"], rows,
                title=f"Figure 7 {qid} {level.upper()} (normalized to 100)",
            ))
        parts.append(
            f"{qid} miss rates: L1 {100 * r['l1_miss_rate']:.2f}%  "
            f"L2 (global) {100 * r['l2_miss_rate']:.2f}%"
        )
    return "\n\n".join(parts)
