"""Figure 8: number of misses vs cache line size.

Sweeps the secondary-cache line over 16..256 bytes (primary line fixed at
half), counting misses per data-structure group in both caches, normalized
to the baseline (32-byte L1 / 64-byte L2 lines).
"""

from repro.core.report import format_table
from repro.core.sweep import run_sweep
from repro.experiments.families import grouped_misses, line_size_points
from repro.tpcd.scales import get_scale

QUERIES = ["Q3", "Q6", "Q12"]
LINE_SIZES = [16, 32, 64, 128, 256]
BASELINE_LINE = 64
GROUPS = ["Priv", "Data", "Index", "Metadata"]


def run(scale="small", db=None, queries=QUERIES, line_sizes=LINE_SIZES,
        jobs=1):
    """Return per-query, per-line-size grouped miss counts for L1 and L2.

    Runs on the sweep driver: the workload is recorded once per query and
    replayed against every line size (``jobs>1`` fans the points out over a
    process pool).  ``db`` is accepted for compatibility and must be the
    shared per-scale database the driver rebuilds itself.
    """
    sc = get_scale(scale)
    points = line_size_points(queries, line_sizes)
    results = {}
    for (qid, l2_line), s in run_sweep(points, scale=sc, jobs=jobs).items():
        results.setdefault(qid, {})[l2_line] = grouped_misses(s)
    return results


def normalized(results, level):
    """Per query: {line_size: {group: misses normalized to baseline=100}}.

    Normalization follows the paper: the baseline configuration's *total*
    misses are 100, and every bar is scaled by the same factor.
    """
    out = {}
    for qid, per_line in results.items():
        base_total = sum(per_line[BASELINE_LINE][level].values()) or 1
        out[qid] = {
            line: {g: 100.0 * v / base_total for g, v in counts[level].items()}
            for line, counts in per_line.items()
        }
    return out


def report(results):
    """Render the normalized miss counts for both cache levels."""
    parts = []
    for level in ("l1", "l2"):
        norm = normalized(results, level)
        for qid, per_line in norm.items():
            rows = [
                [f"{line}B"] + [per_line[line][g] for g in GROUPS]
                + [sum(per_line[line].values())]
                for line in sorted(per_line)
            ]
            parts.append(format_table(
                ["L2 line"] + GROUPS + ["Total"], rows,
                title=f"Figure 8 {qid} {level.upper()} misses "
                      f"(baseline 64B = 100)",
            ))
    return "\n\n".join(parts)
