"""Command-line front end: regenerate any table/figure of the paper.

Usage::

    repro-experiments --list
    repro-experiments table1 fig6 --scale small
    repro-experiments all --scale paper     # the full 1/100 TPC-D sizing
    REPRO_SCALE=paper repro-experiments all # same, via the environment
    repro-experiments fig8 fig9 --jobs 4    # sweeps on a 4-worker pool
    repro-experiments fig8 --trace-dir ~/.cache/repro-traces
                                            # record once, load forever
"""

import argparse
import inspect
import os
import sys
import time


def _fmt_bytes(n):
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024


def main(argv=None):
    from repro.experiments import REGISTRY

    parser = argparse.ArgumentParser(
        description="Reproduce the tables and figures of the HPCA 1997 "
                    "DSS memory-performance paper.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (or 'all')")
    parser.add_argument("--scale",
                        default=os.environ.get("REPRO_SCALE", "small"),
                        help="scale preset: tiny, small, medium, paper")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep-based experiments "
                             "(default: 1, run in-process)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="persistent trace store: record query traces "
                             "there on first run, load them on later runs "
                             "(damaged entries silently re-record)")
    parser.add_argument("--time", action="store_true", dest="show_time",
                        help="print wall-clock and cache-traffic summaries "
                             "after the reports")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    args = parser.parse_args(argv)

    if args.trace_dir:
        from repro.core.experiment import set_trace_dir

        set_trace_dir(args.trace_dir)

    if args.list or not args.experiments:
        print("Available experiments:")
        for name, mod in REGISTRY.items():
            summary = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:8s} {summary}")
        return 0

    names = list(REGISTRY) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2

    timings = []
    for name in names:
        mod = REGISTRY[name]
        kwargs = {"scale": args.scale}
        # Sweep-based experiments take a worker count; the others ignore it.
        if "jobs" in inspect.signature(mod.run).parameters:
            kwargs["jobs"] = args.jobs
        start = time.time()
        results = mod.run(**kwargs)
        elapsed = time.time() - start
        timings.append((name, elapsed))
        print(f"\n{'=' * 72}\n{name}  (scale={args.scale}, {elapsed:.1f}s)\n{'=' * 72}")
        print(mod.report(results))

    if args.show_time:
        from repro.core.experiment import trace_cache_stats
        from repro.core.sweep import point_memo_stats

        print(f"\n{'=' * 72}\nTimings  (scale={args.scale}, jobs={args.jobs})"
              f"\n{'=' * 72}")
        for name, elapsed in timings:
            print(f"  {name:8s} {elapsed:8.2f}s")
        print(f"  {'total':8s} {sum(t for _, t in timings):8.2f}s")
        tc = trace_cache_stats()
        pm = point_memo_stats()
        print(f"  trace cache  hits={tc['hits']} records={tc['records']} "
              f"loads={tc['loads']} traces={tc['traces']} "
              f"({_fmt_bytes(tc['bytes'])})")
        print(f"  trace store  read={_fmt_bytes(tc['bytes_read'])} "
              f"written={_fmt_bytes(tc['bytes_written'])}"
              + (f"  dir={args.trace_dir}" if args.trace_dir else ""))
        print(f"  point memo   hits={pm['hits']} misses={pm['misses']} "
              f"cached={pm['cached']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
