"""Command-line front end: regenerate any table/figure of the paper.

Usage::

    repro-experiments --list
    repro-experiments table1 fig6 --scale small
    repro-experiments all --scale paper     # the full 1/100 TPC-D sizing
    REPRO_SCALE=paper repro-experiments all # same, via the environment
    repro-experiments fig8 fig9 --jobs 4    # sweeps on a 4-worker pool
    repro-experiments fig8 --trace-dir ~/.cache/repro-traces
                                            # record once, load forever
    repro-experiments fig8 fig9 --jobs 4 --checkpoint-dir ckpt \\
        --point-timeout 120 --retries 3     # fault-tolerant paper-scale run
                                            # (Ctrl-C / crash, then re-run:
                                            #  resumes from completed points)
    repro-experiments fig8 --jobs 4 --report-out run.json --progress
                                            # structured run report + live
                                            # sweep progress line

The CLI builds one :class:`repro.core.RunConfig` from its flags, applies it
with :func:`repro.core.configure_run`, and drives
:func:`repro.core.run_experiments` -- the same three calls a library user
makes.
"""

import argparse
import os
import sys


def _fmt_bytes(n):
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024


def _build_parser():
    parser = argparse.ArgumentParser(
        description="Reproduce the tables and figures of the HPCA 1997 "
                    "DSS memory-performance paper.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (or 'all')")
    parser.add_argument("--scenario", action="append", default=[],
                        metavar="SPEC.json",
                        help="run a declarative workload scenario spec "
                             "(validated ScenarioSpec JSON; see 'python -m "
                             "repro.workload validate'); repeatable, "
                             "combines with experiment names")
    parser.add_argument("--scale",
                        default=os.environ.get("REPRO_SCALE", "small"),
                        help="scale preset: tiny, small, medium, paper")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep-based experiments "
                             "(default: 1, run in-process)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="persistent trace store: record query traces "
                             "there on first run, load them on later runs "
                             "(damaged entries re-record with a warning; "
                             "see --strict-store)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="journal completed sweep points there; an "
                             "interrupted run resumes from the journal "
                             "instead of restarting")
    parser.add_argument("--point-timeout", type=float, default=None,
                        metavar="SEC",
                        help="kill and retry a sweep point whose worker "
                             "exceeds SEC seconds (default: no timeout)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="worker re-attempts per failed sweep point "
                             "before degrading to in-process execution "
                             "(default: 2)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "inproc", "pool", "workers"],
                        help="sweep executor: 'auto' picks the process "
                             "pool when --jobs > 1, 'inproc' forces "
                             "serial, 'pool' forces the supervised pool, "
                             "'workers' runs lease-holding "
                             "repro-sweep-worker subprocesses that fetch "
                             "traces by store key (default: auto)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="worker subprocesses for --backend workers "
                             "(default: 0, derive from --jobs)")
    parser.add_argument("--lease-ttl", type=float, default=30.0,
                        metavar="SEC",
                        help="seconds a worker's claim on a sweep point "
                             "stays exclusive without a heartbeat; an "
                             "expired lease is reclaimed and the point "
                             "re-queued (default: 30)")
    parser.add_argument("--kernel", default=os.environ.get("REPRO_KERNEL",
                                                           "auto"),
                        choices=["auto", "horizon", "batched", "scalar"],
                        help="replay dispatch engine: 'horizon' adds the "
                             "sharing classifier and retires whole "
                             "non-interacting regions past the window "
                             "cuts, 'batched' retires non-interacting "
                             "runs with numpy, 'scalar' is the "
                             "pure-Python reference loop, 'auto' picks "
                             "horizon when numpy is importable "
                             "(default: auto, or REPRO_KERNEL)")
    parser.add_argument("--strict-store", action="store_true",
                        help="raise on damaged trace-store entries instead "
                             "of re-recording them")
    parser.add_argument("--report-out", default=None, metavar="FILE",
                        help="write a schema-versioned JSON run report "
                             "(config, timings, metrics, phase spans, "
                             "supervisor events) to FILE; written even when "
                             "the run is interrupted")
    parser.add_argument("--progress", action="store_true",
                        help="live one-line sweep progress on stderr "
                             "(points done, retries, respawns)")
    parser.add_argument("--time", action="store_true", dest="show_time",
                        help="print wall-clock, cache-traffic, and "
                             "robustness summaries after the reports")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    return parser


def main(argv=None):
    from repro.experiments import REGISTRY

    args = _build_parser().parse_args(argv)

    if args.list or not (args.experiments or args.scenario):
        print("Available experiments:")
        for name, mod in REGISTRY.items():
            summary = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:8s} {summary}")
        return 0

    names = list(REGISTRY) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2

    specs = []
    if args.scenario:
        from repro.workload import SpecError, load_spec

        for path in args.scenario:
            try:
                specs.append(load_spec(path))
            except (OSError, SpecError) as exc:
                print(f"invalid scenario spec {path}: {exc}", file=sys.stderr)
                return 2

    from repro.core import RunConfig, configure_run, run_experiments

    config = RunConfig(
        scale=args.scale,
        jobs=args.jobs,
        trace_dir=args.trace_dir,
        checkpoint_dir=args.checkpoint_dir,
        point_timeout=args.point_timeout,
        retries=args.retries if args.retries is not None else 2,
        strict_store=args.strict_store,
        report_out=args.report_out,
        progress=args.progress,
        kernel=args.kernel,
        backend=args.backend,
        workers=args.workers,
        lease_ttl=args.lease_ttl,
    )
    configure_run(config)

    progress = None
    if config.progress:
        from repro.obs import ProgressReporter

        progress = ProgressReporter(stream=sys.stderr)
        progress.attach()

    spec_names = {s.name for s in specs}

    def show(name, results, elapsed):
        if progress is not None:
            progress.end_line()
        print(f"\n{'=' * 72}\n{name}  (scale={config.scale}, "
              f"{elapsed:.1f}s)\n{'=' * 72}")
        if name in spec_names:
            from repro.workload import scenario_report

            print(scenario_report(results))
        else:
            print(REGISTRY[name].report(results))

    try:
        outcome = run_experiments(names + specs, config, on_result=show)
    finally:
        if progress is not None:
            progress.detach()

    if outcome["interrupted"]:
        # Completed points are already durable (the checkpoint journal
        # flushes per record); report what finished instead of a traceback.
        print("\ninterrupted"
              + (f" -- completed sweep points are journaled under "
                 f"{config.checkpoint_dir}; re-run the same command to resume"
                 if config.checkpoint_dir else ""),
              file=sys.stderr)

    if config.report_out:
        from repro.core import build_run_report
        from repro.obs import write_report

        report = build_run_report(config, outcome["outcomes"],
                                  outcome["interrupted"])
        write_report(config.report_out, report)
        print(f"run report written to {config.report_out}", file=sys.stderr)

    if args.show_time:
        _print_timings(config, outcome["outcomes"])
    return 130 if outcome["interrupted"] else 0


def _print_timings(config, outcomes):
    """The ``--time`` footer: wall-clock plus harness-health counters, all
    read from the metrics registry through the per-subsystem views."""
    from repro.core.backend import fabric_stats
    from repro.core.experiment import trace_cache_stats
    from repro.core.sweep import point_memo_stats, supervisor_stats
    from repro.core.tracestore import corruption_stats
    from repro.memsim.batch import kernel_stats

    timings = [(o["name"], o["seconds"]) for o in outcomes]
    print(f"\n{'=' * 72}\nTimings  (scale={config.scale}, "
          f"jobs={config.jobs})\n{'=' * 72}")
    for name, elapsed in timings:
        print(f"  {name:8s} {elapsed:8.2f}s")
    print(f"  {'total':8s} {sum(t for _, t in timings):8.2f}s")
    tc = trace_cache_stats()
    pm = point_memo_stats()
    print(f"  trace cache  hits={tc['hits']} records={tc['records']} "
          f"loads={tc['loads']} traces={tc['traces']} "
          f"({_fmt_bytes(tc['bytes'])})")
    print(f"  trace store  read={_fmt_bytes(tc['bytes_read'])} "
          f"written={_fmt_bytes(tc['bytes_written'])}"
          + (f"  dir={config.trace_dir}" if config.trace_dir else ""))
    cs = corruption_stats()
    causes = " ".join(f"{cause}={n}"
                      for cause, n in sorted(cs["by_cause"].items()))
    print(f"  store health corrupt={cs['corrupt']}"
          + (f" ({causes})" if causes else "")
          + f" stale_tmp_removed={cs['stale_tmp_removed']}"
          + f" rerecords={cs['rerecords']}"
          + f" read_races={cs['read_races']}")
    print(f"  point memo   hits={pm['hits']} misses={pm['misses']} "
          f"cached={pm['cached']}")
    sup = supervisor_stats()
    print(f"  supervisor   retries={sup['retries']} "
          f"timeouts={sup['timeouts']} respawns={sup['respawns']} "
          f"fallbacks={sup['fallbacks']} garbage={sup['garbage']} "
          f"resumed={sup['resumed']} requeued={sup['requeued']}")
    fab = fabric_stats()
    if any(fab.values()):
        print(f"  worker fab   spawns={fab['spawns']} "
              f"deaths={fab['deaths']} stale={fab['stale']} "
              f"corrupt_frames={fab['corrupt_frames']} "
              f"degraded={fab['degraded']} requeued={fab['requeued']}")
    ks = kernel_stats()
    rows = ks["batched_rows"] + ks["inline_rows"] + ks["scalar_rows"]
    frac = (f" ({ks['inline_rows'] / rows:.1%} inlined, "
            f"{ks['batched_rows'] / rows:.1%} gathered)") if rows else ""
    print(f"  replay kern  horizon={ks['horizon_runs']} runs "
          f"{ks['horizon_seconds']:.2f}s  batched={ks['batched_runs']} runs "
          f"{ks['batched_seconds']:.2f}s  scalar={ks['scalar_runs']} runs "
          f"{ks['scalar_seconds']:.2f}s{frac}")
    if ks["horizon_runs"]:
        ahead = (f"{ks['horizon_rows'] / rows:.1%} of rows" if rows
                 else f"{ks['horizon_rows']} rows")
        plan = ks["plan_rows"]
        retir = (f" retirable={1 - ks['plan_boundary'] / plan:.1%}"
                 if plan else "")
        print(f"  horizon tier {ahead} retired ahead in "
              f"{ks['horizon_regions']} regions, "
              f"{ks['horizon_merges']} window merges + "
              f"{ks['horizon_windows']} stepped virtual windows, "
              f"{ks['horizon_guards']} guard stops; "
              f"ws_lines={ks['ws_lines']}{retir}")
    if ks["fallbacks"]:
        causes = " ".join(f"{cause}={n}"
                          for cause, n in sorted(ks["fallbacks"].items()))
        print(f"  kern fallbk  {causes}")


if __name__ == "__main__":
    sys.exit(main())
