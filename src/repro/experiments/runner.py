"""Command-line front end: regenerate any table/figure of the paper.

Usage::

    repro-experiments --list
    repro-experiments table1 fig6 --scale small
    repro-experiments all --scale paper     # the full 1/100 TPC-D sizing
    REPRO_SCALE=paper repro-experiments all # same, via the environment
    repro-experiments fig8 fig9 --jobs 4    # sweeps on a 4-worker pool
    repro-experiments fig8 --trace-dir ~/.cache/repro-traces
                                            # record once, load forever
    repro-experiments fig8 fig9 --jobs 4 --checkpoint-dir ckpt \\
        --point-timeout 120 --retries 3     # fault-tolerant paper-scale run
                                            # (Ctrl-C / crash, then re-run:
                                            #  resumes from completed points)
"""

import argparse
import inspect
import os
import sys
import time


def _fmt_bytes(n):
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024


def main(argv=None):
    from repro.experiments import REGISTRY

    parser = argparse.ArgumentParser(
        description="Reproduce the tables and figures of the HPCA 1997 "
                    "DSS memory-performance paper.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (or 'all')")
    parser.add_argument("--scale",
                        default=os.environ.get("REPRO_SCALE", "small"),
                        help="scale preset: tiny, small, medium, paper")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep-based experiments "
                             "(default: 1, run in-process)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="persistent trace store: record query traces "
                             "there on first run, load them on later runs "
                             "(damaged entries re-record with a warning; "
                             "see --strict-store)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="journal completed sweep points there; an "
                             "interrupted run resumes from the journal "
                             "instead of restarting")
    parser.add_argument("--point-timeout", type=float, default=None,
                        metavar="SEC",
                        help="kill and retry a sweep point whose worker "
                             "exceeds SEC seconds (default: no timeout)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="worker re-attempts per failed sweep point "
                             "before degrading to in-process execution "
                             "(default: 2)")
    parser.add_argument("--strict-store", action="store_true",
                        help="raise on damaged trace-store entries instead "
                             "of re-recording them")
    parser.add_argument("--time", action="store_true", dest="show_time",
                        help="print wall-clock, cache-traffic, and "
                             "robustness summaries after the reports")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    args = parser.parse_args(argv)

    if args.trace_dir:
        from repro.core.experiment import set_trace_dir

        set_trace_dir(args.trace_dir)
    if args.strict_store:
        from repro.core.experiment import set_strict_store

        set_strict_store(True)
    if (args.checkpoint_dir is not None or args.point_timeout is not None
            or args.retries is not None):
        from repro.core.sweep import configure_sweep

        configure_sweep(checkpoint_dir=args.checkpoint_dir,
                        point_timeout=args.point_timeout,
                        retries=args.retries)

    if args.list or not args.experiments:
        print("Available experiments:")
        for name, mod in REGISTRY.items():
            summary = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:8s} {summary}")
        return 0

    names = list(REGISTRY) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2

    timings = []
    interrupted = False
    try:
        for name in names:
            mod = REGISTRY[name]
            kwargs = {"scale": args.scale}
            # Sweep-based experiments take a worker count; the others
            # ignore it.
            if "jobs" in inspect.signature(mod.run).parameters:
                kwargs["jobs"] = args.jobs
            start = time.time()
            results = mod.run(**kwargs)
            elapsed = time.time() - start
            timings.append((name, elapsed))
            print(f"\n{'=' * 72}\n{name}  (scale={args.scale}, {elapsed:.1f}s)\n{'=' * 72}")
            print(mod.report(results))
    except KeyboardInterrupt:
        # Completed points are already durable (the checkpoint journal
        # flushes per record); report what finished instead of a traceback.
        interrupted = True
        print("\ninterrupted"
              + (f" -- completed sweep points are journaled under "
                 f"{args.checkpoint_dir}; re-run the same command to resume"
                 if args.checkpoint_dir else ""),
              file=sys.stderr)

    if args.show_time:
        from repro.core.experiment import trace_cache_stats
        from repro.core.sweep import point_memo_stats, supervisor_stats
        from repro.core.tracestore import corruption_stats

        print(f"\n{'=' * 72}\nTimings  (scale={args.scale}, jobs={args.jobs})"
              f"\n{'=' * 72}")
        for name, elapsed in timings:
            print(f"  {name:8s} {elapsed:8.2f}s")
        print(f"  {'total':8s} {sum(t for _, t in timings):8.2f}s")
        tc = trace_cache_stats()
        pm = point_memo_stats()
        print(f"  trace cache  hits={tc['hits']} records={tc['records']} "
              f"loads={tc['loads']} traces={tc['traces']} "
              f"({_fmt_bytes(tc['bytes'])})")
        print(f"  trace store  read={_fmt_bytes(tc['bytes_read'])} "
              f"written={_fmt_bytes(tc['bytes_written'])}"
              + (f"  dir={args.trace_dir}" if args.trace_dir else ""))
        cs = corruption_stats()
        causes = " ".join(f"{cause}={n}"
                          for cause, n in sorted(cs["by_cause"].items()))
        print(f"  store health corrupt={cs['corrupt']}"
              + (f" ({causes})" if causes else "")
              + f" stale_tmp_removed={cs['stale_tmp_removed']}")
        print(f"  point memo   hits={pm['hits']} misses={pm['misses']} "
              f"cached={pm['cached']}")
        sup = supervisor_stats()
        print(f"  supervisor   retries={sup['retries']} "
              f"timeouts={sup['timeouts']} respawns={sup['respawns']} "
              f"fallbacks={sup['fallbacks']} garbage={sup['garbage']} "
              f"resumed={sup['resumed']}")
    return 130 if interrupted else 0


if __name__ == "__main__":
    sys.exit(main())
