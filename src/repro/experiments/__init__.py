"""One module per table/figure of the paper's evaluation.

Every module exposes ``run(scale="small", ...)`` returning a plain dict of
results plus a ``report(results)`` that renders the paper-style rows.  The
authoritative registry is :data:`repro.experiments.families.FAMILIES`
(declarative entries, lazy module resolution); ``REGISTRY`` here remains
the resolved name -> module map older callers and the reporting path use.
The ``runner`` module provides the ``repro-experiments`` CLI over all of
them.
"""

from repro.experiments import (
    fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, mixed_rw, table1,
)
from repro.experiments.families import FAMILIES, Family, run_family

REGISTRY = {name: family.resolve() for name, family in FAMILIES.items()}

__all__ = ["FAMILIES", "Family", "REGISTRY", "run_family", "table1",
           "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
           "fig13", "mixed_rw"]
