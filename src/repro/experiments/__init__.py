"""One module per table/figure of the paper's evaluation.

Every module exposes ``run(scale="small", ...)`` returning a plain dict of
results plus a ``report(results)`` that renders the paper-style rows.  The
``runner`` module provides the ``repro-experiments`` CLI over all of them.
"""

from repro.experiments import (
    fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, table1,
)

REGISTRY = {
    "table1": table1,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}

__all__ = ["REGISTRY", "table1", "fig6", "fig7", "fig8", "fig9", "fig10",
           "fig11", "fig12", "fig13"]
