"""Figure 10: number of misses vs cache size.

Sweeps both caches together from the baseline to 64x (the paper: 4-KB/128-KB
up to 256-KB/8-MB), counting misses per data-structure group.  Database
data's curve is flat -- no intra-query temporal locality -- while private
data's primary-cache misses collapse and, for the Index query Q3, indices
and metadata show reuse.
"""

from repro.core.report import format_table
from repro.core.sweep import run_sweep
from repro.experiments.families import cache_size_points, grouped_misses
from repro.tpcd.scales import get_scale

QUERIES = ["Q3", "Q6", "Q12"]
MULTIPLIERS = [1, 4, 16, 64]
GROUPS = ["Priv", "Data", "Index", "Metadata"]


def run(scale="small", db=None, queries=QUERIES, multipliers=MULTIPLIERS,
        jobs=1):
    """Return per-query, per-size grouped miss counts for L1 and L2.

    Runs on the sweep driver (recorded traces, optional process pool); see
    :func:`repro.experiments.fig8.run`.
    """
    sc = get_scale(scale)
    points = cache_size_points(sc, queries, multipliers)
    results = {}
    for (qid, mult), s in run_sweep(points, scale=sc, jobs=jobs).items():
        results.setdefault(qid, {})[mult] = grouped_misses(s)
    return results


def report(results):
    """Render normalized miss counts (baseline size = 100) per level."""
    parts = []
    for level in ("l1", "l2"):
        for qid, per_size in results.items():
            base_total = sum(per_size[1][level].values()) or 1
            rows = [
                [f"x{mult}"]
                + [100.0 * per_size[mult][level][g] / base_total for g in GROUPS]
                + [100.0 * sum(per_size[mult][level].values()) / base_total]
                for mult in sorted(per_size)
            ]
            parts.append(format_table(
                ["Cache size"] + GROUPS + ["Total"], rows,
                title=f"Figure 10 {qid} {level.upper()} misses "
                      f"(baseline = 100)",
            ))
    return "\n\n".join(parts)
