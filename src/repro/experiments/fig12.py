"""Figure 12: inter-query temporal locality (warm-start miss counts).

Measures the secondary-cache misses of Q3 and Q12 in three setups: cold
caches, caches warmed by another run of the same query (different
parameters), and caches warmed by the other query.  Uses very large caches
(256x the baseline, the paper's 1-MB/32-MB) to find the upper bound on
reuse.

Expected shapes: Q3-after-Q3 reuses indices; Q12-after-Q12 removes nearly
all database-data misses (the whole ``lineitem`` table is reused);
Q12-after-Q3 reuses little; metadata misses barely move -- they are mostly
coherence misses, which a warm cache cannot avoid.
"""

from repro.core.experiment import run_warm_workload
from repro.core.report import format_table
from repro.tpcd.scales import get_scale

SETUPS = [
    ("Q3", None), ("Q3", "Q3"), ("Q3", "Q12"),
    ("Q12", None), ("Q12", "Q12"), ("Q12", "Q3"),
]
GROUPS = ["Priv", "Data", "Index", "Metadata"]


def run(scale="small", db=None, setups=SETUPS):
    """Return grouped L2 miss counts for each (measured, warmed-by) pair."""
    sc = get_scale(scale)
    cfg = sc.huge_machine_config()
    results = {}
    for measure, warm in setups:
        w = run_warm_workload(measure, warm, scale=sc, machine_config=cfg,
                              db=db)
        results[(measure, warm)] = {
            "l2": {g: sum(v) for g, v in w.stats.grouped("l2").items()},
            "exec_time": w.exec_time,
        }
    return results


def report(results):
    """Render, per measured query, misses normalized to its cold run."""
    parts = []
    for measured in ("Q3", "Q12"):
        base = sum(results[(measured, None)]["l2"].values()) or 1
        rows = []
        for (m, warm), r in results.items():
            if m != measured:
                continue
            label = "cold" if warm is None else f"after {warm}"
            rows.append(
                [label]
                + [100.0 * r["l2"][g] / base for g in GROUPS]
                + [100.0 * sum(r["l2"].values()) / base]
            )
        parts.append(format_table(
            ["Setup"] + GROUPS + ["Total"], rows,
            title=f"Figure 12: L2 misses for {measured} (cold = 100)",
        ))
    return "\n\n".join(parts)
