"""Figure 11: execution time vs cache size.

Same sweep as Figure 10 with the Busy / MSync / SMem / PMem split.  Most of
the speedup from larger caches comes from private data (PMem); Q3 also
gains in SMem from index and metadata temporal locality.
"""

from repro.core.report import format_table
from repro.core.sweep import run_sweep
from repro.experiments.families import cache_size_points, time_projection
from repro.tpcd.scales import get_scale

QUERIES = ["Q3", "Q6", "Q12"]
MULTIPLIERS = [1, 4, 16, 64]
COMPONENTS = ["Busy", "MSync", "SMem", "PMem"]


def run(scale="small", db=None, queries=QUERIES, multipliers=MULTIPLIERS,
        jobs=1):
    """Return per-query, per-size time components (cycles).

    Runs on the sweep driver (recorded traces, optional process pool); see
    :func:`repro.experiments.fig8.run`.
    """
    sc = get_scale(scale)
    points = cache_size_points(sc, queries, multipliers)
    results = {}
    for (qid, mult), s in run_sweep(points, scale=sc, jobs=jobs).items():
        results.setdefault(qid, {})[mult] = time_projection(s)
    return results


def report(results):
    """Render normalized execution-time bars per query."""
    parts = []
    for qid, per_size in results.items():
        base = sum(per_size[1][c] for c in COMPONENTS) or 1
        rows = [
            [f"x{mult}"]
            + [100.0 * per_size[mult][c] / base for c in COMPONENTS]
            + [100.0 * sum(per_size[mult][c] for c in COMPONENTS) / base]
            for mult in sorted(per_size)
        ]
        parts.append(format_table(
            ["Cache size"] + COMPONENTS + ["Total"], rows,
            title=f"Figure 11 {qid}: execution time vs cache size "
                  f"(baseline = 100)",
        ))
    return "\n\n".join(parts)
