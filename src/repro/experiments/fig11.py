"""Figure 11: execution time vs cache size.

Same sweep as Figure 10 with the Busy / MSync / SMem / PMem split.  Most of
the speedup from larger caches comes from private data (PMem); Q3 also
gains in SMem from index and metadata temporal locality.
"""

from repro.core.experiment import run_query_workload
from repro.core.report import format_table
from repro.tpcd.scales import get_scale

QUERIES = ["Q3", "Q6", "Q12"]
MULTIPLIERS = [1, 4, 16, 64]
COMPONENTS = ["Busy", "MSync", "SMem", "PMem"]


def run(scale="small", db=None, queries=QUERIES, multipliers=MULTIPLIERS):
    """Return per-query, per-size time components (cycles)."""
    sc = get_scale(scale)
    results = {}
    for qid in queries:
        per_size = {}
        for mult in multipliers:
            cfg = sc.machine_config(l1_size=sc.l1_size * mult,
                                    l2_size=sc.l2_size * mult)
            w = run_query_workload(qid, scale=sc, machine_config=cfg, db=db)
            comp = w.time_components()
            comp["exec_time"] = w.exec_time
            per_size[mult] = comp
        results[qid] = per_size
    return results


def report(results):
    """Render normalized execution-time bars per query."""
    parts = []
    for qid, per_size in results.items():
        base = sum(per_size[1][c] for c in COMPONENTS) or 1
        rows = [
            [f"x{mult}"]
            + [100.0 * per_size[mult][c] / base for c in COMPONENTS]
            + [100.0 * sum(per_size[mult][c] for c in COMPONENTS) / base]
            for mult in sorted(per_size)
        ]
        parts.append(format_table(
            ["Cache size"] + COMPONENTS + ["Total"], rows,
            title=f"Figure 11 {qid}: execution time vs cache size "
                  f"(baseline = 100)",
        ))
    return "\n\n".join(parts)
