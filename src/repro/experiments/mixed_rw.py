"""The ``mixed-rw`` family: multi-tenant read/write scenario sweep.

The paper measures read-only TPC-D queries and observes (section 5.1) that
the lock spinlock line is the one structure whose misses are dominated by
coherence -- and predicts that update traffic would make that behaviour
matter.  This family tests the prediction with the generator behind
:mod:`repro.workload`: a grid of scenarios over update fraction x client
count x simulated CPUs, where a closed multi-tenant population mixes the
three paper queries with the TPC-D update functions (UF1/UF2) and a small
Poisson-arrival tenant adds read probes.  Reported per point: execution
time, total L2 misses, the coherence share, and the lock-line (LockSLock)
coherence misses.

Every scenario is recorded once on a fresh private database (update
traffic serializes -- see :mod:`repro.workload.session`) and replayed
through the coherence model, so results are bit-identical across ``jobs``
settings and sweep backends.
"""

from repro.core.report import format_table, percent
from repro.core.sweep import SweepPoint, run_sweep
from repro.tpcd.scales import get_scale
from repro.workload import (
    ScenarioSpec, TenantSpec, register_scenario, scenario_qid,
)

UPDATE_FRACS = [0.0, 0.5]
CLIENT_COUNTS = [4, 8]
CPU_COUNTS = [2, 4]

#: Read side of the mixed tenant's mix: the paper's Index / Sequential
#: representatives, weighted toward the index query (most lock traffic).
READ_MIX = (("Q3", 2), ("Q6", 1), ("Q12", 1))
UPDATE_MIX = (("UF1", 1), ("UF2", 1))


def make_mixed_rw_spec(update_frac, clients, cpus, seed=7):
    """The grid point's :class:`ScenarioSpec`.

    ``update_frac`` splits the mixed tenant's operation weight between the
    read mix and UF1/UF2 (0.0 = read-only, 1.0 = update-only); zero-weight
    entries are dropped so the spec validates at the extremes.  A second,
    two-client Poisson tenant issues Q6 probes so every point also carries
    open-arrival read traffic.
    """
    read_w = int(round((1.0 - update_frac) * 100))
    update_w = int(round(update_frac * 100))
    mix = [(op, w * read_w) for op, w in READ_MIX if read_w]
    mix += [(op, w * update_w) for op, w in UPDATE_MIX if update_w]
    tenants = (
        TenantSpec(name="mixed", clients=clients, mix=tuple(mix),
                   arrival="closed", think_time=200, ops_per_client=2),
        TenantSpec(name="probe", clients=2, mix=(("Q6", 1),),
                   arrival="poisson", mean_gap=400.0, ops_per_client=1),
    )
    return ScenarioSpec(
        name=f"mixed-rw-f{int(round(100 * update_frac))}-c{clients}-p{cpus}",
        tenants=tenants, cpus=cpus, seed=seed,
    )


def _point_result(summary):
    l2 = summary["l2_grouped"]
    total = sum(sum(v) for v in l2.values())
    cohe = sum(v[2] for v in l2.values())
    return {
        "exec_time": summary["exec_time"],
        "l2_misses": total,
        "l2_coherence": cohe,
        "lock_line_cohe": summary["l2_cohe_by_class"]["LockSLock"],
        "metadata_misses": sum(l2["Metadata"]),
    }


def run(scale="small", jobs=1, update_fracs=UPDATE_FRACS,
        client_counts=CLIENT_COUNTS, cpu_counts=CPU_COUNTS):
    """Sweep the scenario grid; returns ``{(frac, clients, cpus): ...}``.

    Runs on the sweep driver like the figure sweeps: scenarios are
    registered here, recorded in the parent on first use, and shipped to
    pool/fabric workers as encoded traces.
    """
    sc = get_scale(scale)
    points = []
    for frac in update_fracs:
        for clients in client_counts:
            for cpus in cpu_counts:
                spec = make_mixed_rw_spec(frac, clients, cpus)
                register_scenario(spec)
                points.append(SweepPoint(
                    key=(frac, clients, cpus), qid=scenario_qid(spec),
                    machine=dict(spec.machine), n_procs=cpus,
                ))
    return {key: _point_result(s)
            for key, s in run_sweep(points, scale=sc, jobs=jobs).items()}


def report(results):
    """Render the grid with lock-line and coherence columns."""
    rows = []
    for (frac, clients, cpus) in sorted(results):
        r = results[(frac, clients, cpus)]
        share = r["l2_coherence"] / r["l2_misses"] if r["l2_misses"] else 0.0
        rows.append([
            f"{frac:.2f}", clients, cpus, r["exec_time"], r["l2_misses"],
            percent(share), r["lock_line_cohe"], r["metadata_misses"],
        ])
    return format_table(
        ["UpdFrac", "Clients", "CPUs", "ExecTime", "L2 miss", "Cohe%",
         "LockLine cohe", "Meta miss"],
        rows,
        title="mixed-rw: update fraction x clients x CPUs "
              "(L2 coherence and lock-line behaviour)",
    )
