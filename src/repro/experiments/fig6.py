"""Figure 6: execution-time breakdown and memory-stall decomposition.

Chart (a): normalized execution time split into Busy / MSync / Mem for Q3,
Q6 and Q12 on the baseline architecture.  Chart (b): the Mem portion split
by the data structures causing the stall (Data / Index / Metadata / Priv).
"""

from repro.core.report import format_table, percent
from repro.experiments.families import baseline_workloads

QUERIES = ["Q3", "Q6", "Q12"]


def run(scale="small", db=None):
    """Run the three queries on the baseline machine."""
    results = {}
    for qid, w in baseline_workloads(QUERIES, scale, db).items():
        results[qid] = {
            "breakdown": w.breakdown(),
            "mem_breakdown": w.mem_breakdown(),
            "exec_time": w.exec_time,
            "miss_rates": {
                "l1": w.stats.l1_miss_rate(),
                "l2": w.stats.l2_miss_rate(),
            },
        }
    return results


def report(results):
    """Render both charts as tables."""
    rows_a = [
        [qid] + [percent(r["breakdown"][k]) for k in ("Busy", "MSync", "Mem")]
        for qid, r in results.items()
    ]
    rows_b = [
        [qid] + [percent(r["mem_breakdown"][k])
                 for k in ("Data", "Index", "Metadata", "Priv")]
        for qid, r in results.items()
    ]
    part_a = format_table(
        ["Query", "Busy", "MSync", "Mem"], rows_a,
        title="Figure 6-(a): execution time breakdown",
    )
    part_b = format_table(
        ["Query", "Data", "Index", "Metadata", "Priv"], rows_b,
        title="Figure 6-(b): memory stall time by data structure",
    )
    return part_a + "\n\n" + part_b
