"""Figure 13: simple sequential prefetching of database data.

For each access to database data, the hardware prefetches the next 4
primary-cache lines into the primary cache (section 6 of the paper).
Expected: modest gains (~5%) for the Sequential queries Q6 and Q12, and a
small slowdown for the Index query Q3, whose random accesses turn the
prefetches into pure cache pollution.
"""

from repro.core.experiment import run_query_workload
from repro.core.report import format_table
from repro.tpcd.scales import get_scale

QUERIES = ["Q3", "Q6", "Q12"]
COMPONENTS = ["Busy", "MSync", "SMem", "PMem"]


def run(scale="small", db=None, queries=QUERIES):
    """Return base-vs-prefetch time components per query."""
    sc = get_scale(scale)
    results = {}
    for qid in queries:
        base = run_query_workload(qid, scale=sc, db=db)
        opt = run_query_workload(qid, scale=sc, db=db, prefetch=True)
        results[qid] = {
            "base": dict(base.time_components(), exec_time=base.exec_time),
            "opt": dict(opt.time_components(), exec_time=opt.exec_time),
            "speedup": base.exec_time / opt.exec_time,
            "prefetches": opt.stats.prefetches_issued,
        }
    return results


def report(results):
    """Render Base/Opt bars per query, normalized to Base = 100."""
    rows = []
    for qid, r in results.items():
        base_total = sum(r["base"][c] for c in COMPONENTS) or 1
        for label in ("base", "opt"):
            comp = r[label]
            rows.append(
                [f"{qid} {label}"]
                + [100.0 * comp[c] / base_total for c in COMPONENTS]
                + [100.0 * sum(comp[c] for c in COMPONENTS) / base_total]
            )
    table = format_table(
        ["Run"] + COMPONENTS + ["Total"], rows,
        title="Figure 13: impact of simple prefetching (Base = 100)",
    )
    gains = "  ".join(
        f"{qid}: {100 * (1 - 1 / r['speedup']):+.1f}%"
        for qid, r in results.items()
    )
    return table + f"\nExecution-time change (negative = slower): {gains}"
