"""Table 1: operations in the read-only TPC-D queries.

Plans every query with the paper's index set and reports which select,
join, sort, group and aggregate operators appear, next to the paper's row.
"""

from repro.core.experiment import workload_database
from repro.core.report import format_table
from repro.tpcd.queries import QUERY_IDS, TABLE1_OPERATORS, query_instance

COLUMNS = ["SS", "IS", "NL", "M", "H", "Sort", "Group", "Aggr"]


def run(scale="small", db=None, seed=0):
    """Plan all 17 queries; returns per-query operator sets and matches."""
    db = db or workload_database(scale)
    results = {}
    for qid in QUERY_IDS:
        qi = query_instance(qid, seed=seed)
        ops = db.operator_set(qi.sql, hints=qi.hints)
        results[qid] = {
            "ops": ops,
            "expected": TABLE1_OPERATORS[qid],
            "match": ops == TABLE1_OPERATORS[qid],
        }
    return results


def report(results):
    """Render the measured Table 1."""
    rows = []
    for qid, r in results.items():
        rows.append(
            [qid]
            + ["x" if c in r["ops"] else "" for c in COLUMNS]
            + ["yes" if r["match"] else "NO"]
        )
    return format_table(
        ["Query"] + COLUMNS + ["matches paper"], rows,
        title="Table 1: operations in the read-only TPC-D queries",
    )
