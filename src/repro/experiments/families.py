"""The shared experiment-family registry and its common sweep builders.

Before this module, every figure was a hardcoded module dispatched by
signature sniffing (``"jobs" in inspect.signature(mod.run).parameters``)
and the near-duplicate sweep bodies of the figure pairs (8/9 line-size,
10/11 cache-size) were copied four times.  A :class:`Family` is the
declarative replacement: one registry entry per experiment naming its
module, whether it runs on the sweep driver (and therefore takes the
run's worker count), and its one-line description --
:func:`repro.core.run.run_experiments` dispatches through
:func:`run_family` and never inspects a signature again (the old
duck-typed path survives as a warn-once deprecation shim for
externally-registered modules).

The figure families keep their native per-query trace identities --
``(qid, seed_base + i)`` per processor -- rather than re-expressing the
paper's figures as :class:`~repro.workload.spec.ScenarioSpec` instances:
a scenario derives operation parameters from its own seed space, so a
literal port would change every figure's simulated results, and the
figures are pinned seed-identical across PRs.  Multi-tenant scenario
workloads enter the same registry as first-class families instead
(``mixed-rw``, :mod:`repro.experiments.mixed_rw`) or ad hoc through
``repro-experiments --scenario spec.json``.
"""

import importlib
from dataclasses import dataclass

from repro.core.sweep import SweepPoint


@dataclass(frozen=True)
class Family:
    """One registry entry: an experiment the runner can dispatch.

    ``module`` is resolved lazily (the registry can be imported without
    paying for every experiment's imports); it must expose
    ``run(scale=..., ...)`` and ``report(results)``.  ``sweep`` families
    run on the sweep driver and receive the config's ``jobs``;
    ``scenario_backed`` families generate :class:`ScenarioSpec` workloads
    (update traffic included) instead of single-query streams.
    """

    name: str
    module: str
    sweep: bool = False
    scenario_backed: bool = False

    def resolve(self):
        return importlib.import_module(self.module)


FAMILIES = {
    "table1": Family("table1", "repro.experiments.table1"),
    "fig6": Family("fig6", "repro.experiments.fig6"),
    "fig7": Family("fig7", "repro.experiments.fig7"),
    "fig8": Family("fig8", "repro.experiments.fig8", sweep=True),
    "fig9": Family("fig9", "repro.experiments.fig9", sweep=True),
    "fig10": Family("fig10", "repro.experiments.fig10", sweep=True),
    "fig11": Family("fig11", "repro.experiments.fig11", sweep=True),
    "fig12": Family("fig12", "repro.experiments.fig12"),
    "fig13": Family("fig13", "repro.experiments.fig13"),
    "mixed-rw": Family("mixed-rw", "repro.experiments.mixed_rw",
                       sweep=True, scenario_backed=True),
}


def run_family(name, config):
    """Dispatch one registered family under ``config``; returns results.

    The registry entry -- not the run function's signature -- decides
    what the family receives: every family gets the scale, sweep-based
    families also get the worker count.
    """
    family = FAMILIES[name]
    kwargs = {"scale": config.scale}
    if family.sweep:
        kwargs["jobs"] = config.jobs
    return family.resolve().run(**kwargs)


def family_report(name, results):
    """Render one family's results with its module's ``report``."""
    return FAMILIES[name].resolve().report(results)


# -- shared sweep builders ---------------------------------------------------------
#
# The figure pairs report different projections of identical simulations
# (8/9: misses vs time over line sizes; 10/11: over cache sizes).  The
# point builders and projections live here once; the sweep driver's point
# memo already shares the underlying runs.

def line_size_points(queries, line_sizes):
    """Figure 8/9 sweep: L2 line over ``line_sizes``, L1 at half."""
    return [
        SweepPoint(key=(qid, l2_line), qid=qid,
                   machine={"l1_line": l2_line // 2, "l2_line": l2_line})
        for qid in queries for l2_line in line_sizes
    ]


def cache_size_points(scale, queries, multipliers):
    """Figure 10/11 sweep: both caches scaled together from the baseline."""
    return [
        SweepPoint(key=(qid, mult), qid=qid,
                   machine={"l1_size": scale.l1_size * mult,
                            "l2_size": scale.l2_size * mult})
        for qid in queries for mult in multipliers
    ]


def grouped_misses(summary):
    """The miss-figure projection of one point summary (figures 8/10)."""
    return {
        "l1": {g: sum(v) for g, v in summary["l1_grouped"].items()},
        "l2": {g: sum(v) for g, v in summary["l2_grouped"].items()},
        "exec_time": summary["exec_time"],
    }


def time_projection(summary):
    """The time-figure projection of one point summary (figures 9/11)."""
    comp = dict(summary["components"])
    comp["exec_time"] = summary["exec_time"]
    return comp


def baseline_workloads(queries, scale, db=None):
    """One baseline-machine :class:`WorkloadResult` per query (figures
    6/7 read different statistics of the same runs)."""
    from repro.core.experiment import run_query_workload

    return {qid: run_query_workload(qid, scale=scale, db=db)
            for qid in queries}
