"""Figure 9: execution time vs cache line size.

Same sweep as Figure 8, but reporting normalized execution time split into
Busy / MSync / SMem / PMem.  The paper's conclusion: the minimum falls at
64-byte secondary lines -- long lines help shared data (spatial locality)
until the growing private-data misses win.
"""

from repro.core.report import format_table
from repro.core.sweep import run_sweep
from repro.experiments.families import line_size_points, time_projection
from repro.tpcd.scales import get_scale

QUERIES = ["Q3", "Q6", "Q12"]
LINE_SIZES = [16, 32, 64, 128, 256]
BASELINE_LINE = 64
COMPONENTS = ["Busy", "MSync", "SMem", "PMem"]


def run(scale="small", db=None, queries=QUERIES, line_sizes=LINE_SIZES,
        jobs=1):
    """Return per-query, per-line-size time components (cycles).

    Runs on the sweep driver (recorded traces, optional process pool); see
    :func:`repro.experiments.fig8.run`.
    """
    sc = get_scale(scale)
    points = line_size_points(queries, line_sizes)
    results = {}
    for (qid, l2_line), s in run_sweep(points, scale=sc, jobs=jobs).items():
        results.setdefault(qid, {})[l2_line] = time_projection(s)
    return results


def best_line_size(results, qid):
    """Line size with the lowest execution time for ``qid``."""
    per_line = results[qid]
    return min(per_line, key=lambda k: per_line[k]["exec_time"])


def report(results):
    """Render normalized execution-time bars per query."""
    parts = []
    for qid, per_line in results.items():
        base = sum(per_line[BASELINE_LINE][c] for c in COMPONENTS) or 1
        rows = []
        for line in sorted(per_line):
            comp = per_line[line]
            rows.append(
                [f"{line}B"]
                + [100.0 * comp[c] / base for c in COMPONENTS]
                + [100.0 * sum(comp[c] for c in COMPONENTS) / base]
            )
        parts.append(format_table(
            ["L2 line"] + COMPONENTS + ["Total"], rows,
            title=f"Figure 9 {qid}: execution time vs line size "
                  f"(64B = 100); best = {best_line_size(results, qid)}B",
        ))
    return "\n\n".join(parts)
