"""CI chaos smoke: the worker fabric under seeded faults must match serial.

Three acts over the same four-point line-size sweep:

1. a clean ``--backend workers`` run is bit-identical to the in-process
   run (and the lease ledger ends compacted, with no leases left);
2. a run under every worker-targeted fault kind at once -- a worker kill,
   a corrupt result frame, a heartbeat stall -- plus a randomized-but-
   seeded chaos schedule on top, is *still* bit-identical, and each
   recovery path provably fired;
3. a run interrupted mid-sweep (SIGINT) resumes from the lease ledger:
   the in-flight point is re-queued exactly once and the final results
   are bit-identical again.

The chaos seed comes from ``CHAOS_SEED`` (default 42) so CI can sweep a
matrix of schedules while any one failure stays reproducible::

    PYTHONPATH=src CHAOS_SEED=7 python scripts/chaos_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import textwrap
import time


def _points():
    from repro.core.sweep import SweepPoint

    return [
        SweepPoint(key=("Q6", line), qid="Q6",
                   machine={"l1_line": line // 2, "l2_line": line})
        for line in (16, 32, 64, 128)
    ]


def _fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def _clean_run(serial, ckpt):
    from repro.core import RunConfig
    from repro.core.ledger import LeaseLedger
    from repro.core.sweep import clear_variant_cache, run_sweep

    clear_variant_cache()
    got = run_sweep(_points(), scale="tiny",
                    config=RunConfig(backend="workers", workers=4,
                                     checkpoint_dir=ckpt, lease_ttl=20.0))
    if got != serial:
        return _fail("clean workers-backend sweep diverged from serial")
    with LeaseLedger(ckpt) as ledger:
        if len(ledger) != len(serial) or ledger.leases:
            return _fail(f"ledger not settled: {len(ledger)} completed, "
                         f"{len(ledger.leases)} leases")
    print("chaos smoke 1/3 OK: clean workers backend == serial")
    return 0


def _chaos_run(serial, ckpt, seed):
    from repro.core import RunConfig
    from repro.core.backend import fabric_stats
    from repro.core.faults import ENV_VAR
    from repro.core.sweep import clear_variant_cache, run_sweep

    clear_variant_cache()
    before = fabric_stats()
    # Every worker-fabric failure mode pinned on a point each, seeded
    # chaos covering whatever coordinates the retries add on top.
    os.environ[ENV_VAR] = f"crash@0,wcorrupt@1,wstall@2,chaos@{seed}*30"
    try:
        got = run_sweep(_points(), scale="tiny",
                        config=RunConfig(backend="workers", workers=4,
                                         checkpoint_dir=ckpt,
                                         lease_ttl=4.0, retries=3))
    finally:
        del os.environ[ENV_VAR]
    if got != serial:
        return _fail(f"chaos sweep (seed {seed}) diverged from serial")
    stats = fabric_stats()
    for counter in ("deaths", "corrupt_frames", "stale"):
        if stats[counter] <= before[counter]:
            return _fail(f"expected the {counter!r} recovery path to fire: "
                         f"{stats}")
    print(f"chaos smoke 2/3 OK: seeded chaos (seed {seed}) == serial, "
          f"{stats}")
    return 0


_INTERRUPT_PROG = textwrap.dedent("""
    import os
    from repro.core import RunConfig
    from repro.core.faults import ENV_VAR
    from repro.core.sweep import SweepPoint, run_sweep
    # A heartbeat stall keeps the sweep alive long enough to interrupt,
    # and leaves that point claimed-but-never-completed in the ledger.
    os.environ[ENV_VAR] = "wstall@3"
    points = [SweepPoint(key=("Q6", line), qid="Q6",
                         machine={"l1_line": line // 2, "l2_line": line})
              for line in (16, 32, 64, 128)]
    print("SWEEPING", flush=True)
    run_sweep(points, scale="tiny",
              config=RunConfig(backend="workers", workers=2,
                               checkpoint_dir=os.environ["CKPT"],
                               lease_ttl=60.0))
""")


def _interrupt_and_resume(serial, ckpt):
    from repro.core import RunConfig
    from repro.core.sweep import (
        clear_variant_cache, run_sweep, supervisor_stats,
    )

    env = dict(os.environ, CKPT=ckpt)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.Popen([sys.executable, "-c", _INTERRUPT_PROG],
                            env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, text=True)
    proc.stdout.readline()          # wait for the sweep to be underway
    time.sleep(10)                  # let some points complete, some not
    proc.send_signal(signal.SIGINT)
    proc.wait(timeout=60)
    if proc.returncode == 0:
        return _fail("interrupted run finished before the SIGINT landed; "
                     "nothing was resumed")

    before = supervisor_stats()
    clear_variant_cache()
    got = run_sweep(_points(), scale="tiny",
                    config=RunConfig(backend="workers", workers=2,
                                     checkpoint_dir=ckpt, lease_ttl=20.0))
    stats = supervisor_stats()
    if got != serial:
        return _fail("resumed sweep diverged from serial")
    resumed = stats["resumed"] - before["resumed"]
    requeued = stats["requeued"] - before["requeued"]
    if not (1 <= resumed <= 3):
        return _fail(f"expected 1..3 resumed points, got {resumed}")
    if requeued < 1:
        return _fail("expected the interrupted in-flight point re-queued")

    # Exactly once: a further resume finds everything completed.
    clear_variant_cache()
    again = run_sweep(_points(), scale="tiny",
                      config=RunConfig(backend="workers", workers=2,
                                       checkpoint_dir=ckpt, lease_ttl=20.0))
    final = supervisor_stats()
    if again != serial:
        return _fail("second resume diverged from serial")
    if final["requeued"] != stats["requeued"]:
        return _fail("a reclaimed lease was re-queued twice")
    print(f"chaos smoke 3/3 OK: SIGINT resume == serial "
          f"(resumed={resumed} requeued={requeued})")
    return 0


def main():
    from repro.core.sweep import run_sweep

    seed = int(os.environ.get("CHAOS_SEED", "42"))
    serial = run_sweep(_points(), scale="tiny", jobs=1)

    with tempfile.TemporaryDirectory() as d:
        rc = _clean_run(serial, os.path.join(d, "clean"))
        if rc:
            return rc
    with tempfile.TemporaryDirectory() as d:
        rc = _chaos_run(serial, os.path.join(d, "chaos"), seed)
        if rc:
            return rc
    with tempfile.TemporaryDirectory() as d:
        rc = _interrupt_and_resume(serial, os.path.join(d, "resume"))
        if rc:
            return rc
    print("chaos smoke OK: all three acts bit-identical to serial")
    return 0


if __name__ == "__main__":
    sys.exit(main())
