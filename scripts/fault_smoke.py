"""CI fault-injection smoke: a faulted parallel sweep must match serial.

Runs the same four-point line-size sweep twice -- once in-process, once on
a 4-worker supervised pool with an injected worker raise, crash, garbage
result, and hang -- and asserts the summaries are bit-identical and that
every recovery path actually fired.  Also runnable locally::

    PYTHONPATH=src python scripts/fault_smoke.py
"""

import os
import sys


def main():
    from repro.core import RunConfig
    from repro.core.faults import ENV_VAR
    from repro.core.sweep import (
        SweepPoint, clear_variant_cache, run_sweep, supervisor_stats,
    )

    points = [
        SweepPoint(key=("Q6", line), qid="Q6",
                   machine={"l1_line": line // 2, "l2_line": line})
        for line in (16, 32, 64, 128)
    ]
    serial = run_sweep(points, scale="tiny", jobs=1)

    # Drop the parent's point memo so the faulted run really uses the pool.
    clear_variant_cache()
    # Multi-attempt budgets (*N) keep each fault deterministic even though
    # the crash-induced pool breakage charges every in-flight point an
    # attempt: the fault still fires once the point actually runs.
    os.environ[ENV_VAR] = "raise@0*2,crash@1,garbage@2*3,hang@3*2"
    try:
        faulted = run_sweep(points, scale="tiny",
                            config=RunConfig(jobs=4, point_timeout=10.0))
    finally:
        del os.environ[ENV_VAR]

    stats = supervisor_stats()
    if faulted != serial:
        print("FAIL: faulted parallel sweep diverged from the serial run",
              file=sys.stderr)
        return 1
    for counter in ("retries", "respawns", "timeouts", "garbage"):
        if stats[counter] < 1:
            print(f"FAIL: expected the {counter!r} recovery path to fire: "
                  f"{stats}", file=sys.stderr)
            return 1
    print(f"fault smoke OK: 4 faulted points == serial, {stats}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
