"""Replay-kernel benchmark: scalar vs batched vs horizon on warm traces.

Times :meth:`Interleaver.run_traces` under all three dispatch kernels
over the same recorded traces (one query per processor, the scale's
baseline machine) and writes a schema-versioned JSON report::

    PYTHONPATH=src python scripts/bench_replay.py --scale small \\
        --trace-dir ~/.cache/repro-traces --out bench-report.json

Batch plans and the horizon sharing schedule are built outside the
timers: a sweep pays them once per trace combination, so the
steady-state dispatch cost is the number a kernel change moves.

With ``--check BASELINE`` the measured aggregate horizon speedup is
gated against the committed baseline's ``gate.min_speedup`` floor
(exit 1 below it), so CI catches a replay-kernel regression without
chasing absolute seconds across runner hardware.  The committed
baseline (``benchmarks/BENCH_replay.json``) records the numbers
measured on the development machine; refresh it with ``--out`` after
deliberate kernel work, and keep the floor at a value the change
actually measured.

Each run also appends a one-line trajectory entry (timestamp, totals,
speedups) to a repo-root ``BENCH_replay.json``, so the kernels' history
accumulates across PRs; point it elsewhere or disable it with
``--trajectory``.
"""

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone
from time import perf_counter

SCHEMA = "repro.bench_replay/2"
TRAJ_SCHEMA = "repro.bench_replay_traj/1"
DEFAULT_QUERIES = ["Q1", "Q3", "Q6", "Q12", "Q17"]
DEFAULT_TRAJECTORY = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_replay.json")


def bench_query(qid, scale, cache, n_procs, reps):
    from repro.db.shmem import shared_home_fn
    from repro.memsim.horizon import horizon_schedule
    from repro.memsim.interleave import Interleaver
    from repro.memsim.numa import NumaMachine

    traces = [cache.get(qid, i, i, arena_size=scale.arena_size)
              for i in range(n_procs)]
    rows = sum(len(t) for t in traces)
    config = scale.machine_config()
    # Warm the per-trace plans and the combined sharing schedule before
    # any timer starts: a sweep pays them once per trace combination.
    probe = NumaMachine(config, home_fn=shared_home_fn())
    shift = config.l1_line.bit_length() - 1
    for t in traces:
        t.batch_plan(shift, probe._l1_nsets)
    horizon_schedule(traces, probe._l2_shift)
    out = {"rows": rows}
    for kernel in ("scalar", "batched", "horizon"):
        times = []
        for _ in range(reps):
            machine = NumaMachine(config, home_fn=shared_home_fn())
            t0 = perf_counter()
            Interleaver(machine).run_traces(traces, kernel=kernel)
            times.append(perf_counter() - t0)
        out[f"{kernel}_s"] = round(min(times), 4)
    out["speedup"] = round(out["scalar_s"] / out["horizon_s"], 3) \
        if out["horizon_s"] else 0.0
    out["batched_speedup"] = round(out["scalar_s"] / out["batched_s"], 3) \
        if out["batched_s"] else 0.0
    return out


def check(report, baseline_path):
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != SCHEMA:
        print(f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}",
              file=sys.stderr)
        return 1
    floor = baseline["gate"]["min_speedup"]
    measured = report["total"]["speedup"]
    if measured < floor:
        print(f"FAIL: aggregate horizon speedup {measured:.2f}x is below "
              f"the gate floor {floor:.2f}x (baseline measured "
              f"{baseline['total']['speedup']:.2f}x)", file=sys.stderr)
        return 1
    print(f"gate ok: aggregate speedup {measured:.2f}x >= floor "
          f"{floor:.2f}x")
    return 0


def append_trajectory(path, report):
    """Append one compact JSON line summarizing this run to ``path``.

    The file is newline-delimited JSON (one entry per bench run), so the
    kernels' performance history accumulates across PRs without merge
    conflicts on a pretty-printed blob.
    """
    entry = {
        "schema": TRAJ_SCHEMA,
        "when": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": report["scale"],
        "n_procs": report["n_procs"],
        "reps": report["reps"],
        "python": report["python"],
        "rows": report["total"]["rows"],
        "scalar_s": report["total"]["scalar_s"],
        "batched_s": report["total"]["batched_s"],
        "horizon_s": report["total"]["horizon_s"],
        "speedup": report["total"]["speedup"],
        "batched_speedup": report["total"]["batched_speedup"],
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"trajectory entry appended to {path}")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the replay kernels "
                    "(scalar vs batched vs horizon).")
    parser.add_argument("--scale", default="small")
    parser.add_argument("--queries", default=",".join(DEFAULT_QUERIES),
                        help="comma-separated query ids")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per kernel (min is kept)")
    parser.add_argument("--trace-dir", default=None,
                        help="persistent trace store (records on first use)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report to FILE")
    parser.add_argument("--gate-floor", type=float, default=None,
                        metavar="X",
                        help="embed gate.min_speedup=X in the written "
                             "report (set it BELOW the measured speedup: "
                             "the gate is a regression tripwire, not a "
                             "target, and CI runners are noisy)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="gate the aggregate speedup against a "
                             "committed baseline report")
    parser.add_argument("--trajectory", default=DEFAULT_TRAJECTORY,
                        metavar="FILE",
                        help="append a one-line run summary to FILE "
                             "(default: repo-root BENCH_replay.json; "
                             "'none' disables)")
    args = parser.parse_args(argv)

    from repro.core.experiment import set_trace_dir, workload_trace_cache
    from repro.memsim.batch import HAVE_NUMPY
    from repro.tpcd.scales import get_scale

    if not HAVE_NUMPY:
        print("numpy is not importable: the batched and horizon kernels "
              "would fall back to scalar and the comparison would be "
              "meaningless; install the 'perf' extra first", file=sys.stderr)
        return 2

    if args.trace_dir:
        set_trace_dir(args.trace_dir)
    scale = get_scale(args.scale)
    cache = workload_trace_cache(args.scale)
    queries = [q.strip() for q in args.queries.split(",") if q.strip()]

    report = {
        "schema": SCHEMA,
        "scale": args.scale,
        "n_procs": args.procs,
        "reps": args.reps,
        "python": platform.python_version(),
        "queries": {},
    }
    print(f"{'query':8s} {'rows':>9s} {'scalar':>8s} {'batched':>8s} "
          f"{'horizon':>8s} {'speedup':>8s}")
    for qid in queries:
        result = bench_query(qid, scale, cache, args.procs, args.reps)
        report["queries"][qid] = result
        print(f"{qid:8s} {result['rows']:9d} {result['scalar_s']:8.3f} "
              f"{result['batched_s']:8.3f} {result['horizon_s']:8.3f} "
              f"{result['speedup']:7.2f}x")
    totals = {}
    for kernel in ("scalar", "batched", "horizon"):
        totals[f"{kernel}_s"] = round(
            sum(q[f"{kernel}_s"] for q in report["queries"].values()), 4)
    report["total"] = {
        "rows": sum(q["rows"] for q in report["queries"].values()),
        **totals,
        "speedup": round(totals["scalar_s"] / totals["horizon_s"], 3)
        if totals["horizon_s"] else 0.0,
        "batched_speedup": round(totals["scalar_s"] / totals["batched_s"], 3)
        if totals["batched_s"] else 0.0,
    }
    print(f"{'total':8s} {report['total']['rows']:9d} "
          f"{totals['scalar_s']:8.3f} {totals['batched_s']:8.3f} "
          f"{totals['horizon_s']:8.3f} {report['total']['speedup']:7.2f}x")

    if args.gate_floor is not None:
        report["gate"] = {"min_speedup": args.gate_floor}
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.out}")
    if args.trajectory and args.trajectory != "none":
        append_trajectory(args.trajectory, report)
    if args.check:
        return check(report, args.check)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, "src")
    sys.exit(main())
